"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel``
package, so PEP 517 editable installs fail on ``bdist_wheel``.  This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517``
fall back to ``setup.py develop``.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
