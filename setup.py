"""Packaging for the offline, dependency-free reproduction toolkit.

The execution environment ships setuptools without the ``wheel``
package, so PEP 517 editable installs fail on ``bdist_wheel``; all
metadata therefore lives right here and
``pip install -e . --no-build-isolation --no-use-pep517`` falls back
to ``setup.py develop``.  The ``repro`` console script fronts the same
entry point as ``python -m repro`` / ``python -m repro.cli``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-conext-krencbs20",
    version="0.2.0",
    description=(
        "Reproduction toolkit for 'Keep your Communities Clean'"
        " (CoNEXT 2020): BGP simulator, MRT pipeline, announcement-type"
        " analysis and a declarative scenario engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ]
    },
)
