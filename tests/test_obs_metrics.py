"""Metrics registry: counters, gauges, timers, and the enable gate."""

import json

import pytest

from repro.netbase.memo import (
    bounded_store,
    memo_counters,
    memo_stats,
    reset_memo_stats,
)
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry, TimerStats


@pytest.fixture(autouse=True)
def clean_registry():
    obs_metrics.set_metrics_enabled(False)
    obs_metrics.reset_metrics()
    yield
    obs_metrics.set_metrics_enabled(False)
    obs_metrics.reset_metrics()


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.count("events")
        registry.count("events", 4)
        assert registry.counter_value("events") == 5
        assert registry.counter_value("never-written") == 0

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth", 3.0)
        registry.gauge("depth", 7.0)
        assert registry.gauge_value("depth") == 7.0

    def test_timer_aggregates_and_histogram(self):
        registry = MetricsRegistry()
        registry.record_timing("step", 0.0005)  # < 1 ms -> bucket 0
        registry.record_timing("step", 0.003)  # ~3 ms -> bucket 2
        report = registry.report()["timers"]["step"]
        assert report["count"] == 2
        assert report["min_seconds"] == pytest.approx(0.0005)
        assert report["max_seconds"] == pytest.approx(0.003)
        assert report["total_seconds"] == pytest.approx(0.0035)
        histogram = report["histogram_ms_pow2"]
        assert histogram[0] == 1
        assert sum(histogram) == 2

    def test_time_context_manager_records(self):
        registry = MetricsRegistry()
        with registry.time("span"):
            pass
        assert registry.timer_seconds("span") > 0

    def test_phase_seconds_strips_prefix(self):
        registry = MetricsRegistry()
        registry.record_timing("phase.build", 1.5)
        registry.record_timing("other", 9.0)
        assert registry.phase_seconds() == {"build": 1.5}

    def test_report_is_json_serializable_and_sorted(self):
        registry = MetricsRegistry()
        registry.count("b")
        registry.count("a")
        registry.gauge("g", 1.0)
        registry.record_timing("t", 0.01)
        report = registry.report()
        assert list(report["counters"]) == ["a", "b"]
        json.dumps(report)  # must not raise

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.count("x")
        registry.gauge("y", 1.0)
        registry.record_timing("z", 0.1)
        assert not registry.is_empty()
        registry.reset()
        assert registry.is_empty()
        assert registry.report() == {
            "counters": {},
            "gauges": {},
            "timers": {},
        }


class TestEnableGate:
    def test_disabled_by_default(self):
        assert obs_metrics.metrics_enabled() is False

    def test_disabled_helpers_record_nothing(self):
        obs_metrics.count("x")
        obs_metrics.gauge("y", 1.0)
        obs_metrics.record_timing("z", 0.5)
        with obs_metrics.phase("p"):
            pass
        assert obs_metrics.registry().is_empty()

    def test_disabled_phase_is_the_shared_noop(self):
        # Near-zero disabled cost: no allocation per phase() call.
        assert obs_metrics.phase("a") is obs_metrics.phase("b")

    def test_enabled_helpers_record(self):
        obs_metrics.set_metrics_enabled(True)
        obs_metrics.count("x", 2)
        with obs_metrics.phase("p"):
            pass
        registry = obs_metrics.registry()
        assert registry.counter_value("x") == 2
        assert registry.timer_seconds("phase.p") > 0

    def test_set_enabled_returns_previous(self):
        assert obs_metrics.set_metrics_enabled(True) is False
        assert obs_metrics.set_metrics_enabled(False) is True

    def test_enabled_scope_restores(self):
        with obs_metrics.enabled_scope():
            assert obs_metrics.metrics_enabled() is True
        assert obs_metrics.metrics_enabled() is False

    def test_timed_decorator(self):
        @obs_metrics.timed("wrapped")
        def work():
            return 42

        assert work() == 42
        assert obs_metrics.registry().is_empty()
        obs_metrics.set_metrics_enabled(True)
        assert work() == 42
        assert obs_metrics.registry().timer_seconds("phase.wrapped") > 0


class TestMemoStats:
    def test_counters_register_idempotently(self):
        first = memo_counters("test.idempotent")
        second = memo_counters("test.idempotent")
        assert first is second

    def test_bounded_store_counts_misses_hits_and_evictions(self):
        stats = memo_counters("test.bounded")
        stats.reset()
        cache = {}
        for key in range(3):
            bounded_store(cache, key, key, 4, stats)
        assert stats.misses == 3
        assert stats.evictions == 0
        # Simulate the call-site hit path.
        if cache.get(1) is not None:
            stats.hits += 1
        assert stats.hits == 1
        # Fill past the bound: wholesale clear counts one eviction.
        bounded_store(cache, 3, 3, 4, stats)
        bounded_store(cache, 4, 4, 4, stats)
        assert stats.evictions == 1
        assert len(cache) == 1

    def test_bounded_store_without_stats_still_works(self):
        cache = {}
        assert bounded_store(cache, "k", "v", 8) == "v"
        assert cache == {"k": "v"}

    def test_memo_stats_snapshot_and_reset(self):
        stats = memo_counters("test.snapshot")
        stats.reset()
        stats.hits += 3
        stats.misses += 1
        snapshot = memo_stats()
        entry = snapshot["test.snapshot"]
        assert entry["hits"] == 3
        assert entry["misses"] == 1
        assert entry["hit_rate"] == pytest.approx(0.75)
        reset_memo_stats()
        assert memo_stats()["test.snapshot"]["hits"] == 0

    def test_every_hot_cache_is_named(self):
        # Importing the hot-path modules registers their counters; the
        # instrumentation surface must cover all nine bounded stores.
        import repro.analysis.cleaning  # noqa: F401
        import repro.bgp.wire  # noqa: F401
        import repro.mrt.reader  # noqa: F401
        import repro.mrt.records  # noqa: F401
        import repro.netbase.prefix  # noqa: F401

        names = set(memo_stats())
        assert {
            "wire.attr_block",
            "wire.as_path",
            "wire.community_set",
            "wire.large_set",
            "wire.addr4",
            "prefix.nlri",
            "mrt.address",
            "mrt.envelope",
            "cleaning.path_info",
            "cleaning.peer_info",
        } <= names
