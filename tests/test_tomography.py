"""Tests for per-AS community-behavior inference (paper §7)."""

import pytest

from repro.analysis.observations import (
    Observation,
    ObservationKind,
    SessionKey,
)
from repro.analysis.tomography import (
    CommunityBehaviorClassifier,
    InferredBehavior,
    score_against_ground_truth,
)
from repro.bgp import ASPath, CommunitySet
from repro.netbase import Prefix

SESSION = SessionKey("rrc00", 100, "10.0.0.1")
PREFIX = Prefix("203.0.113.0/24")


def announce(path, communities="", t=0.0):
    return Observation(
        timestamp=t,
        session=SESSION,
        prefix=PREFIX,
        kind=ObservationKind.ANNOUNCE,
        as_path=ASPath.from_string(path),
        communities=CommunitySet.parse(communities),
    )


def feed(classifier, path, communities, count=30):
    for index in range(count):
        classifier.observe(announce(path, communities, t=float(index)))


class TestEvidence:
    def test_tagger_detected(self):
        classifier = CommunityBehaviorClassifier()
        # AS 200 sits mid-path and its tags ride on the routes.
        feed(classifier, "100 200 300", "200:301 200:52")
        inference = classifier.infer(200)
        assert inference.behavior == InferredBehavior.TAGGER
        assert inference.own_tag_ratio == 1.0

    def test_cleaner_detected(self):
        classifier = CommunityBehaviorClassifier()
        # Routes through AS 200 never carry the origin's (300) tags.
        feed(classifier, "100 200 300", "")
        inference = classifier.infer(200)
        assert inference.behavior == InferredBehavior.CLEANER

    def test_ignorer_detected(self):
        classifier = CommunityBehaviorClassifier()
        # AS 200 passes the origin's tags untouched, adds none.
        feed(classifier, "100 200 300", "300:7")
        inference = classifier.infer(200)
        assert inference.behavior == InferredBehavior.IGNORER
        assert inference.upstream_survival_ratio == 1.0

    def test_insufficient_samples_stay_unknown(self):
        classifier = CommunityBehaviorClassifier(min_samples=50)
        feed(classifier, "100 200 300", "300:7", count=10)
        assert classifier.infer(200).behavior == InferredBehavior.UNKNOWN

    def test_never_observed_is_unknown(self):
        classifier = CommunityBehaviorClassifier()
        inference = classifier.infer(999)
        assert inference.behavior == InferredBehavior.UNKNOWN
        assert inference.sample_size == 0

    def test_origin_is_not_credited_as_transit(self):
        classifier = CommunityBehaviorClassifier()
        feed(classifier, "100 200 300", "300:7")
        evidence = classifier.evidence_for(300)
        # The origin never occupies a transit position: either no
        # evidence record at all, or one with zero transit counts.
        assert evidence is None or evidence.transit_announcements == 0

    def test_prepending_does_not_double_count(self):
        classifier = CommunityBehaviorClassifier()
        feed(classifier, "100 200 200 300", "300:7")
        evidence = classifier.evidence_for(200)
        # distinct_ases collapses the prepend: one transit position.
        assert evidence.transit_announcements == 30

    def test_withdrawals_ignored(self):
        classifier = CommunityBehaviorClassifier()
        classifier.observe(
            Observation(
                timestamp=0.0,
                session=SESSION,
                prefix=PREFIX,
                kind=ObservationKind.WITHDRAW,
            )
        )
        assert classifier.evidence_for(100) is None

    def test_infer_all_sorted_by_sample_size(self):
        classifier = CommunityBehaviorClassifier(min_samples=1)
        feed(classifier, "100 200 300", "300:7", count=40)
        feed(classifier, "100 400 500", "500:7", count=10)
        inferences = classifier.infer_all()
        assert inferences[0].sample_size >= inferences[-1].sample_size

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CommunityBehaviorClassifier(tag_threshold=1.5)

    def test_str_rendering(self):
        classifier = CommunityBehaviorClassifier()
        feed(classifier, "100 200 300", "200:301")
        assert "AS200" in str(classifier.infer(200))


class TestScoring:
    def test_score_against_ground_truth(self):
        classifier = CommunityBehaviorClassifier()
        feed(classifier, "100 200 300", "200:301")  # 200 tags
        feed(classifier, "100 400 300", "300:9")  # 400 ignores
        inferences = classifier.infer_all()
        scores = score_against_ground_truth(
            inferences,
            {200: "tagger", 400: "ignorer", 300: "ignorer"},
        )
        assert scores["accuracy"] == 1.0
        assert scores["precision_tagger"] == 1.0

    def test_unknown_and_unlabeled_excluded(self):
        classifier = CommunityBehaviorClassifier()
        feed(classifier, "100 200 300", "200:301")
        scores = score_against_ground_truth(
            classifier.infer_all(), {}
        )
        assert scores["classified"] == 0.0
        assert scores["accuracy"] == 0.0

    def test_cleaner_variants_both_map_to_cleaner(self):
        classifier = CommunityBehaviorClassifier()
        feed(classifier, "100 200 300", "")
        for practice in ("cleaner_egress", "cleaner_ingress"):
            scores = score_against_ground_truth(
                classifier.infer_all(), {200: practice, 100: practice}
            )
            assert scores["accuracy"] > 0.0


class TestOnSyntheticInternet:
    """End-to-end: infer practices on the simulated day and score
    against the workload's ground truth."""

    def test_inference_beats_chance(self):
        from repro.analysis import observations_from_collector
        from repro.workloads import InternetConfig, InternetModel

        day = InternetModel(InternetConfig.small()).run()
        classifier = CommunityBehaviorClassifier(min_samples=30)
        for collector in day.collectors():
            classifier.observe_all(
                observations_from_collector(collector)
            )
        ground_truth = {
            asn: practice.value
            for asn, practice in day.practices.items()
        }
        scores = score_against_ground_truth(
            classifier.infer_all(), ground_truth
        )
        assert scores["classified"] >= 5
        # Three-way classification: chance is ~1/3.
        assert scores["accuracy"] > 0.45, scores
