"""``repro check`` CLI contract: exit codes, JSON schema, explain.

Also the clean-tree regression gate: the shipped ``src/`` tree must
lint clean with the shipped (empty) baseline, and the recorded
``CACHE_SCHEMA_FINGERPRINT`` must match the live schema.
"""

import json
import os

import pytest

from repro import cli as repro_cli
from repro.devtools import (
    KNOWN_CODES,
    REPORT_VERSION,
    load_module,
    run_check,
    schema_fingerprint,
)
from repro.devtools.project import Project

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


@pytest.fixture
def bad_tree(tmp_path, monkeypatch):
    """A scan root with one DET001 violation; cwd moved there so the
    default-baseline discovery logic is exercised (no baseline file
    exists, so nothing is grandfathered)."""
    package = tmp_path / "repro" / "rib"
    package.mkdir(parents=True)
    (package / "decision.py").write_text(
        "def f(route):\n    return hash(route)\n"
    )
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert repro_cli.main(["check", "."]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, bad_tree, capsys):
        assert repro_cli.main(["check", "."]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_unknown_select_code_exits_two(self, bad_tree, capsys):
        assert repro_cli.main(["check", "--select", "NOPE001", "."]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "NOPE001" in captured.err

    def test_missing_path_exits_two(self, bad_tree, capsys):
        assert repro_cli.main(["check", "no/such/dir"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_damaged_baseline_exits_two(self, bad_tree, capsys):
        (bad_tree / "broken.json").write_text("{")
        code = repro_cli.main(
            ["check", "--baseline", "broken.json", "."]
        )
        assert code == 2
        assert "baseline" in capsys.readouterr().err


class TestJsonOutput:
    def test_schema_is_stable(self, bad_tree, capsys):
        assert repro_cli.main(["check", "--format", "json", "."]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == REPORT_VERSION
        assert set(document) == {
            "version",
            "clean",
            "files_scanned",
            "codes",
            "counts",
            "suppressed",
            "baselined",
            "findings",
        }
        (finding,) = document["findings"]
        assert set(finding) == {
            "code",
            "path",
            "line",
            "col",
            "message",
            "line_text",
        }
        assert finding["code"] == "DET001"
        assert document["counts"] == {"DET001": 1}
        assert document["clean"] is False

    def test_findings_are_sorted(self, bad_tree, capsys):
        (bad_tree / "repro" / "rib" / "another.py").write_text(
            "import time\n\ndef f():\n    return time.time(), hash(f)\n"
        )
        repro_cli.main(["check", "--format", "json", "."])
        document = json.loads(capsys.readouterr().out)
        keys = [
            (f["path"], f["line"], f["col"], f["code"])
            for f in document["findings"]
        ]
        assert keys == sorted(keys)

    def test_select_narrows_codes(self, bad_tree, capsys):
        assert (
            repro_cli.main(
                ["check", "--format", "json", "--select", "DET002", "."]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["codes"] == ["DET002"]
        assert document["findings"] == []


class TestExplain:
    def test_explain_known_code(self, capsys):
        assert repro_cli.main(["check", "--explain", "DET001"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out
        # The rationale must carry the historical bug, not just a rule.
        assert "PYTHONHASHSEED" in out

    def test_explain_all_covers_every_code(self, capsys):
        assert repro_cli.main(["check", "--explain", "all"]) == 0
        out = capsys.readouterr().out
        for code in KNOWN_CODES:
            assert code in out

    def test_explain_unknown_code_exits_two(self, capsys):
        assert repro_cli.main(["check", "--explain", "XX999"]) == 2
        assert "XX999" in capsys.readouterr().err


class TestWriteBaseline:
    def test_adoption_round_trip(self, bad_tree, capsys):
        assert repro_cli.main(["check", "--write-baseline", "."]) == 0
        assert "wrote 1 finding(s)" in capsys.readouterr().err
        # The freshly written default baseline now grandfathers it.
        assert repro_cli.main(["check", "."]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # Strict mode ignores it again.
        assert repro_cli.main(["check", "--no-baseline", "."]) == 1


class TestShippedTree:
    """Regression gate for the sweep: the repo must stay lint-clean."""

    def test_src_tree_is_clean(self):
        report = run_check([SRC])
        assert report.clean, report.render_human()
        assert report.files_scanned > 50

    def test_recorded_fingerprint_matches_live_schema(self):
        # The CACHE001 guard itself: if this fails, the serialized
        # result schema changed — bump CACHE_VERSION in
        # scenarios/runner.py and re-pin CACHE_SCHEMA_FINGERPRINT.
        from repro.scenarios.runner import CACHE_SCHEMA_FINGERPRINT

        project = Project(
            modules=[
                load_module(
                    os.path.join(SRC, "repro", "scenarios", name)
                )
                for name in (
                    "serialize.py",
                    "engine.py",
                    "runner.py",
                )
            ]
        )
        assert schema_fingerprint(project) == CACHE_SCHEMA_FINGERPRINT

    def test_cli_entry_on_shipped_tree(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert repro_cli.main(["check", "src"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
