"""Unit tests for the policy engine, filters, geo-tagging, actions."""

import pytest

from repro.bgp import ASPath, CommunitySet, PathAttributes
from repro.bgp.community import BLACKHOLE, Community, NO_ADVERTISE, NO_EXPORT
from repro.netbase import ASN, Prefix
from repro.policy import (
    AcceptAll,
    AddCommunity,
    BlackholePolicy,
    GeoLocation,
    GeoTagger,
    KeepOnlyOwnCommunities,
    PolicyChain,
    PrependASN,
    RejectAll,
    RoutingPolicy,
    SetLocalPref,
    SetMED,
    StripAllCommunities,
    StripCommunitiesMatching,
    StripCommunitiesOfASN,
    honor_no_export,
    is_blackhole,
)
from repro.policy.engine import PolicyContext
from repro.policy.filters import RejectPrefixes
from repro.policy.geo import GeoCommunityScheme, build_locations

CONTEXT = PolicyContext(
    local_asn=ASN(64500),
    peer_asn=ASN(64501),
    prefix=Prefix("203.0.113.0/24"),
    ingress_point="frankfurt-1",
    is_ebgp=True,
)


def attrs(communities="3356:300 64501:20"):
    return PathAttributes(
        as_path=ASPath.from_string("64501 65099"),
        next_hop="10.0.0.1",
        communities=CommunitySet.parse(communities),
    )


class TestChains:
    def test_empty_chain_accepts(self):
        assert PolicyChain().apply(attrs(), CONTEXT) == attrs()

    def test_accept_all(self):
        assert AcceptAll().apply(attrs(), CONTEXT) == attrs()

    def test_reject_all_short_circuits(self):
        chain = PolicyChain((RejectAll(), AddCommunity("1:1")))
        assert chain.apply(attrs(), CONTEXT) is None

    def test_then_composes(self):
        chain = PolicyChain((StripAllCommunities(),)).then(
            AddCommunity("64500:1")
        )
        result = chain.apply(attrs(), CONTEXT)
        assert result.communities == CommunitySet.parse("64500:1")

    def test_rejects_non_steps(self):
        with pytest.raises(TypeError):
            PolicyChain(("not a step",))  # type: ignore[arg-type]

    def test_describe(self):
        chain = PolicyChain((StripAllCommunities(), AddCommunity("1:1")))
        assert "strip-all-communities" in chain.describe()
        assert PolicyChain().describe() == "accept"

    def test_routing_policy_permissive(self):
        policy = RoutingPolicy.permissive()
        assert policy.import_chain.apply(attrs(), CONTEXT) == attrs()
        assert "import: accept" in policy.describe()


class TestFilters:
    def test_strip_all(self):
        result = StripAllCommunities().apply(attrs(), CONTEXT)
        assert result.communities.is_empty()

    def test_strip_all_is_noop_when_empty(self):
        bare = attrs("")
        assert StripAllCommunities().apply(bare, CONTEXT) is bare

    def test_strip_of_asn(self):
        result = StripCommunitiesOfASN(3356).apply(attrs(), CONTEXT)
        assert result.communities == CommunitySet.parse("64501:20")

    def test_strip_matching(self):
        step = StripCommunitiesMatching(
            lambda c: c.local_value >= 100, "value>=100"
        )
        result = step.apply(attrs(), CONTEXT)
        assert result.communities == CommunitySet.parse("64501:20")

    def test_keep_only_own(self):
        own = attrs("64500:5 3356:300")
        result = KeepOnlyOwnCommunities().apply(own, CONTEXT)
        assert result.communities == CommunitySet.parse("64500:5")

    def test_add_community_from_strings(self):
        step = AddCommunity("64500:1", "64500:2:3")
        result = step.apply(attrs(""), CONTEXT)
        assert len(result.communities) == 2

    def test_add_community_rejects_empty(self):
        with pytest.raises(ValueError):
            AddCommunity()

    def test_add_community_noop_when_present(self):
        present = attrs("64500:1")
        assert AddCommunity("64500:1").apply(present, CONTEXT) is present

    def test_set_med(self):
        assert SetMED(42).apply(attrs(), CONTEXT).med == 42
        assert SetMED(None).apply(attrs(), CONTEXT).med is None

    def test_set_local_pref(self):
        assert SetLocalPref(200).apply(attrs(), CONTEXT).local_pref == 200

    def test_prepend(self):
        result = PrependASN(2).apply(attrs(), CONTEXT)
        assert result.as_path.asns()[:2] == (ASN(64500), ASN(64500))

    def test_prepend_rejects_zero(self):
        with pytest.raises(ValueError):
            PrependASN(0)

    def test_reject_prefixes(self):
        step = RejectPrefixes([Prefix("203.0.113.0/24")])
        assert step.apply(attrs(), CONTEXT) is None
        other = PolicyContext(
            local_asn=ASN(64500),
            peer_asn=ASN(64501),
            prefix=Prefix("10.0.0.0/8"),
        )
        assert step.apply(attrs(), other) is not None


class TestGeo:
    def test_scheme_bands(self):
        scheme = GeoCommunityScheme(3356)
        tags = scheme.communities_for(
            GeoLocation("europe", "DE", "Frankfurt")
        )
        granularities = sorted(
            scheme.granularity_of(tag) for tag in tags.classic
        )
        assert granularities == ["city", "continent", "country"]

    def test_scheme_ignores_foreign_communities(self):
        scheme = GeoCommunityScheme(3356)
        assert scheme.granularity_of(Community.parse("174:300")) is None

    def test_scheme_is_stable_per_city(self):
        scheme = GeoCommunityScheme(3356)
        first = scheme.communities_for(GeoLocation("europe", "DE", "Berlin"))
        second = scheme.communities_for(GeoLocation("europe", "DE", "Berlin"))
        assert first == second

    def test_different_cities_get_different_tags(self):
        scheme = GeoCommunityScheme(3356)
        berlin = scheme.communities_for(GeoLocation("europe", "DE", "Berlin"))
        dallas = scheme.communities_for(
            GeoLocation("north-america", "US", "Dallas")
        )
        assert berlin != dallas

    def test_location_validates_continent(self):
        with pytest.raises(ValueError):
            GeoLocation("atlantis", "XX", "Nowhere")

    def test_tagger_tags_known_ingress(self):
        tagger = GeoTagger(
            3356,
            build_locations([("frankfurt-1", "europe", "DE", "Frankfurt")]),
        )
        result = tagger.apply(attrs(""), CONTEXT)
        assert len(result.communities) == 3
        assert all(c.asn == 3356 for c in result.communities.classic)

    def test_tagger_passes_unknown_ingress(self):
        tagger = GeoTagger(
            3356,
            build_locations([("vienna-1", "europe", "AT", "Vienna")]),
        )
        bare = attrs("")
        assert tagger.apply(bare, CONTEXT) is bare  # frankfurt-1 unknown

    def test_tagger_replaces_own_stale_tags(self):
        tagger = GeoTagger(
            3356,
            build_locations(
                [
                    ("frankfurt-1", "europe", "DE", "Frankfurt"),
                    ("dallas-1", "north-america", "US", "Dallas"),
                ]
            ),
        )
        tagged_frankfurt = tagger.apply(attrs(""), CONTEXT)
        dallas_context = PolicyContext(
            local_asn=ASN(64500),
            peer_asn=ASN(64501),
            prefix=Prefix("203.0.113.0/24"),
            ingress_point="dallas-1",
        )
        retagged = tagger.apply(tagged_frankfurt, dallas_context)
        # Still exactly 3 tags: the Frankfurt set was replaced.
        assert len(retagged.communities) == 3
        assert retagged.communities != tagged_frankfurt.communities

    def test_tagger_preserves_foreign_tags(self):
        tagger = GeoTagger(
            3356,
            build_locations([("frankfurt-1", "europe", "DE", "Frankfurt")]),
        )
        result = tagger.apply(attrs("174:9"), CONTEXT)
        assert Community.parse("174:9") in result.communities

    def test_tagger_introspection(self):
        tagger = GeoTagger(
            3356,
            build_locations([("frankfurt-1", "europe", "DE", "Frankfurt")]),
        )
        assert tagger.ingress_points == ["frankfurt-1"]
        assert tagger.location_of("frankfurt-1").city == "Frankfurt"


class TestActions:
    def test_no_export_blocks_ebgp_only(self):
        scoped = attrs("").replace(
            communities=CommunitySet((NO_EXPORT,))
        )
        assert not honor_no_export(scoped, is_ebgp=True)
        assert honor_no_export(scoped, is_ebgp=False)

    def test_no_advertise_blocks_everything(self):
        scoped = attrs("").replace(
            communities=CommunitySet((NO_ADVERTISE,))
        )
        assert not honor_no_export(scoped, is_ebgp=True)
        assert not honor_no_export(scoped, is_ebgp=False)

    def test_plain_routes_pass(self):
        assert honor_no_export(attrs(), is_ebgp=True)

    def test_is_blackhole(self):
        assert is_blackhole(
            attrs("").replace(communities=CommunitySet((BLACKHOLE,)))
        )
        assert not is_blackhole(attrs())

    def test_blackhole_policy_raises_pref_and_scopes(self):
        policy = BlackholePolicy()
        held = attrs("").replace(communities=CommunitySet((BLACKHOLE,)))
        result = policy.apply(held, CONTEXT)
        assert result.local_pref == 10_000
        assert NO_EXPORT in result.communities

    def test_blackhole_policy_ignores_normal_routes(self):
        normal = attrs()
        assert BlackholePolicy().apply(normal, CONTEXT) is normal
