"""Engine instrumentation: metrics reports, determinism, journals.

The load-bearing invariant: turning the metrics registry on or off
must never change a run's *observable output bytes* — only whether a
``metrics_report`` rides along.  Sweep worker payloads
(:func:`run_scenario_json`) never carry the report at all, so the
cross-backend determinism contract survives instrumentation.
"""

import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.journal import read_journal
from repro.scenarios import (
    InternetSpec,
    ScenarioSpec,
    result_from_json,
    result_to_json,
    run_scenario,
    spec_to_json,
)
from repro.scenarios.engine import run_scenario_json

TINY = InternetSpec(
    tier1_count=2,
    transit_count=3,
    stub_count=5,
    beacon_count=1,
    link_flaps=2,
    prefix_flaps=1,
    med_churn_events=1,
    community_churn_events=2,
    prepend_change_events=1,
    collector_session_resets=1,
)


def tiny_spec(**overrides) -> ScenarioSpec:
    payload = {
        "name": "obs-tiny",
        "kind": "internet",
        "seed": 5,
        "internet": TINY,
        "collectors": ("update_counts",),
    }
    payload.update(overrides)
    return ScenarioSpec(**payload)


@pytest.fixture(autouse=True)
def metrics_off_afterwards():
    obs_metrics.set_metrics_enabled(False)
    obs_metrics.reset_metrics()
    yield
    obs_metrics.set_metrics_enabled(False)
    obs_metrics.reset_metrics()


def stripped_json(result) -> str:
    """The result payload minus the (volatile) metrics report."""
    result.metrics_report = {}
    return result_to_json(result)


class TestMetricsReport:
    def test_disabled_default_has_empty_report(self):
        result = run_scenario(tiny_spec())
        assert result.metrics_report == {}

    def test_enabled_internet_run_reports_phases_and_gauges(self):
        with obs_metrics.enabled_scope():
            result = run_scenario(tiny_spec())
        report = result.metrics_report
        assert report["phases"]["internet.build"] > 0
        assert report["phases"]["internet.run"] > 0
        assert report["phases"]["scenario.analyze"] >= 0
        gauges = report["gauges"]
        assert gauges["sim.events_processed"] > 0
        assert gauges["sim.peak_pending_events"] > 0
        assert gauges["sim.collected_messages"] > 0
        assert gauges["sim.messages_per_event"] > 0
        assert report["counters"]["scenario.observations"] > 0
        # Memo effectiveness rides along, with live hit counts.
        assert report["memo"]["wire.attr_block"]["misses"] >= 0

    def test_enabled_lab_run_reports_lab_phase(self):
        spec = ScenarioSpec(
            name="obs-lab",
            kind="lab",
            seed=1,
            collectors=("lab_matrix",),
        )
        with obs_metrics.enabled_scope():
            result = run_scenario(spec)
        assert result.metrics_report["phases"]["lab.run"] > 0
        assert result.metrics_report["counters"]["lab.experiments"] == 20

    def test_each_run_resets_the_previous_runs_state(self):
        with obs_metrics.enabled_scope():
            first = run_scenario(tiny_spec())
            second = run_scenario(tiny_spec())
        observed = "scenario.observations"
        assert (
            second.metrics_report["counters"][observed]
            == first.metrics_report["counters"][observed]
        )

    def test_instrumentation_does_not_change_output_bytes(self):
        plain = run_scenario(tiny_spec())
        with obs_metrics.enabled_scope():
            instrumented = run_scenario(tiny_spec())
        assert instrumented.metrics_report  # it did measure something
        assert stripped_json(instrumented) == stripped_json(plain)


class TestWorkerPayloads:
    def test_worker_payload_never_carries_metrics_report(self):
        spec_json = spec_to_json(tiny_spec(), indent=None)
        with obs_metrics.enabled_scope():
            payload = run_scenario_json(spec_json)
        assert "metrics_report" not in json.loads(payload)

    def test_worker_payload_identical_enabled_vs_disabled(self):
        spec_json = spec_to_json(tiny_spec(), indent=None)
        disabled = run_scenario_json(spec_json)
        with obs_metrics.enabled_scope():
            enabled = run_scenario_json(spec_json)
        assert enabled == disabled

    def test_worker_journal_records_lifecycle(self, tmp_path):
        journal_path = str(tmp_path / "cell.jsonl")
        spec_json = spec_to_json(tiny_spec(), indent=None)
        run_scenario_json(spec_json, journal_path)
        events = [event["event"] for event in read_journal(journal_path)]
        assert events[0] == "start"
        assert events[-1] == "finish"

    def test_worker_journal_records_failure(self, tmp_path):
        journal_path = str(tmp_path / "cell.jsonl")
        bad = ScenarioSpec(
            name="obs-bad-mrt",
            kind="mrt",
            seed=1,
            collectors=("update_counts",),
        )
        with pytest.raises(Exception):
            run_scenario_json(spec_to_json(bad, indent=None), journal_path)
        events = [event["event"] for event in read_journal(journal_path)]
        assert events == ["start", "fail"]


class TestHeartbeats:
    def test_on_heartbeat_fires_at_cadence(self):
        payloads = []
        run_scenario(
            tiny_spec(),
            heartbeat_every=50,
            on_heartbeat=payloads.append,
        )
        assert payloads
        assert payloads[0]["observations"] == 50
        for payload in payloads:
            assert payload["observations"] % 50 == 0
            assert payload["rate_per_second"] > 0
            assert payload["peak_rss_kb"] > 0

    def test_no_sink_means_no_heartbeat_work(self):
        # Without a journal or callback the pump disables heartbeats
        # outright (heartbeat_every alone has nowhere to deliver).
        result = run_scenario(tiny_spec(), heartbeat_every=50)
        assert result.metrics_report == {}


class TestSerializeRoundTrip:
    def test_metrics_report_round_trips(self):
        with obs_metrics.enabled_scope():
            result = run_scenario(tiny_spec())
        clone = result_from_json(result_to_json(result))
        assert clone.metrics_report == result.metrics_report

    def test_report_key_absent_when_empty(self):
        result = run_scenario(tiny_spec())
        payload = json.loads(result_to_json(result))
        assert "metrics_report" not in payload

    def test_old_payload_without_report_loads(self):
        result = run_scenario(tiny_spec())
        payload = json.loads(result_to_json(result))
        payload.pop("metrics_report", None)
        clone = result_from_json(json.dumps(payload))
        assert clone.metrics_report == {}
