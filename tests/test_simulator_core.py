"""Unit tests for the simulator core: events, sessions, links."""

import pytest

from repro.netbase import SimClock
from repro.simulator import EventQueue, Network
from repro.simulator.session import SessionKind


class TestEventQueue:
    def setup_method(self):
        self.queue = EventQueue(SimClock(0.0))

    def test_runs_in_time_order(self):
        seen = []
        self.queue.schedule(2.0, lambda: seen.append("late"))
        self.queue.schedule(1.0, lambda: seen.append("early"))
        self.queue.run_until_idle()
        assert seen == ["early", "late"]

    def test_ties_break_in_insertion_order(self):
        seen = []
        self.queue.schedule(1.0, lambda: seen.append("first"))
        self.queue.schedule(1.0, lambda: seen.append("second"))
        self.queue.run_until_idle()
        assert seen == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        self.queue.schedule(5.0, lambda: None)
        self.queue.run_until_idle()
        assert self.queue.now == 5.0

    def test_until_boundary(self):
        seen = []
        self.queue.schedule(1.0, lambda: seen.append(1))
        self.queue.schedule(3.0, lambda: seen.append(3))
        executed = self.queue.run(until=2.0)
        assert executed == 1
        assert seen == [1]
        assert self.queue.now == 2.0  # clock advanced to boundary
        assert self.queue.pending == 1

    def test_events_can_schedule_events(self):
        seen = []

        def outer():
            seen.append("outer")
            self.queue.schedule(1.0, lambda: seen.append("inner"))

        self.queue.schedule(1.0, outer)
        self.queue.run_until_idle()
        assert seen == ["outer", "inner"]

    def test_cancelled_events_are_skipped(self):
        seen = []
        event = self.queue.schedule(1.0, lambda: seen.append("cancelled"))
        self.queue.schedule(2.0, lambda: seen.append("kept"))
        event.cancel()
        self.queue.run_until_idle()
        assert seen == ["kept"]

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            self.queue.schedule(-1.0, lambda: None)

    def test_rejects_scheduling_in_past(self):
        self.queue.schedule(5.0, lambda: None)
        self.queue.run_until_idle()
        with pytest.raises(ValueError):
            self.queue.schedule_at(1.0, lambda: None)

    def test_max_events_backstop(self):
        def forever():
            self.queue.schedule(1.0, forever)

        self.queue.schedule(1.0, forever)
        with pytest.raises(RuntimeError):
            self.queue.run_until_idle(max_events=100)

    def test_processed_counter(self):
        self.queue.schedule(1.0, lambda: None)
        self.queue.schedule(2.0, lambda: None)
        self.queue.run_until_idle()
        assert self.queue.processed == 2


class TestTombstonesAndCompaction:
    """Regression tests for the cancelled-event tombstone leak."""

    def setup_method(self):
        self.queue = EventQueue(SimClock(0.0))

    def test_live_pending_excludes_cancelled(self):
        kept = self.queue.schedule(1.0, lambda: None)
        cancelled = [
            self.queue.schedule(2.0, lambda: None) for _ in range(3)
        ]
        # Cancel only one: tombstones (1) don't outnumber live (3) yet.
        cancelled[0].cancel()
        assert self.queue.live_pending == 3
        assert self.queue.pending >= self.queue.live_pending
        assert kept is not None

    def test_heap_compacts_when_tombstones_dominate(self):
        events = [
            self.queue.schedule(float(i + 1), lambda: None)
            for i in range(100)
        ]
        for event in events[:60]:
            event.cancel()
        # More tombstones than live events: the heap must have shrunk
        # instead of carrying the cancelled entries until popped.
        assert self.queue.pending < 100
        assert self.queue.live_pending == 40
        assert self.queue.run_until_idle() == 40

    def test_churn_does_not_grow_heap_unboundedly(self):
        # Damping/beacon-flap style churn: schedule + cancel forever.
        for _ in range(10_000):
            self.queue.schedule(1.0, lambda: None).cancel()
        assert self.queue.pending <= 2
        assert self.queue.live_pending == 0

    def test_cancel_after_execution_is_noop(self):
        """Cancelling a fired handle (beacon-style bulk cancel) must
        not corrupt the tombstone count or live_pending."""
        fired = [self.queue.schedule(float(i + 1), lambda: None) for i in range(10)]
        self.queue.run_until_idle()
        # Heap big enough that compaction alone can't hide a bad count.
        self.queue.schedule(20.0, lambda: None)
        for i in range(49):
            self.queue.schedule(21.0 + i, lambda: None)
        for event in fired[:5]:
            event.cancel()
        assert self.queue.live_pending == 50
        assert self.queue.run_until_idle() == 50  # no spurious RuntimeError

    def test_cancel_is_idempotent(self):
        event = self.queue.schedule(1.0, lambda: None)
        self.queue.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert self.queue.live_pending == 1
        assert self.queue.run_until_idle() == 1

    def test_cancel_during_run_is_safe(self):
        seen = []
        later = [
            self.queue.schedule(2.0, lambda i=i: seen.append(i))
            for i in range(10)
        ]

        def cancel_most():
            for event in later[:9]:
                event.cancel()

        self.queue.schedule(1.0, cancel_most)
        self.queue.run_until_idle()
        assert seen == [9]

    def test_peak_pending_high_water_mark(self):
        for i in range(5):
            self.queue.schedule(float(i + 1), lambda: None)
        self.queue.run_until_idle()
        assert self.queue.peak_pending == 5
        assert self.queue.pending == 0


class TestScheduleAtFloatDrift:
    """Regression tests for schedule_at rejecting 'now' after drift."""

    def setup_method(self):
        self.queue = EventQueue(SimClock(0.0))

    def test_exactly_now_is_accepted(self):
        self.queue.schedule(5.0, lambda: None)
        self.queue.run_until_idle()
        seen = []
        self.queue.schedule_at(self.queue.now, lambda: seen.append(1))
        self.queue.run_until_idle()
        assert seen == [1]

    def test_accumulated_float_timestamps_do_not_raise(self):
        # Summing many small deltas drifts a recomputed timestamp a few
        # ulps below the clock; such times must be clamped, not fatal.
        start = 1_584_230_400.0  # day-scale epoch, coarse float grid
        clock = SimClock(start)
        queue = EventQueue(clock)
        step = 0.1
        total = start
        for _ in range(100):
            total += step
        queue.schedule_at(total, lambda: None)
        queue.run_until_idle()
        # total and now are float-equal-ish but may differ by ulps in
        # either direction; rescheduling at the drifted sum must work.
        drifted = start
        for _ in range(100):
            drifted += step
        event = queue.schedule_at(drifted, lambda: None)
        assert event.time >= queue.now
        queue.run_until_idle()

    def test_ulp_past_time_is_clamped_to_now(self):
        import math

        clock = SimClock(1_584_230_400.0)
        queue = EventQueue(clock)
        ulp_before = math.nextafter(clock.now, 0.0)
        assert ulp_before < clock.now
        event = queue.schedule_at(ulp_before, lambda: None)
        assert event.time == clock.now
        queue.run_until_idle()

    def test_genuinely_past_times_still_raise(self):
        self.queue.schedule(5.0, lambda: None)
        self.queue.run_until_idle()
        with pytest.raises(ValueError):
            self.queue.schedule_at(4.0, lambda: None)


class TestDeliveryBatching:
    """Same-fire-time messages coalesce into one event, same outcome."""

    def build(self, batching):
        network = Network(batch_delivery=batching)
        r1 = network.add_router("r1", 65001)
        r2 = network.add_router("r2", 65002)
        session = network.connect(r1, r2, delay=0.25)
        return network, r1, r2, session

    def test_same_fire_time_messages_share_one_event(self):
        from repro.netbase import Prefix

        network, r1, r2, _session = self.build(True)
        for index in range(5):
            r1.originate(Prefix(f"10.{index}.0.0/16"))
        # 5 announcements to one peer at one fire time: one queue event.
        assert network.queue.pending == 1
        network.converge()
        assert len(r2.loc_rib) == 5

    def test_unbatched_mode_schedules_per_message(self):
        from repro.netbase import Prefix

        network, r1, r2, _session = self.build(False)
        for index in range(5):
            r1.originate(Prefix(f"10.{index}.0.0/16"))
        assert network.queue.pending == 5
        network.converge()
        assert len(r2.loc_rib) == 5

    def test_batched_and_unbatched_agree(self):
        from repro.netbase import Prefix

        outcomes = []
        for batching in (True, False):
            network, r1, r2, session = self.build(batching)
            for index in range(4):
                r1.originate(Prefix(f"10.{index}.0.0/16"))
            network.converge()
            r1.withdraw_origination(Prefix("10.2.0.0/16"))
            network.converge()
            outcomes.append(
                (
                    sorted(str(px) for px in r2.loc_rib.prefixes()),
                    r1.sent_updates,
                    r1.sent_withdrawals,
                    r2.received_updates,
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_messages_at_different_times_do_not_coalesce(self):
        from repro.netbase import Prefix

        network, r1, _r2, _session = self.build(True)
        r1.originate(Prefix("10.0.0.0/16"))
        network.run(max_events=0)  # no execution, just scheduling
        network.queue.schedule(0.1, lambda: r1.originate(Prefix("10.1.0.0/16")))
        network.converge()
        # Both prefixes arrived despite distinct fire times.
        assert len(network.routers["r2"].loc_rib) == 2

    def test_taps_fire_per_message_not_per_batch(self):
        from repro.netbase import Prefix

        network, r1, _r2, session = self.build(True)
        captured = []
        session.taps.append(
            lambda when, sender, message: captured.append(sender.name)
        )
        for index in range(3):
            r1.originate(Prefix(f"10.{index}.0.0/16"))
        assert captured == ["r1", "r1", "r1"]

    def test_batch_dropped_when_session_goes_down(self):
        from repro.netbase import Prefix

        network, r1, r2, session = self.build(True)
        r1.originate(Prefix("10.0.0.0/16"))
        session.established = False  # raw teardown, no notifications
        network.run(max_events=10)
        assert len(r2.loc_rib) == 0


class TestSessions:
    def setup_method(self):
        self.network = Network()
        self.r1 = self.network.add_router("r1", 65001)
        self.r2 = self.network.add_router("r2", 65002)
        self.r3 = self.network.add_router("r3", 65002)

    def test_kind_inferred_from_asns(self):
        ebgp = self.network.connect(self.r1, self.r2)
        ibgp = self.network.connect(self.r2, self.r3)
        assert ebgp.kind == SessionKind.EBGP
        assert ebgp.is_ebgp
        assert ibgp.kind == SessionKind.IBGP

    def test_other_endpoint(self):
        session = self.network.connect(self.r1, self.r2)
        assert session.other(self.r1) is self.r2
        assert session.other(self.r2) is self.r1
        with pytest.raises(ValueError):
            session.other(self.r3)

    def test_addresses_are_distinct(self):
        session = self.network.connect(self.r1, self.r2)
        assert session.local_address(self.r1) != session.local_address(
            self.r2
        )
        assert session.peer_address(self.r1) == session.local_address(
            self.r2
        )

    def test_send_is_delayed(self):
        session = self.network.connect(self.r1, self.r2, delay=0.5)
        from repro.bgp import KeepaliveMessage

        assert session.send(self.r1, KeepaliveMessage())
        assert self.network.queue.pending == 1

    def test_down_session_drops_messages(self):
        session = self.network.connect(self.r1, self.r2)
        session.bring_down()
        from repro.bgp import KeepaliveMessage

        assert not session.send(self.r1, KeepaliveMessage())

    def test_taps_observe_messages(self):
        session = self.network.connect(self.r1, self.r2)
        captured = []
        session.taps.append(
            lambda when, sender, message: captured.append(sender.name)
        )
        from repro.bgp import KeepaliveMessage

        session.send(self.r1, KeepaliveMessage())
        assert captured == ["r1"]

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(ValueError):
            self.network.add_router("r1", 65009)
        with pytest.raises(ValueError):
            self.network.add_collector("r1")


class TestLinks:
    def setup_method(self):
        self.network = Network()
        self.r1 = self.network.add_router("r1", 65001)
        self.r2 = self.network.add_router("r2", 65002)

    def test_fail_takes_sessions_down(self):
        link = self.network.add_link("l1")
        session = self.network.connect(self.r1, self.r2, link=link)
        link.fail()
        assert not session.established
        assert not link.is_up

    def test_restore_brings_sessions_up(self):
        link = self.network.add_link("l1")
        session = self.network.connect(self.r1, self.r2, link=link)
        link.fail()
        link.restore()
        assert session.established

    def test_fail_is_idempotent(self):
        link = self.network.add_link("l1")
        self.network.connect(self.r1, self.r2, link=link)
        link.fail()
        link.fail()
        link.restore()
        link.restore()
        assert link.is_up

    def test_flap_schedules_restore(self):
        link = self.network.add_link("l1")
        session = self.network.connect(self.r1, self.r2, link=link)
        self.network.converge()
        link.flap(self.network, down_for=10.0)
        assert not session.established
        self.network.converge()
        assert session.established

    def test_attach_to_down_link_downs_session(self):
        link = self.network.add_link("l1")
        link.fail()
        session = self.network.connect(self.r1, self.r2)
        link.attach(session)
        assert not session.established

    def test_duplicate_link_names_rejected(self):
        self.network.add_link("l1")
        with pytest.raises(ValueError):
            self.network.add_link("l1")
