"""Unit tests for the simulator core: events, sessions, links."""

import pytest

from repro.netbase import SimClock
from repro.simulator import EventQueue, Network
from repro.simulator.session import SessionKind


class TestEventQueue:
    def setup_method(self):
        self.queue = EventQueue(SimClock(0.0))

    def test_runs_in_time_order(self):
        seen = []
        self.queue.schedule(2.0, lambda: seen.append("late"))
        self.queue.schedule(1.0, lambda: seen.append("early"))
        self.queue.run_until_idle()
        assert seen == ["early", "late"]

    def test_ties_break_in_insertion_order(self):
        seen = []
        self.queue.schedule(1.0, lambda: seen.append("first"))
        self.queue.schedule(1.0, lambda: seen.append("second"))
        self.queue.run_until_idle()
        assert seen == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        self.queue.schedule(5.0, lambda: None)
        self.queue.run_until_idle()
        assert self.queue.now == 5.0

    def test_until_boundary(self):
        seen = []
        self.queue.schedule(1.0, lambda: seen.append(1))
        self.queue.schedule(3.0, lambda: seen.append(3))
        executed = self.queue.run(until=2.0)
        assert executed == 1
        assert seen == [1]
        assert self.queue.now == 2.0  # clock advanced to boundary
        assert self.queue.pending == 1

    def test_events_can_schedule_events(self):
        seen = []

        def outer():
            seen.append("outer")
            self.queue.schedule(1.0, lambda: seen.append("inner"))

        self.queue.schedule(1.0, outer)
        self.queue.run_until_idle()
        assert seen == ["outer", "inner"]

    def test_cancelled_events_are_skipped(self):
        seen = []
        event = self.queue.schedule(1.0, lambda: seen.append("cancelled"))
        self.queue.schedule(2.0, lambda: seen.append("kept"))
        event.cancel()
        self.queue.run_until_idle()
        assert seen == ["kept"]

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            self.queue.schedule(-1.0, lambda: None)

    def test_rejects_scheduling_in_past(self):
        self.queue.schedule(5.0, lambda: None)
        self.queue.run_until_idle()
        with pytest.raises(ValueError):
            self.queue.schedule_at(1.0, lambda: None)

    def test_max_events_backstop(self):
        def forever():
            self.queue.schedule(1.0, forever)

        self.queue.schedule(1.0, forever)
        with pytest.raises(RuntimeError):
            self.queue.run_until_idle(max_events=100)

    def test_processed_counter(self):
        self.queue.schedule(1.0, lambda: None)
        self.queue.schedule(2.0, lambda: None)
        self.queue.run_until_idle()
        assert self.queue.processed == 2


class TestSessions:
    def setup_method(self):
        self.network = Network()
        self.r1 = self.network.add_router("r1", 65001)
        self.r2 = self.network.add_router("r2", 65002)
        self.r3 = self.network.add_router("r3", 65002)

    def test_kind_inferred_from_asns(self):
        ebgp = self.network.connect(self.r1, self.r2)
        ibgp = self.network.connect(self.r2, self.r3)
        assert ebgp.kind == SessionKind.EBGP
        assert ebgp.is_ebgp
        assert ibgp.kind == SessionKind.IBGP

    def test_other_endpoint(self):
        session = self.network.connect(self.r1, self.r2)
        assert session.other(self.r1) is self.r2
        assert session.other(self.r2) is self.r1
        with pytest.raises(ValueError):
            session.other(self.r3)

    def test_addresses_are_distinct(self):
        session = self.network.connect(self.r1, self.r2)
        assert session.local_address(self.r1) != session.local_address(
            self.r2
        )
        assert session.peer_address(self.r1) == session.local_address(
            self.r2
        )

    def test_send_is_delayed(self):
        session = self.network.connect(self.r1, self.r2, delay=0.5)
        from repro.bgp import KeepaliveMessage

        assert session.send(self.r1, KeepaliveMessage())
        assert self.network.queue.pending == 1

    def test_down_session_drops_messages(self):
        session = self.network.connect(self.r1, self.r2)
        session.bring_down()
        from repro.bgp import KeepaliveMessage

        assert not session.send(self.r1, KeepaliveMessage())

    def test_taps_observe_messages(self):
        session = self.network.connect(self.r1, self.r2)
        captured = []
        session.taps.append(
            lambda when, sender, message: captured.append(sender.name)
        )
        from repro.bgp import KeepaliveMessage

        session.send(self.r1, KeepaliveMessage())
        assert captured == ["r1"]

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(ValueError):
            self.network.add_router("r1", 65009)
        with pytest.raises(ValueError):
            self.network.add_collector("r1")


class TestLinks:
    def setup_method(self):
        self.network = Network()
        self.r1 = self.network.add_router("r1", 65001)
        self.r2 = self.network.add_router("r2", 65002)

    def test_fail_takes_sessions_down(self):
        link = self.network.add_link("l1")
        session = self.network.connect(self.r1, self.r2, link=link)
        link.fail()
        assert not session.established
        assert not link.is_up

    def test_restore_brings_sessions_up(self):
        link = self.network.add_link("l1")
        session = self.network.connect(self.r1, self.r2, link=link)
        link.fail()
        link.restore()
        assert session.established

    def test_fail_is_idempotent(self):
        link = self.network.add_link("l1")
        self.network.connect(self.r1, self.r2, link=link)
        link.fail()
        link.fail()
        link.restore()
        link.restore()
        assert link.is_up

    def test_flap_schedules_restore(self):
        link = self.network.add_link("l1")
        session = self.network.connect(self.r1, self.r2, link=link)
        self.network.converge()
        link.flap(self.network, down_for=10.0)
        assert not session.established
        self.network.converge()
        assert session.established

    def test_attach_to_down_link_downs_session(self):
        link = self.network.add_link("l1")
        link.fail()
        session = self.network.connect(self.r1, self.r2)
        link.attach(session)
        assert not session.established

    def test_duplicate_link_names_rejected(self):
        self.network.add_link("l1")
        with pytest.raises(ValueError):
            self.network.add_link("l1")
