"""Unit tests for repro.bgp.aspath."""

import pytest

from repro.bgp import ASPath, PathSegment, SegmentType
from repro.bgp.errors import AttributeError_
from repro.netbase import ASN


class TestConstruction:
    def test_from_asns(self):
        path = ASPath.from_asns([20205, 3356, 174, 12654])
        assert path.first_asn == ASN(20205)
        assert path.origin_asn == ASN(12654)
        assert path.hop_count() == 4

    def test_from_string_simple(self):
        path = ASPath.from_string("20205 3356 174 12654")
        assert path == ASPath.from_asns([20205, 3356, 174, 12654])

    def test_from_string_with_as_set(self):
        path = ASPath.from_string("100 200 {300,400}")
        assert len(path.segments) == 2
        assert path.segments[1].is_set

    def test_empty(self):
        assert ASPath.empty().is_empty()
        assert ASPath.empty().first_asn is None
        assert ASPath.empty().origin_asn is None
        assert ASPath.from_asns([]).is_empty()

    def test_segment_rejects_empty(self):
        with pytest.raises(AttributeError_):
            PathSegment(SegmentType.AS_SEQUENCE, [])

    def test_segment_rejects_overlong(self):
        with pytest.raises(AttributeError_):
            PathSegment(SegmentType.AS_SEQUENCE, range(1, 257))

    def test_rejects_non_segments(self):
        with pytest.raises(AttributeError_):
            ASPath(("not a segment",))  # type: ignore[arg-type]


class TestLength:
    def test_sequence_length(self):
        assert ASPath.from_asns([1, 2, 3]).length() == 3

    def test_as_set_counts_as_one(self):
        path = ASPath.from_string("100 {200,300}")
        assert path.length() == 2
        assert path.hop_count() == 3

    def test_prepending_increases_length(self):
        path = ASPath.from_asns([1, 2])
        assert path.prepend(1).length() == 3


class TestPrepend:
    def test_prepend_merges_into_sequence(self):
        path = ASPath.from_asns([2, 3]).prepend(1)
        assert path.asns() == (ASN(1), ASN(2), ASN(3))
        assert len(path.segments) == 1

    def test_prepend_count(self):
        path = ASPath.from_asns([2]).prepend(1, 3)
        assert path.asns() == (ASN(1), ASN(1), ASN(1), ASN(2))

    def test_prepend_onto_empty(self):
        path = ASPath.empty().prepend(9)
        assert path.asns() == (ASN(9),)

    def test_prepend_before_as_set(self):
        path = ASPath((PathSegment(SegmentType.AS_SET, [5, 6]),)).prepend(1)
        assert path.segments[0].kind == SegmentType.AS_SEQUENCE
        assert path.segments[1].is_set

    def test_prepend_rejects_zero_count(self):
        with pytest.raises(AttributeError_):
            ASPath.from_asns([1]).prepend(2, 0)


class TestPrependDetection:
    def test_distinct_ases_collapses_runs(self):
        path = ASPath.from_asns([1, 1, 1, 2, 3, 3])
        assert path.distinct_ases() == (ASN(1), ASN(2), ASN(3))

    def test_without_prepending(self):
        path = ASPath.from_asns([1, 1, 2])
        assert path.without_prepending() == ASPath.from_asns([1, 2])

    def test_is_prepend_variant(self):
        base = ASPath.from_asns([1, 2, 3])
        prepended = ASPath.from_asns([1, 1, 2, 3])
        assert prepended.is_prepend_variant_of(base)
        assert base.is_prepend_variant_of(prepended)

    def test_equal_paths_are_not_variants(self):
        base = ASPath.from_asns([1, 2])
        assert not base.is_prepend_variant_of(ASPath.from_asns([1, 2]))

    def test_different_paths_are_not_variants(self):
        first = ASPath.from_asns([1, 2, 3])
        second = ASPath.from_asns([1, 4, 3])
        assert not first.is_prepend_variant_of(second)

    def test_has_prepending(self):
        assert ASPath.from_asns([1, 1, 2]).has_prepending()
        assert not ASPath.from_asns([1, 2, 1]).has_prepending()


class TestSemantics:
    def test_contains_for_loop_detection(self):
        path = ASPath.from_asns([20205, 3356, 174])
        assert path.contains(3356)
        assert not path.contains(12654)

    def test_as_set_equality_is_unordered(self):
        first = PathSegment(SegmentType.AS_SET, [1, 2])
        second = PathSegment(SegmentType.AS_SET, [2, 1])
        assert first == second
        assert hash(first) == hash(second)

    def test_sequence_equality_is_ordered(self):
        first = PathSegment(SegmentType.AS_SEQUENCE, [1, 2])
        second = PathSegment(SegmentType.AS_SEQUENCE, [2, 1])
        assert first != second

    def test_str_rendering(self):
        path = ASPath.from_string("100 200 {300,400}")
        assert str(path) == "100 200 {300,400}"

    def test_iteration_yields_segments(self):
        path = ASPath.from_string("100 {200,300}")
        assert [segment.is_set for segment in path] == [False, True]

    def test_len_counts_hops(self):
        assert len(ASPath.from_asns([1, 1, 2])) == 3
