"""Unit + property tests for the decision process and RIBs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp import ASPath, Origin, PathAttributes
from repro.netbase import Prefix
from repro.rib import (
    AdjRIBIn,
    AdjRIBOut,
    DecisionConfig,
    DecisionProcess,
    LocRIB,
    Route,
    RouteSource,
)

PREFIX = Prefix("203.0.113.0/24")


def route(
    path="65001 65099",
    *,
    source=RouteSource.EBGP,
    local_pref=None,
    med=None,
    origin=Origin.IGP,
    peer_id="192.0.2.1",
    peer_address="10.0.0.1",
    igp_cost=0,
    learned_at=0.0,
    prefix=PREFIX,
):
    attributes = PathAttributes(
        as_path=ASPath.from_string(path),
        origin=origin,
        local_pref=local_pref,
        med=med,
        next_hop="10.0.0.1",
    )
    return Route(
        prefix,
        attributes,
        source=source,
        peer_id=peer_id,
        peer_asn=65001,
        peer_address=peer_address,
        igp_cost=igp_cost,
        learned_at=learned_at,
    )


class TestDecisionSteps:
    def setup_method(self):
        self.decide = DecisionProcess().select

    def test_empty_pool_returns_none(self):
        assert self.decide([]) is None
        assert self.decide([None]) is None

    def test_single_candidate_wins(self):
        only = route()
        assert self.decide([only]) is only

    def test_local_pref_beats_path_length(self):
        longer = route("65001 65002 65099", local_pref=200)
        shorter = route("65001 65099", local_pref=100, peer_id="192.0.2.2")
        assert self.decide([longer, shorter]) is longer

    def test_default_local_pref_is_100(self):
        explicit = route(local_pref=99)
        implicit = route(peer_id="192.0.2.2")  # absent -> 100
        assert self.decide([explicit, implicit]) is implicit

    def test_shorter_path_wins(self):
        short = route("65001 65099")
        long = route("65001 65002 65099", peer_id="192.0.2.2")
        assert self.decide([short, long]) is short

    def test_as_set_counts_one_hop(self):
        with_set = route("65001 {65002,65003} 65099")  # length 3
        plain = route("65001 65002 65099", peer_id="192.0.2.2")  # length 3
        # Tie on length; router-id step decides (lower peer_id).
        winner = self.decide([with_set, plain])
        assert winner is with_set

    def test_origin_preference(self):
        igp = route(origin=Origin.IGP)
        incomplete = route(origin=Origin.INCOMPLETE, peer_id="192.0.2.0")
        assert self.decide([igp, incomplete]) is igp

    def test_med_compared_within_same_neighbor_as(self):
        low_med = route(med=10)
        high_med = route(med=50, peer_id="192.0.2.0")
        assert self.decide([low_med, high_med]) is low_med

    def test_med_ignored_across_neighbor_ases_by_default(self):
        from_as1 = route("65001 65099", med=50)
        from_as2 = route("65002 65099", med=10, peer_id="192.0.2.2")
        # Different neighbor AS: MED skipped, router-id decides.
        assert self.decide([from_as1, from_as2]) is from_as1

    def test_always_compare_med(self):
        decide = DecisionProcess(
            DecisionConfig(always_compare_med=True)
        ).select
        from_as1 = route("65001 65099", med=50)
        from_as2 = route("65002 65099", med=10, peer_id="192.0.2.2")
        assert decide([from_as1, from_as2]) is from_as2

    def test_missing_med_treated_as_zero(self):
        absent = route()
        present = route(med=5, peer_id="192.0.2.0")
        assert self.decide([absent, present]) is absent

    def test_ebgp_beats_ibgp(self):
        external = route(source=RouteSource.EBGP)
        internal = route(source=RouteSource.IBGP, peer_id="192.0.2.0")
        assert self.decide([external, internal]) is external

    def test_local_beats_ebgp(self):
        local = route(source=RouteSource.LOCAL, peer_id=None)
        external = route()
        assert self.decide([local, external]) is local

    def test_igp_cost_hot_potato(self):
        near = route(source=RouteSource.IBGP, igp_cost=5)
        far = route(
            source=RouteSource.IBGP, igp_cost=50, peer_id="192.0.2.0"
        )
        assert self.decide([near, far]) is near

    def test_router_id_tiebreak(self):
        low = route(peer_id="192.0.2.1", peer_address="10.0.0.9")
        high = route(peer_id="192.0.2.2", peer_address="10.0.0.1")
        assert self.decide([low, high]) is low

    def test_peer_address_final_tiebreak(self):
        first = route(peer_address="10.0.0.1")
        second = route(peer_address="10.0.0.2")
        assert self.decide([first, second]) is first

    def test_prefer_oldest(self):
        decide = DecisionProcess(DecisionConfig(prefer_oldest=True)).select
        old = route(learned_at=1.0, peer_id="192.0.2.9")
        new = route(learned_at=2.0, peer_id="192.0.2.1")
        assert decide([old, new]) is old

    def test_rejects_mixed_prefixes(self):
        with pytest.raises(ValueError):
            self.decide(
                [route(), route(prefix=Prefix("10.0.0.0/8"))]
            )

    def test_ranking_orders_best_first(self):
        best = route("65001 65099")
        middle = route("65001 65002 65099", peer_id="192.0.2.2")
        worst = route("65001 65002 65003 65099", peer_id="192.0.2.3")
        ranked = DecisionProcess().ranking([worst, middle, best])
        assert ranked == [best, middle, worst]


class TestDeterminism:
    paths = st.lists(
        st.integers(min_value=1, max_value=65000), min_size=1, max_size=5
    )

    @given(
        st.lists(
            st.tuples(
                paths,
                st.integers(min_value=0, max_value=3),  # igp cost
                st.integers(min_value=1, max_value=250),  # router id suffix
                st.sampled_from([None, 50, 100, 200]),  # local pref
            ),
            min_size=1,
            max_size=6,
            # One route per peer: a router holds at most one route per
            # prefix per session, so peer addresses are unique.
            unique_by=lambda spec: spec[2],
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_selection_is_order_independent(self, specs):
        candidates = [
            route(
                " ".join(str(asn) for asn in path),
                igp_cost=cost,
                peer_id=f"192.0.2.{rid}",
                peer_address=f"10.0.1.{rid}",
                local_pref=pref,
            )
            for path, cost, rid, pref in specs
        ]
        decide = DecisionProcess().select
        forward = decide(list(candidates))
        backward = decide(list(reversed(candidates)))
        assert forward.peer_address == backward.peer_address
        assert forward.attributes == backward.attributes

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_winner_is_in_pool(self, data):
        pool = [
            route(peer_id=f"192.0.2.{i}", peer_address=f"10.0.1.{i}")
            for i in range(1, data.draw(st.integers(2, 6)))
        ]
        assert DecisionProcess().select(pool) in pool


class TestRIBs:
    def test_adj_rib_in_install_withdraw(self):
        rib = AdjRIBIn()
        first = route()
        assert rib.install(first) is None
        assert rib.get(PREFIX) is first
        replaced = rib.install(route("65001 65002 65099"))
        assert replaced is first
        assert rib.withdraw(PREFIX) is not None
        assert rib.withdraw(PREFIX) is None
        assert len(rib) == 0

    def test_adj_rib_in_clear(self):
        rib = AdjRIBIn()
        rib.install(route())
        rib.install(route(prefix=Prefix("10.0.0.0/8")))
        cleared = rib.clear()
        assert len(cleared) == 2
        assert len(rib) == 0

    def test_adj_rib_in_iteration(self):
        rib = AdjRIBIn()
        rib.install(route())
        assert [r.prefix for r in rib] == [PREFIX]
        assert PREFIX in rib
        assert rib.prefixes() == [PREFIX]

    def test_adj_rib_out_tracks_advertisements(self):
        rib = AdjRIBOut()
        attrs = route().attributes
        assert not rib.is_advertised(PREFIX)
        rib.record_advertisement(PREFIX, attrs)
        assert rib.is_advertised(PREFIX)
        assert rib.last_advertised(PREFIX) == attrs
        assert rib.record_withdrawal(PREFIX)
        assert not rib.record_withdrawal(PREFIX)
        assert rib.last_advertised(PREFIX) is None

    def test_adj_rib_out_clear(self):
        rib = AdjRIBOut()
        rib.record_advertisement(PREFIX, route().attributes)
        assert rib.clear() == [PREFIX]
        assert len(rib) == 0

    def test_loc_rib(self):
        loc = LocRIB()
        best = route()
        assert loc.install(best) is None
        assert loc.get(PREFIX) is best
        assert PREFIX in loc
        assert loc.remove(PREFIX) is best
        assert loc.get(PREFIX) is None
        assert len(loc) == 0

    def test_route_with_attributes_preserves_metadata(self):
        original = route(igp_cost=7)
        updated = original.with_attributes(
            original.attributes.replace(med=9)
        )
        assert updated.igp_cost == 7
        assert updated.peer_id == original.peer_id
        assert updated.attributes.med == 9

    def test_route_with_igp_cost(self):
        assert route().with_igp_cost(42).igp_cost == 42

    def test_route_same_announcement(self):
        assert route().same_announcement(route(peer_id="192.0.2.99"))
        assert not route().same_announcement(route("65001 65002 65099"))
