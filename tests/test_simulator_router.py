"""Integration tests for the router pipeline on small topologies."""

import pytest

from repro.bgp import CommunitySet, UpdateMessage
from repro.bgp.community import Community, NO_EXPORT
from repro.netbase import Prefix
from repro.policy import (
    AddCommunity,
    PolicyChain,
    RoutingPolicy,
    StripAllCommunities,
)
from repro.simulator import Network
from repro.vendors import BIRD, CISCO_IOS, JUNOS

PREFIX = Prefix("203.0.113.0/24")


def two_as_chain(vendor=CISCO_IOS):
    """origin(65001) -> middle(65002) -> collector."""
    network = Network()
    origin = network.add_router("origin", 65001, vendor=vendor)
    middle = network.add_router("middle", 65002, vendor=vendor)
    collector = network.add_collector("rrc", 12456)
    network.connect(origin, middle)
    network.connect(middle, collector)
    return network, origin, middle, collector


class TestBasicPropagation:
    def test_origination_reaches_collector(self):
        network, origin, middle, collector = two_as_chain()
        origin.originate(PREFIX)
        network.converge()
        announcements = [
            r for r in collector.updates() if r.message.is_announcement
        ]
        assert len(announcements) == 1
        attrs = announcements[0].message.attributes
        assert str(attrs.as_path) == "65002 65001"

    def test_withdrawal_propagates(self):
        network, origin, middle, collector = two_as_chain()
        origin.originate(PREFIX)
        network.converge()
        origin.withdraw_origination(PREFIX)
        network.converge()
        withdrawals = [
            r for r in collector.updates() if r.message.is_withdrawal
        ]
        assert len(withdrawals) == 1
        assert middle.loc_rib.get(PREFIX) is None

    def test_next_hop_rewritten_at_each_ebgp_hop(self):
        network, origin, middle, collector = two_as_chain()
        origin.originate(PREFIX)
        network.converge()
        session = collector.sessions[0]
        last = collector.records[-1]
        assert last.message.attributes.next_hop == session.peer_address(
            collector
        )

    def test_local_pref_not_leaked_over_ebgp(self):
        network, origin, middle, collector = two_as_chain()
        origin.originate(PREFIX)
        network.converge()
        last = collector.records[-1]
        assert last.message.attributes.local_pref is None

    def test_med_stripped_on_ebgp_export_by_default(self):
        network, origin, middle, collector = two_as_chain()
        origin.originate(PREFIX, med=50)
        network.converge()
        # origin -> middle carries the originated MED; middle resets it.
        assert middle.loc_rib.get(PREFIX).attributes.med == 50
        last = collector.records[-1]
        assert last.message.attributes.med is None

    def test_communities_propagate_transitively(self):
        network, origin, middle, collector = two_as_chain()
        origin.originate(
            PREFIX, communities=CommunitySet.parse("65001:777")
        )
        network.converge()
        last = collector.records[-1]
        assert Community.parse("65001:777") in last.message.attributes.communities

    def test_as_path_loop_rejected(self):
        network = Network()
        a = network.add_router("a", 65001)
        b = network.add_router("b", 65002)
        c = network.add_router("c", 65001)  # same AS as a
        network.connect(a, b)
        network.connect(b, c)
        a.originate(PREFIX)
        network.converge()
        # c must reject the route a->b->c because AS 65001 is in path.
        assert c.loc_rib.get(PREFIX) is None

    def test_transparent_router_does_not_prepend(self):
        network = Network()
        origin = network.add_router("origin", 65001)
        route_server = network.add_router(
            "rs", 65100, transparent=True
        )
        collector = network.add_collector("rrc", 12456)
        network.connect(origin, route_server)
        network.connect(route_server, collector)
        origin.originate(PREFIX)
        network.converge()
        last = collector.records[-1]
        assert str(last.message.attributes.as_path) == "65001"


class TestNoExportScoping:
    def test_originated_no_export_never_leaves_the_as(self):
        network, origin, middle, collector = two_as_chain()
        origin.originate(
            PREFIX, communities=CommunitySet((NO_EXPORT,))
        )
        network.converge()
        # NO_EXPORT blocks origin's own eBGP export already.
        assert middle.loc_rib.get(PREFIX) is None
        assert collector.message_count() == 0

    def test_no_export_added_at_import_stops_re_export(self):
        network, origin, middle, collector = two_as_chain()
        middle.set_policy(
            middle.sessions[0],
            RoutingPolicy(
                import_chain=PolicyChain(
                    (AddCommunity(str(NO_EXPORT)),)
                )
            ),
        )
        origin.originate(PREFIX)
        network.converge()
        # middle accepted and scoped the route; collector sees nothing.
        assert middle.loc_rib.get(PREFIX) is not None
        assert collector.message_count() == 0


class TestSessionChurn:
    def test_session_down_withdraws_routes(self):
        network, origin, middle, collector = two_as_chain()
        session = origin.sessions[0]
        origin.originate(PREFIX)
        network.converge()
        session.bring_down()
        network.converge()
        assert middle.loc_rib.get(PREFIX) is None
        assert collector.records[-1].message.is_withdrawal

    def test_session_up_resends_table(self):
        network, origin, middle, collector = two_as_chain()
        session = origin.sessions[0]
        origin.originate(PREFIX)
        network.converge()
        session.bring_down()
        network.converge()
        session.bring_up()
        network.converge()
        assert middle.loc_rib.get(PREFIX) is not None
        assert collector.records[-1].message.is_announcement

    def test_collector_reset_produces_nn_duplicates(self):
        network, origin, middle, collector = two_as_chain()
        origin.originate(PREFIX)
        network.converge()
        collector_session = collector.sessions[0]
        collector_session.bring_down()
        network.converge()
        collector_session.bring_up()
        network.converge()
        announcements = [
            r.message.attributes
            for r in collector.updates()
            if r.message.is_announcement
        ]
        assert len(announcements) == 2
        assert announcements[0] == announcements[1]


class TestPolicyIntegration:
    def test_ingress_tagging_visible_downstream(self):
        network, origin, middle, collector = two_as_chain()
        middle.set_policy(
            middle.sessions[0],
            RoutingPolicy(
                import_chain=PolicyChain((AddCommunity("65002:300"),))
            ),
        )
        origin.originate(PREFIX)
        network.converge()
        last = collector.records[-1]
        assert Community.parse("65002:300") in last.message.attributes.communities

    def test_egress_cleaning_hides_communities(self):
        network, origin, middle, collector = two_as_chain()
        middle.set_policy(
            middle.sessions[1],
            RoutingPolicy(
                export_chain=PolicyChain((StripAllCommunities(),))
            ),
        )
        origin.originate(
            PREFIX, communities=CommunitySet.parse("65001:1")
        )
        network.converge()
        last = collector.records[-1]
        assert last.message.attributes.communities.is_empty()

    def test_import_reject_acts_as_withdraw(self):
        from repro.policy import RejectAll

        network, origin, middle, collector = two_as_chain()
        origin.originate(PREFIX)
        network.converge()
        assert middle.loc_rib.get(PREFIX) is not None
        # Install a reject-all policy, then have origin re-announce.
        middle.set_policy(
            middle.sessions[0],
            RoutingPolicy(import_chain=PolicyChain((RejectAll(),))),
        )
        origin.originate(PREFIX, med=1)  # attribute change re-triggers
        network.converge()
        assert middle.loc_rib.get(PREFIX) is None

    def test_refresh_exports_after_policy_change(self):
        from repro.policy import PrependASN

        network, origin, middle, collector = two_as_chain()
        origin.originate(PREFIX)
        network.converge()
        before = collector.message_count()
        export_session = middle.sessions[1]
        middle.set_policy(
            export_session,
            RoutingPolicy(export_chain=PolicyChain((PrependASN(2),))),
        )
        sent = middle.refresh_exports(export_session)
        network.converge()
        assert sent == 1
        last = collector.records[-1]
        assert str(last.message.attributes.as_path) == (
            "65002 65002 65002 65001"
        )

    def test_refresh_exports_without_change_is_silent(self):
        network, origin, middle, collector = two_as_chain()
        origin.originate(PREFIX)
        network.converge()
        before = collector.message_count()
        assert middle.refresh_exports(middle.sessions[1]) == 0
        network.converge()
        assert collector.message_count() == before


class TestMRAI:
    def test_mrai_batches_rapid_changes(self):
        network = Network()
        origin = network.add_router("origin", 65001)
        middle = network.add_router("middle", 65002)
        collector = network.add_collector("rrc", 12456)
        network.connect(origin, middle)
        network.connect(middle, collector, mrai=30.0)
        origin.originate(PREFIX, communities=CommunitySet.parse("65001:1"))
        network.converge()
        baseline = collector.message_count()
        # Three rapid community changes within one MRAI window.
        for value in (2, 3, 4):
            origin.originate(
                PREFIX,
                communities=CommunitySet.parse(f"65001:{value}"),
            )
            network.run(until=network.clock.now + 1.0)
        network.converge()
        after = collector.message_count()
        # Without MRAI there would be 3 messages; pacing merges them.
        assert after - baseline < 3
        # Final state must still be the last announced community.
        last = collector.records[-1]
        assert Community.parse("65001:4") in last.message.attributes.communities


class TestCollectorArchive:
    def test_mrt_dump_roundtrip(self):
        import io

        from repro.mrt import MRTReader

        network, origin, middle, collector = two_as_chain()
        origin.originate(PREFIX)
        network.converge()
        data = collector.dump_mrt()
        records = list(MRTReader(io.BytesIO(data)))
        assert len(records) == collector.message_count()
        assert records[-1].message == collector.records[-1].message

    def test_clear(self):
        network, origin, middle, collector = two_as_chain()
        origin.originate(PREFIX)
        network.converge()
        assert collector.clear() > 0
        assert collector.message_count() == 0
