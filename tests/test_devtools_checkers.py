"""Fixture suite for the contract checkers.

Each checker gets at least one must-flag snippet reproducing its
historical bug pattern and at least one must-pass snippet showing the
fixed/approved idiom, run through the same pipeline CI uses
(:func:`repro.devtools.check_source`).
"""

import textwrap

from repro.devtools import check_source


def _codes(report):
    return [finding.code for finding in report.findings]


def _check(source, rel, select=None, extra=None):
    return check_source(
        textwrap.dedent(source), rel, select=select, extra_modules=extra
    )


# ----------------------------------------------------------------------
# DET001 — bare hash()/id()
# ----------------------------------------------------------------------
class TestDet001:
    def test_flags_salted_hash_in_deterministic_module(self):
        # The PR 1 bug: a decision tie breaker keyed on hash().
        report = _check(
            """
            def tie_break(route):
                return hash(route.prefix) % 7
            """,
            "rib/decision.py",
            select=["DET001"],
        )
        assert _codes(report) == ["DET001"]
        assert "hash()" in report.findings[0].message

    def test_flags_id_in_simulator(self):
        report = _check(
            """
            def key_for(node):
                return id(node)
            """,
            "simulator/session.py",
            select=["DET001"],
        )
        assert _codes(report) == ["DET001"]

    def test_passes_crc32_idiom(self):
        report = _check(
            """
            import zlib

            def tie_break(route):
                return zlib.crc32(repr(route.prefix).encode())
            """,
            "rib/decision.py",
            select=["DET001"],
        )
        assert report.clean

    def test_hash_inside_dunder_hash_is_exempt(self):
        report = _check(
            """
            class Route:
                def __hash__(self):
                    return hash((self.prefix, self.path))
            """,
            "rib/route.py",
            select=["DET001"],
        )
        assert report.clean

    def test_outside_deterministic_modules_not_flagged(self):
        report = _check(
            """
            def envelope_key(record):
                return hash(record)
            """,
            "obs/journal.py",
            select=["DET001"],
        )
        assert report.clean


# ----------------------------------------------------------------------
# DET002 — ambient entropy
# ----------------------------------------------------------------------
class TestDet002:
    def test_flags_module_level_random(self):
        report = _check(
            """
            import random

            def jitter():
                return random.random()
            """,
            "simulator/events.py",
            select=["DET002"],
        )
        assert _codes(report) == ["DET002"]

    def test_flags_unseeded_random_instance(self):
        report = _check(
            """
            import random

            def make_rng():
                return random.Random()
            """,
            "scenarios/engine.py",
            select=["DET002"],
        )
        assert _codes(report) == ["DET002"]

    def test_passes_seeded_random_instance(self):
        report = _check(
            """
            import random

            def make_rng(seed):
                return random.Random(seed)
            """,
            "scenarios/engine.py",
            select=["DET002"],
        )
        assert report.clean

    def test_flags_wall_clock(self):
        report = _check(
            """
            import time

            def stamp():
                return time.time()
            """,
            "analysis/tables.py",
            select=["DET002"],
        )
        assert _codes(report) == ["DET002"]

    def test_passes_perf_counter_durations(self):
        report = _check(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            "scenarios/runner.py",
            select=["DET002"],
        )
        assert report.clean

    def test_flags_urandom_and_uuid(self):
        report = _check(
            """
            import os
            import uuid

            def token():
                return os.urandom(8), uuid.uuid4()
            """,
            "scenarios/spec.py",
            select=["DET002"],
        )
        assert _codes(report) == ["DET002", "DET002"]

    def test_flags_set_iteration(self):
        report = _check(
            """
            def emit(peers):
                for peer in set(peers):
                    yield peer
            """,
            "analysis/observations.py",
            select=["DET002"],
        )
        assert _codes(report) == ["DET002"]
        assert "sorted" in report.findings[0].message

    def test_flags_set_comprehension_iteration(self):
        report = _check(
            """
            def emit(rows):
                return [row for row in {r.key for r in rows}]
            """,
            "analysis/observations.py",
            select=["DET002"],
        )
        assert _codes(report) == ["DET002"]

    def test_passes_sorted_set_iteration(self):
        report = _check(
            """
            def emit(peers):
                for peer in sorted(set(peers)):
                    yield peer
            """,
            "analysis/observations.py",
            select=["DET002"],
        )
        assert report.clean


# ----------------------------------------------------------------------
# OBS001 — hot-path instrumentation gating
# ----------------------------------------------------------------------
class TestObs001:
    def test_flags_journal_import_on_hot_path(self):
        report = _check(
            """
            from repro.obs.journal import RunJournal

            def decode(buffer):
                RunJournal("x.jsonl").write("decode")
            """,
            "mrt/reader.py",
            select=["OBS001"],
        )
        assert _codes(report) == ["OBS001"]

    def test_flags_ungated_registry_call(self):
        # The bench_obs near-miss: holding the registry in the loop.
        report = _check(
            """
            from repro.obs import metrics as obs_metrics

            def decode(buffer):
                obs_metrics.registry().count("records")
            """,
            "bgp/wire.py",
            select=["OBS001"],
        )
        assert _codes(report) == ["OBS001"]
        assert "registry" in report.findings[0].message

    def test_flags_set_metrics_enabled_on_hot_path(self):
        report = _check(
            """
            from repro.obs import set_metrics_enabled
            """,
            "simulator/router.py",
            select=["OBS001"],
        )
        assert _codes(report) == ["OBS001"]

    def test_passes_gated_span_and_counter_pattern(self):
        report = _check(
            """
            from repro.obs import metrics as obs_metrics

            def decode(buffer):
                with obs_metrics.phase("mrt.decode"):
                    obs_metrics.count("mrt.records")
                if obs_metrics.metrics_enabled():
                    obs_metrics.gauge("mrt.bytes", len(buffer))
            """,
            "mrt/reader.py",
            select=["OBS001"],
        )
        assert report.clean

    def test_passes_direct_gated_helper_import(self):
        report = _check(
            """
            from repro.obs import count, phase

            def decode(buffer):
                with phase("mrt.decode"):
                    count("mrt.records")
            """,
            "mrt/reader.py",
            select=["OBS001"],
        )
        assert report.clean

    def test_engine_layer_not_restricted(self):
        report = _check(
            """
            from repro.obs.journal import RunJournal
            from repro.obs import metrics as obs_metrics

            def run():
                obs_metrics.reset_metrics()
            """,
            "scenarios/engine.py",
            select=["OBS001"],
        )
        assert report.clean


# ----------------------------------------------------------------------
# IO001 — CLI stdout discipline
# ----------------------------------------------------------------------
class TestIo001:
    def test_flags_bare_print_in_cli(self):
        # The status-view bug shape: human chatter on stdout.
        report = _check(
            """
            def _run_status(arguments):
                print("3 cells done")
                return 0
            """,
            "cli.py",
            select=["IO001"],
        )
        assert _codes(report) == ["IO001"]

    def test_flags_direct_stdout_write(self):
        report = _check(
            """
            import sys

            def _run(arguments):
                sys.stdout.write("payload")
            """,
            "cli.py",
            select=["IO001"],
        )
        assert _codes(report) == ["IO001"]

    def test_passes_stderr_and_emitters(self):
        report = _check(
            """
            import sys

            def _emit(*values):
                print(*values)

            def _emit_json(document):
                print(document)

            def _run(arguments):
                print("progress", file=sys.stderr)
                _emit("table")
                _emit_json("{}")
            """,
            "cli.py",
            select=["IO001"],
        )
        assert report.clean

    def test_explicit_file_handle_passes(self):
        report = _check(
            """
            def _run(arguments, handle):
                print("row", file=handle)
            """,
            "cli.py",
            select=["IO001"],
        )
        assert report.clean

    def test_other_modules_unrestricted(self):
        report = _check(
            """
            def debug():
                print("not the cli")
            """,
            "devtools/cli.py",
            select=["IO001"],
        )
        assert report.clean


# ----------------------------------------------------------------------
# CACHE001 — schema fingerprint vs CACHE_VERSION
# ----------------------------------------------------------------------
_SERIALIZE_V1 = """
def result_to_dict(result):
    payload = {
        "spec": {},
        "spec_hash": result.spec_hash,
        "metrics": result.metrics,
    }
    return payload


def failure_to_dict(failure):
    return {"name": failure.name, "error": failure.error}
"""

_ENGINE_FIXTURE = """
class ScenarioResult:
    spec: object
    spec_hash: str
    metrics: dict
"""


def _runner_fixture(fingerprint):
    return (
        "CACHE_VERSION = \"v2\"\n"
        f"CACHE_SCHEMA_FINGERPRINT = \"{fingerprint}\"\n\n\n"
        "class SweepReport:\n"
        "    results: list\n"
        "    workers: int\n"
    )


def _cache_report(serialize_source, runner_source):
    return check_source(
        textwrap.dedent(serialize_source),
        "scenarios/serialize.py",
        select=["CACHE001"],
        extra_modules=[
            ("scenarios/engine.py", textwrap.dedent(_ENGINE_FIXTURE)),
            ("scenarios/runner.py", runner_source),
        ],
    )


class TestCache001:
    def _current_fingerprint(self, serialize_source):
        """Fingerprint of the fixture trio via the public helper."""
        from repro.devtools import parse_module, schema_fingerprint
        from repro.devtools.project import Project

        project = Project(
            modules=[
                parse_module(
                    "scenarios/serialize.py",
                    textwrap.dedent(serialize_source),
                    rel="scenarios/serialize.py",
                ),
                parse_module(
                    "scenarios/engine.py",
                    textwrap.dedent(_ENGINE_FIXTURE),
                    rel="scenarios/engine.py",
                ),
                parse_module(
                    "scenarios/runner.py",
                    _runner_fixture("x"),
                    rel="scenarios/runner.py",
                ),
            ]
        )
        return schema_fingerprint(project)

    def test_matching_fingerprint_is_clean(self):
        fingerprint = self._current_fingerprint(_SERIALIZE_V1)
        report = _cache_report(
            _SERIALIZE_V1, _runner_fixture(fingerprint)
        )
        assert report.clean

    def test_schema_growth_without_bump_is_flagged(self):
        # The PR 5 bug: reader_stats appeared, CACHE_VERSION did not
        # move, and v1 entries replayed byte-different.
        fingerprint = self._current_fingerprint(_SERIALIZE_V1)
        grown = _SERIALIZE_V1.replace(
            '"metrics": result.metrics,',
            '"metrics": result.metrics,\n'
            '        "reader_stats": result.reader_stats,',
        )
        report = _cache_report(grown, _runner_fixture(fingerprint))
        assert _codes(report) == ["CACHE001"]
        assert "CACHE_VERSION" in report.findings[0].message

    def test_missing_fingerprint_constant_is_flagged(self):
        runner = "CACHE_VERSION = \"v2\"\n\n\nclass SweepReport:\n    results: list\n"
        report = _cache_report(_SERIALIZE_V1, runner)
        assert _codes(report) == ["CACHE001"]
        assert "CACHE_SCHEMA_FINGERPRINT" in report.findings[0].message

    def test_partial_scan_skips_quietly(self):
        report = _check(
            _SERIALIZE_V1, "scenarios/serialize.py", select=["CACHE001"]
        )
        assert report.clean


# ----------------------------------------------------------------------
# MEMO001 — bounded module-level caches
# ----------------------------------------------------------------------
class TestMemo001:
    def test_flags_unbounded_module_cache(self):
        # The pre-PR 5 shape: a hand-rolled memo with no bound.
        report = _check(
            """
            _DECODE_MEMO = {}

            def decode(key):
                if key not in _DECODE_MEMO:
                    _DECODE_MEMO[key] = key * 2
                return _DECODE_MEMO[key]
            """,
            "bgp/wire.py",
            select=["MEMO001"],
        )
        assert "MEMO001" in _codes(report)

    def test_passes_bounded_store_idiom(self):
        report = _check(
            """
            from repro.netbase.memo import bounded_store, memo_counters

            _DECODE_MEMO = {}
            _LIMIT = 4096
            _STATS = memo_counters("wire.decode")

            def decode(key):
                value = _DECODE_MEMO.get(key)
                if value is None:
                    value = bounded_store(
                        _DECODE_MEMO, key, key * 2, _LIMIT, _STATS
                    )
                return value
            """,
            "bgp/wire.py",
            select=["MEMO001"],
        )
        assert report.clean

    def test_flags_store_bypassing_the_bound(self):
        report = _check(
            """
            from repro.netbase.memo import bounded_store

            _DECODE_MEMO = {}

            def decode(key):
                return bounded_store(_DECODE_MEMO, key, key, 16)

            def warm(key, value):
                _DECODE_MEMO[key] = value
            """,
            "bgp/wire.py",
            select=["MEMO001"],
        )
        assert _codes(report) == ["MEMO001"]
        assert "bypasses" in report.findings[0].message

    def test_flags_setdefault_bypass(self):
        report = _check(
            """
            _PATH_CACHE = {}

            def lookup(key):
                return _PATH_CACHE.setdefault(key, compute(key))
            """,
            "analysis/cleaning.py",
            select=["MEMO001"],
        )
        codes = _codes(report)
        assert codes.count("MEMO001") == 2  # unbounded def + bypass

    def test_non_cache_names_ignored(self):
        report = _check(
            """
            _FACTORIES = {}

            def register(name, factory):
                _FACTORIES[name] = factory
            """,
            "scenarios/registry.py",
            select=["MEMO001"],
        )
        assert report.clean

    def test_memo_primitive_module_exempt(self):
        report = _check(
            """
            _STATS_CACHE = {}

            def memo_counters(name):
                _STATS_CACHE[name] = name
            """,
            "netbase/memo.py",
            select=["MEMO001"],
        )
        assert report.clean



# ----------------------------------------------------------------------
# DUR001 — durable state must go through atomic_write
# ----------------------------------------------------------------------
class TestDur001:
    def test_flags_write_mode_open_in_durable_module(self):
        # The PR 10 bug: three unfsynced tmp-rename copies.
        report = _check(
            """
            def store(path, payload):
                with open(path + ".tmp", "w") as handle:
                    handle.write(payload)
            """,
            "scenarios/runner.py",
            select=["DUR001"],
        )
        assert _codes(report) == ["DUR001"]
        assert "atomic_write" in report.findings[0].message

    def test_flags_os_replace(self):
        report = _check(
            """
            import os

            def publish(temporary, path):
                os.replace(temporary, path)
            """,
            "scenarios/backends.py",
            select=["DUR001"],
        )
        assert _codes(report) == ["DUR001"]

    def test_flags_append_and_keyword_mode(self):
        report = _check(
            """
            def log(path):
                open(path, mode="a").write("x")
            """,
            "faults/doctor.py",
            select=["DUR001"],
        )
        assert _codes(report) == ["DUR001"]

    def test_passes_atomic_write_and_reads(self):
        report = _check(
            """
            import os

            from repro import durable

            def store(path, payload):
                durable.atomic_write(path, payload)

            def load(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return handle.read()

            def claim(todo, claimed):
                os.rename(todo, claimed)
            """,
            "scenarios/backends.py",
            select=["DUR001"],
        )
        assert report.clean

    def test_outside_durable_modules_not_flagged(self):
        report = _check(
            """
            def scratch(path):
                open(path, "w").write("not durable state")
            """,
            "obs/journal.py",
            select=["DUR001"],
        )
        assert report.clean

    def test_waiver_suppresses_with_reason(self):
        report = _check(
            """
            def probe(path):
                open(path, "w").close()  # repro: allow(DUR001) liveness probe, not durable state
            """,
            "scenarios/backends.py",
            select=["DUR001"],
        )
        assert report.clean


# ----------------------------------------------------------------------
# SYN001 — unparseable files are loud
# ----------------------------------------------------------------------
class TestSyn001:
    def test_syntax_error_is_a_finding(self):
        report = _check(
            """
            def broken(:
                pass
            """,
            "analysis/tables.py",
            select=["SYN001"],
        )
        assert _codes(report) == ["SYN001"]
        assert "syntax error" in report.findings[0].message

    def test_parseable_file_is_clean(self):
        report = _check(
            "x = 1\n", "analysis/tables.py", select=["SYN001"]
        )
        assert report.clean
