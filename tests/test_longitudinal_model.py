"""Unit tests for the longitudinal growth model (no simulation)."""

import pytest

from repro.analysis.classify import TypeCounts, AnnouncementType
from repro.analysis.longitudinal import DailySnapshot, LongitudinalSeries
from repro.analysis.revealed import RevealedInfoResult
from repro.netbase import parse_utc
from repro.workloads import GrowthModel, sampled_days


class TestSampledDays:
    def test_one_per_year_default(self):
        days = sampled_days(2010, 2020)
        assert len(days) == 11
        assert days[0] == parse_utc("2010-03-15")
        assert days[-1] == parse_utc("2020-03-15")

    def test_quarterly_cadence(self):
        days = sampled_days(2019, 2020, per_year=4)
        assert len(days) == 8
        assert parse_utc("2019-06-15") in days
        assert parse_utc("2020-12-15") in days

    def test_days_are_sorted(self):
        days = sampled_days(2010, 2020, per_year=4)
        assert days == sorted(days)

    def test_per_year_validation(self):
        with pytest.raises(ValueError):
            sampled_days(per_year=0)
        with pytest.raises(ValueError):
            sampled_days(per_year=5)


class TestGrowthModel:
    def setup_method(self):
        self.growth = GrowthModel()

    def test_2010_is_smaller_than_2020(self):
        early = self.growth.config_for(parse_utc("2010-03-15"))
        late = self.growth.config_for(parse_utc("2020-03-15"))
        assert early.topology.stub_count < late.topology.stub_count
        assert early.topology.transit_count < late.topology.transit_count
        assert early.tagger_fraction < late.tagger_fraction
        assert early.collector_peer_fraction < late.collector_peer_fraction
        assert early.link_flaps < late.link_flaps
        assert early.community_churn_events < late.community_churn_events

    def test_growth_is_monotone(self):
        sizes = [
            self.growth.config_for(day).topology.stub_count
            for day in sampled_days(2010, 2020)
        ]
        assert sizes == sorted(sizes)

    def test_configs_are_clamped_outside_range(self):
        before = self.growth.config_for(parse_utc("2005-01-01"))
        after = self.growth.config_for(parse_utc("2025-01-01"))
        assert before.topology.stub_count == self.growth.stub_2010
        assert after.topology.stub_count == self.growth.stub_2020

    def test_seeds_differ_per_day(self):
        first = self.growth.config_for(parse_utc("2015-03-15"))
        second = self.growth.config_for(parse_utc("2015-06-15"))
        assert first.seed != second.seed


class TestSeriesAggregation:
    def _snapshot(self, day_text, pc=10, nn=5, revealed=None):
        counts = TypeCounts()
        counts.counts[AnnouncementType.PC] = pc
        counts.counts[AnnouncementType.NN] = nn
        return DailySnapshot(
            day=parse_utc(day_text),
            type_counts=counts,
            revealed=revealed,
        )

    def test_snapshots_kept_sorted(self):
        series = LongitudinalSeries()
        series.add(self._snapshot("2020-03-15"))
        series.add(self._snapshot("2010-03-15"))
        assert [snap.label for snap in series] == [
            "2010-03-15", "2020-03-15",
        ]

    def test_type_series_alignment(self):
        series = LongitudinalSeries()
        series.add(self._snapshot("2010-03-15", pc=1))
        series.add(self._snapshot("2020-03-15", pc=9))
        per_type = series.type_series()
        assert per_type[AnnouncementType.PC] == [
            ("2010-03-15", 1), ("2020-03-15", 9),
        ]

    def test_share_series_sums(self):
        series = LongitudinalSeries()
        series.add(self._snapshot("2010-03-15", pc=3, nn=1))
        shares = series.share_series()
        assert shares[AnnouncementType.PC][0][1] == pytest.approx(0.75)

    def test_revealed_series_skips_missing(self):
        series = LongitudinalSeries()
        series.add(self._snapshot("2010-03-15"))
        series.add(
            self._snapshot(
                "2020-03-15",
                revealed=RevealedInfoResult(
                    total_unique=10, exclusively_withdrawal=6
                ),
            )
        )
        rows = series.revealed_series()
        assert len(rows) == 1
        assert rows[0][3] == pytest.approx(0.6)

    def test_ratio_stability_min_total(self):
        series = LongitudinalSeries()
        series.add(
            self._snapshot(
                "2010-03-15",
                revealed=RevealedInfoResult(
                    total_unique=4, exclusively_withdrawal=0
                ),
            )
        )
        series.add(
            self._snapshot(
                "2020-03-15",
                revealed=RevealedInfoResult(
                    total_unique=100, exclusively_withdrawal=60
                ),
            )
        )
        mean_all, _ = series.ratio_stability()
        mean_filtered, deviation = series.ratio_stability(min_total=25)
        assert mean_all < mean_filtered
        assert mean_filtered == pytest.approx(0.6)
        assert deviation == 0.0

    def test_empty_series(self):
        series = LongitudinalSeries()
        assert series.ratio_stability() == (0.0, 0.0)
        assert len(series) == 0
