"""Sweep status: rebuilding live state from manifest + journals."""

import json

import pytest

from repro.cli import main
from repro.obs.journal import RunJournal, cell_journal_path
from repro.obs.status import (
    collect_sweep_status,
    render_sweep_status,
)

NOW = 1_700_000_000.0


def write_manifest(cache_dir, cells) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    (cache_dir / "sweep.json").write_text(
        json.dumps({"version": "v1", "cells": cells})
    )


def cell(name, state, **extra):
    payload = {"name": name, "spec": {"name": name, "kind": "lab"}}
    payload["state"] = state
    payload.update(extra)
    return payload


def midflight_cache(tmp_path):
    """A sweep caught mid-flight: done, failed, running and pending."""
    cache = tmp_path / "cache"
    write_manifest(
        cache,
        {
            "d1": cell(
                "sweep@seed1",
                "done",
                attempts=1,
                started_at=NOW - 100.0,
                finished_at=NOW - 90.0,
            ),
            "d2": cell(
                "sweep@seed2",
                "done",
                attempts=2,
                started_at=NOW - 90.0,
                finished_at=NOW - 76.0,
            ),
            "d3": cell("sweep@seed3", "failed", attempts=3),
            "d4": cell("sweep@seed4", "pending"),
            "d5": cell("sweep@seed5", "pending"),
            # A third finished cell: straggler math needs >= 3 samples.
            "d6": cell(
                "sweep@seed6",
                "done",
                attempts=1,
                started_at=NOW - 80.0,
                finished_at=NOW - 68.0,
            ),
        },
    )
    # d4 is running: started, heartbeating recently, not finished.  At
    # 60s elapsed against a 12s median it is also a straggler.
    # Timestamps are pinned, so the lines are written directly.
    journal_path = cell_journal_path(str(cache), "d4")
    (cache / "journals").mkdir(parents=True, exist_ok=True)
    with open(journal_path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"event": "start", "ts": NOW - 60.0}) + "\n")
        handle.write(
            json.dumps(
                {
                    "event": "heartbeat",
                    "ts": NOW - 1.0,
                    "observations": 5000,
                    "rate_per_second": 84.7,
                    "peak_rss_kb": 120_000,
                }
            )
            + "\n"
        )
    return cache


class TestCollect:
    def test_states_from_midflight_manifest(self, tmp_path):
        status = collect_sweep_status(str(midflight_cache(tmp_path)), now=NOW)
        by_name = {cell.name: cell for cell in status.cells}
        assert by_name["sweep@seed1"].state == "done"
        assert by_name["sweep@seed2"].state == "done"
        assert by_name["sweep@seed3"].state == "failed"
        assert by_name["sweep@seed4"].state == "running"
        assert by_name["sweep@seed5"].state == "pending"
        assert by_name["sweep@seed6"].state == "done"
        counts = status.counts()
        assert counts == {
            "done": 3,
            "failed": 1,
            "running": 1,
            "lost": 0,
            "pending": 1,
            "retried": 2,  # seed2 (attempts=2) and seed3 (attempts=3)
            "total": 6,
        }

    def test_wall_time_and_heartbeat_progress(self, tmp_path):
        status = collect_sweep_status(str(midflight_cache(tmp_path)), now=NOW)
        by_name = {cell.name: cell for cell in status.cells}
        assert by_name["sweep@seed1"].wall_seconds == pytest.approx(10.0)
        running = by_name["sweep@seed4"]
        assert running.elapsed_seconds == pytest.approx(60.0)
        assert running.observations == 5000
        assert running.rate_per_second == pytest.approx(84.7)
        assert running.peak_rss_kb == 120_000

    def test_straggler_detection(self, tmp_path):
        # Median done wall time is median(10, 14, 12) = 12s; the
        # running cell is 60s in -> past the 2x threshold.
        status = collect_sweep_status(str(midflight_cache(tmp_path)), now=NOW)
        stragglers = status.stragglers()
        assert [cell.name for cell in stragglers] == ["sweep@seed4"]

    def test_straggler_needs_three_finished_samples(self, tmp_path):
        # One fast finished cell as the "median" used to flag every
        # normal running cell; below 3 samples nothing is a straggler.
        cache = tmp_path / "cache"
        write_manifest(
            cache,
            {
                "d1": cell(
                    "sweep@seed1",
                    "done",
                    attempts=1,
                    started_at=NOW - 100.0,
                    finished_at=NOW - 99.5,  # 0.5s outlier
                ),
                "d2": cell("sweep@seed2", "pending"),
            },
        )
        journal_path = cell_journal_path(str(cache), "d2")
        (cache / "journals").mkdir(parents=True, exist_ok=True)
        with open(journal_path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"event": "start", "ts": NOW - 10.0}) + "\n"
            )
            handle.write(
                json.dumps({"event": "heartbeat", "ts": NOW - 1.0}) + "\n"
            )
        status = collect_sweep_status(str(cache), now=NOW)
        by_name = {cell.name: cell for cell in status.cells}
        assert by_name["sweep@seed2"].state == "running"
        assert status.stragglers() == []

    def test_finished_journal_is_not_running(self, tmp_path):
        cache = tmp_path / "cache"
        write_manifest(cache, {"d1": cell("sweep@seed1", "pending")})
        with RunJournal(cell_journal_path(str(cache), "d1")) as journal:
            journal.write("start")
            journal.write("fail", error="boom")
        status = collect_sweep_status(str(cache), now=NOW)
        assert status.cells[0].state == "pending"
        assert status.cells[0].attempts == 1  # start lines still count

    def test_old_manifest_without_timing_keys(self, tmp_path):
        # Pre-instrumentation manifests carry only name/spec/state.
        cache = tmp_path / "cache"
        write_manifest(cache, {"d1": cell("sweep@seed1", "done")})
        status = collect_sweep_status(str(cache), now=NOW)
        only = status.cells[0]
        assert only.state == "done"
        assert only.attempts == 0
        assert only.wall_seconds is None

    def test_as_dict_is_json_ready(self, tmp_path):
        status = collect_sweep_status(str(midflight_cache(tmp_path)), now=NOW)
        payload = json.loads(json.dumps(status.as_dict()))
        assert payload["counts"]["total"] == 6
        assert len(payload["cells"]) == 6


class TestLost:
    def journal_lines(self, cache, digest, lines):
        journal_path = cell_journal_path(str(cache), digest)
        (cache / "journals").mkdir(parents=True, exist_ok=True)
        with open(journal_path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")

    def stale_cache(self, tmp_path, *, heartbeat_gap):
        """One running cell whose journal went quiet 100s ago."""
        cache = tmp_path / "cache"
        write_manifest(cache, {"d1": cell("sweep@seed1", "pending")})
        self.journal_lines(
            cache,
            "d1",
            [
                {"event": "start", "ts": NOW - 100.0 - heartbeat_gap},
                {"event": "heartbeat", "ts": NOW - 100.0},
            ],
        )
        return cache

    def test_stale_journal_is_lost(self, tmp_path):
        # Heartbeats came every 5s, then silence for 100s: well past
        # the derived 2x-interval threshold.
        cache = self.stale_cache(tmp_path, heartbeat_gap=5.0)
        status = collect_sweep_status(str(cache), now=NOW)
        only = status.cells[0]
        assert only.state == "lost"
        assert only.elapsed_seconds == pytest.approx(105.0)
        assert status.counts()["lost"] == 1
        assert status.counts()["running"] == 0

    def test_slow_heartbeats_raise_the_threshold(self, tmp_path):
        # Heartbeats every 90s: 100s of silence is within 2x cadence.
        cache = self.stale_cache(tmp_path, heartbeat_gap=90.0)
        status = collect_sweep_status(str(cache), now=NOW)
        assert status.cells[0].state == "running"

    def test_lost_after_override(self, tmp_path):
        cache = self.stale_cache(tmp_path, heartbeat_gap=90.0)
        status = collect_sweep_status(
            str(cache), now=NOW, lost_after=50.0
        )
        assert status.cells[0].state == "lost"
        # And a generous override keeps a tight-cadence cell running.
        cache2 = self.stale_cache(tmp_path / "b", heartbeat_gap=5.0)
        status2 = collect_sweep_status(
            str(cache2), now=NOW, lost_after=500.0
        )
        assert status2.cells[0].state == "running"

    def test_start_only_journal_uses_default_window(self, tmp_path):
        # No heartbeat interval to calibrate from: the 300s default
        # applies, so a 100s-quiet cell is still running...
        cache = tmp_path / "cache"
        write_manifest(cache, {"d1": cell("sweep@seed1", "pending")})
        self.journal_lines(
            cache, "d1", [{"event": "start", "ts": NOW - 100.0}]
        )
        status = collect_sweep_status(str(cache), now=NOW)
        assert status.cells[0].state == "running"
        # ...and a 400s-quiet one is lost.
        status = collect_sweep_status(str(cache), now=NOW + 300.0)
        assert status.cells[0].state == "lost"

    def test_lost_cells_are_not_stragglers(self, tmp_path):
        # Same fixture as the straggler test, but the running cell's
        # journal is stale: it must show as lost, not straggling.
        cache = midflight_cache(tmp_path)
        self.journal_lines(
            cache,
            "d4",
            [
                {"event": "start", "ts": NOW - 60.0},
                {"event": "heartbeat", "ts": NOW - 59.0},
                {"event": "heartbeat", "ts": NOW - 58.0},
            ],
        )
        status = collect_sweep_status(str(cache), now=NOW)
        by_name = {cell.name: cell for cell in status.cells}
        assert by_name["sweep@seed4"].state == "lost"
        assert status.stragglers() == []
        text = render_sweep_status(status)
        assert "1 lost" in text


class TestRender:
    def test_render_mentions_counts_and_stragglers(self, tmp_path):
        status = collect_sweep_status(str(midflight_cache(tmp_path)), now=NOW)
        text = render_sweep_status(status)
        assert "3/6 done" in text
        assert "1 running" in text
        assert "1 failed" in text
        assert "0 lost" in text
        assert "2 retried" in text
        assert "running (straggler)" in text
        assert "5000 obs @ 85/s" in text


class TestStatusCli:
    def test_status_requires_cache_dir(self, capsys):
        assert main(["scenario", "sweep", "--status"]) == 2
        assert "--status requires --cache-dir" in capsys.readouterr().err

    def test_status_missing_manifest(self, tmp_path, capsys):
        code = main(
            ["scenario", "sweep", "--status", "--cache-dir", str(tmp_path)]
        )
        assert code == 2
        assert "no sweep manifest" in capsys.readouterr().err

    def test_status_table_goes_to_stderr(self, tmp_path, capsys):
        cache = midflight_cache(tmp_path)
        code = main(
            ["scenario", "sweep", "--status", "--cache-dir", str(cache)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "done" in captured.err
        assert "sweep@seed4" in captured.err

    def test_status_json_goes_to_stdout(self, tmp_path, capsys):
        cache = midflight_cache(tmp_path)
        code = main(
            [
                "scenario",
                "sweep",
                "--status",
                "--cache-dir",
                str(cache),
                "--json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["counts"]["total"] == 6
