"""Unit tests for observation flattening and stream grouping."""

from repro.analysis.observations import (
    Observation,
    ObservationKind,
    SessionKey,
    explode_update,
    group_into_streams,
    peer_ases,
    sessions_of,
)
from repro.bgp import ASPath, CommunitySet, PathAttributes, UpdateMessage
from repro.netbase import ASN, Prefix

SESSION = SessionKey("rrc00", 20205, "10.0.0.1")


def attrs():
    return PathAttributes(
        as_path=ASPath.from_string("20205 12654"),
        next_hop="10.0.0.1",
        med=7,
        communities=CommunitySet.parse("20205:1"),
    )


class TestExplode:
    def test_withdrawals_come_first(self):
        update = UpdateMessage(
            announced=[Prefix("10.0.0.0/8")],
            withdrawn=[Prefix("11.0.0.0/8")],
            attributes=attrs(),
        )
        observations = list(explode_update(5.0, SESSION, update))
        assert observations[0].is_withdrawal
        assert observations[1].is_announcement

    def test_announcements_share_attributes(self):
        update = UpdateMessage.announce(
            [Prefix("10.0.0.0/8"), Prefix("11.0.0.0/8")], attrs()
        )
        observations = list(explode_update(5.0, SESSION, update))
        assert len(observations) == 2
        assert all(
            obs.as_path == attrs().as_path for obs in observations
        )
        assert all(obs.med == 7 for obs in observations)
        assert all(obs.timestamp == 5.0 for obs in observations)

    def test_withdrawal_has_no_attributes(self):
        update = UpdateMessage.withdraw(Prefix("10.0.0.0/8"))
        observation = next(explode_update(1.0, SESSION, update))
        assert observation.as_path is None
        assert observation.communities.is_empty()
        assert observation.med is None

    def test_shifted_and_with_as_path(self):
        update = UpdateMessage.announce(Prefix("10.0.0.0/8"), attrs())
        observation = next(explode_update(1.0, SESSION, update))
        moved = observation.shifted(2.0)
        assert moved.timestamp == 2.0
        assert moved.prefix == observation.prefix
        repaired = observation.with_as_path(
            ASPath.from_string("1 20205 12654")
        )
        assert repaired.as_path.hop_count() == 3


class TestGrouping:
    def _observation(self, session, prefix, t):
        return Observation(
            timestamp=t,
            session=session,
            prefix=Prefix(prefix),
            kind=ObservationKind.ANNOUNCE,
            as_path=ASPath.from_string("1 2"),
        )

    def test_group_into_streams_preserves_order(self):
        other = SessionKey("rrc00", 3356, "10.0.0.2")
        feed = [
            self._observation(SESSION, "10.0.0.0/8", 1.0),
            self._observation(other, "10.0.0.0/8", 2.0),
            self._observation(SESSION, "10.0.0.0/8", 3.0),
        ]
        streams = group_into_streams(feed)
        assert len(streams) == 2
        own = streams[(SESSION, Prefix("10.0.0.0/8"))]
        assert [obs.timestamp for obs in own] == [1.0, 3.0]

    def test_helpers(self):
        other = SessionKey("rrc00", 3356, "10.0.0.2")
        feed = [
            self._observation(SESSION, "10.0.0.0/8", 1.0),
            self._observation(other, "11.0.0.0/8", 2.0),
        ]
        assert peer_ases(feed) == {ASN(20205), ASN(3356)}
        assert sessions_of(feed) == {SESSION, other}

    def test_session_key_str(self):
        assert str(SESSION) == "rrc00:20205@10.0.0.1"
