"""Cross-backend determinism: every backend, byte-identical payloads.

The execution backends are pure transport — where a sweep cell runs
(inline, thread, pool process, which shard) must never leak into the
result.  This suite pins that down at the strongest level available:
the serialized ``result_to_json`` payload, byte for byte, for the same
spec across all four backends and across worker counts, over a smoke
subset of the registry kinds (internet, ablation what-if, lab, and
mrt replay of a simulator-spilled archive).
"""

import shutil

import pytest

from repro.scenarios import (
    InternetSpec,
    MrtSpec,
    ProcessBackend,
    QueueBackend,
    ScenarioSpec,
    SerialBackend,
    ShardedBackend,
    SweepRunner,
    ThreadBackend,
    expand_seeds,
    get_scenario,
    result_to_json,
    run_scenario,
    run_sweep,
    shard_of,
    spec_hash,
)

TINY_TOPOLOGY = dict(
    tier1_count=2,
    transit_count=3,
    stub_count=5,
    beacon_count=1,
    link_flaps=2,
    prefix_flaps=1,
    med_churn_events=1,
    community_churn_events=2,
    prepend_change_events=1,
    collector_session_resets=1,
)

SMOKE_KEYS = ("internet", "ablation", "lab", "mrt")
BACKEND_KEYS = ("serial", "threads", "processes", "sharded", "queue")


@pytest.fixture(scope="module")
def spilled_archive(tmp_path_factory):
    """A tiny simulator-spilled MRT archive for the mrt smoke cell."""
    spec = ScenarioSpec(
        name="determinism-spill",
        kind="internet",
        seed=7,
        internet=InternetSpec(
            archive_policy="mrt-spill",
            collector_names=("rrc00",),
            **TINY_TOPOLOGY,
        ),
        collectors=("update_counts",),
    )
    result = run_scenario(spec)
    # Move the spill out of the system tempdir so its path (which is
    # part of the mrt spec, and so of the payload) is test-owned and
    # stable for the whole module.
    target = str(
        tmp_path_factory.mktemp("determinism") / "spilled.mrt"
    )
    shutil.move(result.spill_paths["rrc00"], target)
    return target


def smoke_spec(key: str, spilled_archive: str) -> ScenarioSpec:
    """One representative spec per registry kind/what-if family."""
    if key == "internet":
        return ScenarioSpec(
            name="determinism-internet",
            kind="internet",
            seed=11,
            internet=InternetSpec(**TINY_TOPOLOGY),
            collectors=("update_counts", "duplicates", "table2"),
        )
    if key == "ablation":
        # The scrub-heavy what-if's knobs on the tiny topology.
        return ScenarioSpec(
            name="determinism-ablation",
            kind="internet",
            seed=11,
            internet=InternetSpec(
                scrub_internal_fraction=1.0,
                cleaner_egress_fraction=0.45,
                cleaner_ingress_fraction=0.05,
                tagger_fraction=0.5,
                **TINY_TOPOLOGY,
            ),
            collectors=("update_counts", "community_prevalence"),
        )
    if key == "lab":
        return get_scenario("lab-junos")
    return ScenarioSpec(
        name="determinism-mrt",
        kind="mrt",
        mrt=MrtSpec(path=spilled_archive),
        collectors=("update_counts", "table2"),
    )


def make_smoke_backend(key: str, spec: ScenarioSpec, work_dir: str):
    if key == "serial":
        return SerialBackend()
    if key == "threads":
        return ThreadBackend()
    if key == "processes":
        return ProcessBackend()
    if key == "queue":
        return QueueBackend(work_dir)
    # The shard that owns this spec, so the single-cell sweep runs.
    return ShardedBackend(
        shard_of(spec_hash(spec), 2), 2, inner=SerialBackend()
    )


@pytest.fixture(scope="module")
def reference_payloads(spilled_archive):
    """Serial-backend ground truth, one payload per smoke spec."""
    payloads = {}
    for key in SMOKE_KEYS:
        spec = smoke_spec(key, spilled_archive)
        report = SweepRunner(workers=1, backend=SerialBackend()).run(
            [spec]
        )
        assert not report.failures
        payloads[key] = result_to_json(report.results[0])
    return payloads


@pytest.mark.parametrize("backend_key", BACKEND_KEYS)
@pytest.mark.parametrize("spec_key", SMOKE_KEYS)
def test_payload_byte_identical_across_backends(
    spec_key, backend_key, spilled_archive, reference_payloads, tmp_path
):
    spec = smoke_spec(spec_key, spilled_archive)
    backend = make_smoke_backend(backend_key, spec, str(tmp_path / "q"))
    report = SweepRunner(workers=1, backend=backend).run([spec])
    assert not report.failures
    assert len(report.results) == 1
    assert (
        result_to_json(report.results[0])
        == reference_payloads[spec_key]
    )


@pytest.mark.parametrize("backend_key", ("threads", "processes"))
def test_payload_byte_identical_across_worker_counts(
    backend_key, spilled_archive
):
    # A 4-cell sweep so workers=4 genuinely fans out, against the
    # same sweep pinned to one worker (which runs the inline path).
    specs = expand_seeds(
        smoke_spec("internet", spilled_archive), (1, 2, 3, 4)
    )
    one = run_sweep(specs, workers=1, backend=backend_key)
    four = run_sweep(specs, workers=4, backend=backend_key)
    assert not one.failures and not four.failures
    payload = lambda report: [  # noqa: E731
        result_to_json(result) for result in report.results
    ]
    assert payload(one) == payload(four)


def test_sharded_halves_reassemble_the_serial_sweep(
    spilled_archive, tmp_path
):
    # Two cooperating shard invocations over a shared cache produce,
    # in the end, byte-identical payloads to one serial run.
    cache = str(tmp_path / "cache")
    specs = expand_seeds(
        smoke_spec("internet", spilled_archive), (1, 2, 3, 4)
    )
    serial = run_sweep(specs, workers=1, backend="serial")
    for index in range(2):
        run_sweep(
            specs,
            workers=1,
            backend=ShardedBackend(index, 2, inner=SerialBackend()),
            cache_dir=cache,
        )
    converged = run_sweep(
        specs, workers=1, backend="serial", cache_dir=cache
    )
    assert converged.cache_hits == len(specs)
    assert [result_to_json(result) for result in converged.results] == [
        result_to_json(result) for result in serial.results
    ]


def test_queue_invocations_reassemble_the_serial_sweep(
    spilled_archive, tmp_path
):
    # Two queue invocations draining one work dir: the first computes
    # everything, the second (with its own cache, as a second machine
    # would have) adopts the done records without recomputing; both
    # caches end up byte-identical to a serial run.  (Concurrent
    # invocations are covered in the scheduler suite; here the
    # question is the bytes.)
    work_dir = str(tmp_path / "queue")
    specs = expand_seeds(
        smoke_spec("internet", spilled_archive), (1, 2, 3, 4)
    )
    serial = run_sweep(specs, workers=1, backend="serial")
    serial_payloads = [
        result_to_json(result) for result in serial.results
    ]
    for invocation in range(2):
        cache = str(tmp_path / f"cache{invocation}")
        report = run_sweep(
            specs,
            workers=1,
            backend=QueueBackend(work_dir),
            cache_dir=cache,
        )
        assert not report.failures
        converged = run_sweep(
            specs, workers=1, backend="serial", cache_dir=cache
        )
        assert converged.cache_hits == len(specs)
        assert [
            result_to_json(result) for result in converged.results
        ] == serial_payloads
