"""Seeded chaos: sweeps converge byte-identically through faults.

The crash-consistency claim, stated as a test: run a sweep under a
seeded fault plan (errors, stalls, torn writes, kills), let the
recovery machinery do its job (retries, re-enqueue, doctor, stale-claim
requeue), and the final results must be *byte-identical* to a
fault-free sweep — no lost cells, no double-computed cells, no debris
the doctor still complains about.  scripts/chaos.sh runs the same loop
harder (20 seeds, two concurrent invocations); these tests keep CI's
tier-1 rung fast with a seeded sample of each fault class.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.faults import doctor
from repro.faults.plan import FaultPlan
from repro.obs.journal import cell_journal_path, read_journal
from repro.scenarios import (
    expand_seeds,
    get_scenario,
    make_backend,
    result_to_json,
    run_sweep,
    spec_hash,
)

CHEAP = "lab-junos"
SEEDS = (1, 2, 3, 4)


@pytest.fixture(autouse=True)
def _fresh_fault_state():
    faults.reset_fault_plan()
    yield
    faults.reset_fault_plan()


def _specs():
    return expand_seeds(get_scenario(CHEAP), SEEDS)


def _payloads(report):
    return [result_to_json(result) for result in report.results]


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The fault-free truth every chaos run must converge to."""
    faults.reset_fault_plan()
    cache = tmp_path_factory.mktemp("reference-cache")
    report = run_sweep(_specs(), backend="serial", cache_dir=str(cache))
    assert report.failures == []
    return _payloads(report)


class TestErrorChaos:
    @pytest.mark.parametrize("chaos_seed", [11, 23, 37])
    def test_queue_sweep_converges_after_error_storm(
        self, tmp_path, reference, chaos_seed
    ):
        cache = str(tmp_path / "cache")
        queue_dir = os.path.join(cache, "queue")
        plan = FaultPlan.from_dict(
            {
                "seed": chaos_seed,
                "rules": [
                    {
                        "site": "sweep.cell",
                        "action": "error",
                        "probability": 0.5,
                    }
                ],
            }
        )
        faults.set_fault_plan(plan)
        first = run_sweep(
            _specs(),
            backend=make_backend("queue", queue_dir=queue_dir),
            cache_dir=cache,
        )
        # Crash model: the faulty invocation dies; a clean one resumes.
        faults.set_fault_plan(None)
        second = run_sweep(
            _specs(),
            backend=make_backend("queue", queue_dir=queue_dir),
            cache_dir=cache,
        )
        assert second.failures == []
        assert _payloads(second) == reference
        # Survivors of the storm were served as hits, not recomputed.
        assert second.cache_hits == len(SEEDS) - len(first.failures)
        repaired = doctor.run_doctor(str(tmp_path), repair=True)
        assert all(f.repaired for f in repaired.findings)
        assert doctor.run_doctor(str(tmp_path)).clean


class TestTornWriteChaos:
    def test_torn_cache_and_manifest_recover_via_doctor(
        self, tmp_path, reference
    ):
        cache = str(tmp_path / "cache")
        victim = spec_hash(_specs()[0])
        plan = FaultPlan.from_dict(
            {
                "rules": [
                    # Every manifest checkpoint tears; one cache entry
                    # tears once.  Deterministic coverage of both
                    # repair paths (quarantine, rebuild).
                    {
                        "site": "durable.write",
                        "match": "*sweep.json*",
                        "action": "torn",
                        "keep": 0.6,
                    },
                    {
                        "site": "durable.write",
                        "match": f"*{victim}*",
                        "action": "torn",
                        "keep": 0.4,
                        "count": 1,
                    },
                ]
            }
        )
        faults.set_fault_plan(plan)
        first = run_sweep(_specs(), backend="serial", cache_dir=cache)
        assert first.failures == []  # torn writes are silent at write
        faults.set_fault_plan(None)
        report = doctor.run_doctor(str(tmp_path), repair=True)
        kinds = sorted(f.kind for f in report.findings)
        assert kinds == ["corrupt-cache-entry", "corrupt-manifest"]
        assert all(f.repaired for f in report.findings)
        second = run_sweep(_specs(), backend="serial", cache_dir=cache)
        assert second.failures == []
        assert _payloads(second) == reference
        # Only the torn cell recomputed; the rebuilt manifest served
        # the other three as hits.
        assert second.cache_hits == len(SEEDS) - 1
        assert doctor.run_doctor(str(tmp_path)).clean


class TestKillChaos:
    def _sweep_cmd(self, cache, *extra):
        return [
            sys.executable, "-m", "repro.cli", "scenario", "sweep",
            CHEAP, "--seeds", ",".join(str(s) for s in SEEDS),
            "--cache-dir", cache, *extra,
        ]

    def _env(self, plan_path=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.pop(faults.PLAN_ENV, None)
        if plan_path is not None:
            env[faults.PLAN_ENV] = plan_path
        return env

    def test_killed_invocation_resumes_exactly_once(self, tmp_path):
        cache = str(tmp_path / "cache")
        plan_path = str(tmp_path / "plan.json")
        with open(plan_path, "w") as handle:
            json.dump(
                {
                    "seed": 5,
                    "rules": [
                        {
                            "site": "sweep.cell",
                            "match": f"{CHEAP}@seed3",
                            "action": "kill",
                            "count": 1,
                        }
                    ],
                },
                handle,
            )
        queue_args = ("--backend", "queue", "--stale-claim", "2")
        first = subprocess.run(
            self._sweep_cmd(cache, *queue_args),
            env=self._env(plan_path),
            capture_output=True,
        )
        assert first.returncode == faults.DEFAULT_EXIT_CODE
        # The killed invocation leaves its claim behind; once the
        # lease goes silent past --stale-claim, a peer requeues it.
        time.sleep(2.5)
        # Same armed plan: the fire marker in the shared state dir
        # makes count=1 hold across invocations.
        second = subprocess.run(
            self._sweep_cmd(cache, *queue_args),
            env=self._env(plan_path),
            capture_output=True,
            text=True,
        )
        assert second.returncode == 0, second.stderr
        repair = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "doctor", cache,
                "--repair",
            ],
            env=self._env(),
            capture_output=True,
            text=True,
        )
        assert repair.returncode == 0, repair.stderr
        assert doctor.run_doctor(cache).clean
        # Byte-identical convergence: the post-chaos sweep --json must
        # match a pristine fault-free run, byte for byte.
        final = subprocess.run(
            self._sweep_cmd(cache, "--backend", "serial", "--json"),
            env=self._env(),
            capture_output=True,
        )
        pristine = subprocess.run(
            self._sweep_cmd(
                str(tmp_path / "pristine"), "--backend", "serial",
                "--json",
            ),
            env=self._env(),
            capture_output=True,
        )
        assert final.returncode == pristine.returncode == 0
        assert final.stdout == pristine.stdout
        # Exactly-once: every cell's journal shows exactly one finish
        # — the killed attempt left a start with no finish, and nobody
        # computed any cell twice.
        for spec in _specs():
            events = read_journal(
                cell_journal_path(cache, spec_hash(spec))
            )
            finishes = [e for e in events if e.get("event") == "finish"]
            assert len(finishes) == 1, (spec.name, events)
