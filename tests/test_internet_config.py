"""Unit tests for InternetModel construction (no full day runs)."""

import pytest

from repro.vendors import CISCO_IOS, JUNOS
from repro.workloads import InternetConfig, InternetModel
from repro.workloads.practices import CommunityPractice


@pytest.fixture(scope="module")
def built_model():
    """A built (converged) but not day-simulated small internet."""
    return InternetModel(InternetConfig.small()).build()


class TestConfigPresets:
    def test_small_is_smaller_than_mar20(self):
        small = InternetConfig.small()
        mar20 = InternetConfig.mar20()
        assert small.topology.stub_count < mar20.topology.stub_count
        assert small.link_flaps < mar20.link_flaps

    def test_overrides(self):
        config = InternetConfig.small(beacon_count=7, seed=99)
        assert config.beacon_count == 7
        assert config.seed == 99

    def test_day_start_is_mar20(self):
        from repro.netbase import parse_utc

        assert InternetConfig().day_start == parse_utc("2020-03-15")


class TestBuild:
    def test_one_router_per_as(self, built_model):
        assert len(built_model._routers) == len(built_model.topology.ases)

    def test_every_as_has_a_practice(self, built_model):
        assert set(built_model.practices) == set(built_model.topology.ases)
        assert all(
            isinstance(practice, CommunityPractice)
            for practice in built_model.practices.values()
        )

    def test_taggers_have_geo_taggers(self, built_model):
        taggers = {
            asn
            for asn, practice in built_model.practices.items()
            if practice == CommunityPractice.TAGGER
        }
        assert taggers == set(built_model._taggers)

    def test_collectors_created(self, built_model):
        assert set(built_model.network.collectors) == set(
            built_model.config.collector_names
        )
        for collector in built_model.network.collectors.values():
            assert len(collector.sessions) >= 3

    def test_exactly_one_route_server(self, built_model):
        transparent = [
            router
            for router in built_model._routers.values()
            if router.transparent
        ]
        assert len(transparent) == 1

    def test_registry_covers_all_legitimate_resources(self, built_model):
        when = built_model.config.day_start
        for spec in built_model.topology.ases.values():
            assert built_model.registry.asn_allocated(spec.asn, when)
            for prefix in spec.prefixes:
                assert built_model.registry.prefix_allocated(prefix, when)

    def test_bogon_prefix_is_unregistered(self, built_model):
        when = built_model.config.day_start
        assert built_model._bogon_prefixes
        for prefix in built_model._bogon_prefixes:
            assert not built_model.registry.prefix_allocated(prefix, when)

    def test_network_converged_after_build(self, built_model):
        assert built_model.network.queue.pending == 0
        # The global table is populated: routers know remote prefixes.
        sample_router = next(iter(built_model._routers.values()))
        assert len(sample_router.loc_rib) > 5

    def test_deterministic_given_seed(self):
        first = InternetModel(InternetConfig.small())
        second = InternetModel(InternetConfig.small())
        assert first.practices == second.practices  # both empty pre-build
        assert sorted(first.topology.ases) == sorted(second.topology.ases)
        assert (
            first.topology.session_count()
            == second.topology.session_count()
        )

    def test_vendor_mix_override(self):
        model = InternetModel(
            InternetConfig.small(vendor_mix=((JUNOS, 1.0),))
        ).build()
        assert all(
            router.vendor is JUNOS
            for router in model._routers.values()
        )

    def test_bogons_can_be_disabled(self):
        model = InternetModel(
            InternetConfig.small(include_bogons=False)
        ).build()
        assert model._bogon_prefixes == []
