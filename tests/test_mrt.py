"""Unit tests for the MRT reader/writer."""

import io
import struct

import pytest

from repro.bgp import (
    ASPath,
    CommunitySet,
    KeepaliveMessage,
    PathAttributes,
    UpdateMessage,
)
from repro.mrt import Bgp4mpMessage, MRTError, MRTReader, MRTWriter, read_updates
from repro.mrt.records import (
    MRTHeader,
    MRTType,
    PeerIndexTable,
    decode_header,
    encode_header,
    pack_address,
    unpack_address,
)
from repro.mrt.writer import dump_records
from repro.netbase import Prefix


def sample_update():
    return UpdateMessage.announce(
        Prefix("84.205.64.0/24"),
        PathAttributes(
            as_path=ASPath.from_string("20205 3356 174 12654"),
            next_hop="10.0.0.1",
            communities=CommunitySet.parse("3356:300"),
        ),
    )


def sample_record(timestamp=1584230400.123456, message=None):
    return Bgp4mpMessage(
        timestamp=timestamp,
        peer_asn=20205,
        local_asn=12456,
        peer_address="192.0.2.2",
        local_address="192.0.2.1",
        message=message or sample_update(),
    )


class TestWriterReader:
    def test_roundtrip_single(self):
        data = dump_records([sample_record()])
        records = list(MRTReader(io.BytesIO(data)))
        assert len(records) == 1
        record = records[0]
        assert record.message == sample_update()
        assert int(record.peer_asn) == 20205
        assert record.peer_address == "192.0.2.2"
        assert abs(record.timestamp - 1584230400.123456) < 1e-5

    def test_roundtrip_many(self):
        originals = [
            sample_record(timestamp=1584230400.0 + i) for i in range(25)
        ]
        data = dump_records(originals)
        records = list(MRTReader(io.BytesIO(data)))
        assert len(records) == 25
        assert [r.timestamp for r in records] == [
            o.timestamp for o in originals
        ]

    def test_legacy_whole_second_mode(self):
        data = dump_records(
            [sample_record(timestamp=1584230400.75)],
            extended_timestamps=False,
        )
        record = next(iter(MRTReader(io.BytesIO(data))))
        assert record.timestamp == 1584230400.0

    def test_ipv6_envelope(self):
        record = Bgp4mpMessage(
            1584230400.0, 20205, 12456, "2001:db8::2", "2001:db8::1",
            sample_update(),
        )
        data = dump_records([record])
        decoded = next(iter(MRTReader(io.BytesIO(data))))
        assert decoded.peer_address == "2001:db8::2"

    def test_writer_rejects_mixed_families(self):
        record = Bgp4mpMessage(
            0.0, 1, 2, "192.0.2.1", "2001:db8::1", sample_update()
        )
        with pytest.raises(ValueError):
            dump_records([record])

    def test_writer_rejects_empty_message(self):
        record = Bgp4mpMessage(0.0, 1, 2, "192.0.2.1", "192.0.2.2", None)
        with pytest.raises(ValueError):
            dump_records([record])

    def test_writer_counts(self):
        buffer = io.BytesIO()
        writer = MRTWriter(buffer)
        writer.write_all([sample_record(), sample_record()])
        assert writer.record_count == 2

    def test_read_updates_filters_keepalives(self):
        records = [
            sample_record(),
            sample_record(message=KeepaliveMessage()),
        ]
        data = dump_records(records)
        updates = list(read_updates(io.BytesIO(data)))
        assert len(updates) == 1

    def test_skips_unknown_record_types(self):
        # Prepend a TABLE_DUMP_V2-typed record the reader cannot model.
        alien = struct.pack("!IHHI", 0, 13, 1, 4) + b"\x00" * 4
        data = alien + dump_records([sample_record()])
        reader = MRTReader(io.BytesIO(data))
        assert len(list(reader)) == 1
        assert reader.skipped_records == 1

    def test_strict_mode_raises_on_truncation(self):
        data = dump_records([sample_record()])
        with pytest.raises(MRTError):
            list(MRTReader(io.BytesIO(data[:-3])))

    def test_tolerant_mode_counts_errors(self):
        data = dump_records([sample_record()])
        reader = MRTReader(io.BytesIO(data[:-3]), tolerant=True)
        assert list(reader) == []
        assert reader.error_records == 1


class TestRecordHelpers:
    def test_pack_unpack_ipv4(self):
        afi, packed = pack_address("192.0.2.1")
        assert afi == 1
        assert unpack_address(afi, packed) == "192.0.2.1"

    def test_pack_unpack_ipv6(self):
        afi, packed = pack_address("2001:db8::1")
        assert afi == 2
        assert unpack_address(afi, packed) == "2001:db8::1"

    def test_unpack_rejects_bad_lengths(self):
        with pytest.raises(MRTError):
            unpack_address(1, b"\x01\x02")
        with pytest.raises(MRTError):
            unpack_address(2, b"\x01" * 4)
        with pytest.raises(MRTError):
            unpack_address(9, b"\x01" * 4)

    def test_header_roundtrip(self):
        header = MRTHeader(1584230400, MRTType.BGP4MP, 4, 64)
        decoded, size = decode_header(encode_header(header))
        assert size == 12
        assert decoded.mrt_type == MRTType.BGP4MP
        assert decoded.length == 64

    def test_header_et_microseconds(self):
        header = MRTHeader(100, MRTType.BGP4MP_ET, 4, 64, microseconds=2500)
        decoded, size = decode_header(encode_header(header))
        assert size == 16
        assert decoded.full_timestamp == pytest.approx(100.0025)

    def test_header_rejects_unknown_type(self):
        raw = struct.pack("!IHHI", 0, 99, 0, 0)
        with pytest.raises(MRTError):
            decode_header(raw)

    def test_peer_index_table_repr(self):
        table = PeerIndexTable("rrc00", peers=((1, "192.0.2.1"),))
        assert "rrc00" in repr(table)
