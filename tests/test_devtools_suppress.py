"""Suppression directives and baseline round-trips."""

import json
import textwrap

import pytest

from repro.devtools import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    apply_baseline,
    baseline_from_findings,
    check_source,
    empty_baseline,
    load_baseline,
    run_check,
    save_baseline,
)


def _check(source, rel, select=None):
    return check_source(textwrap.dedent(source), rel, select=select)


_HASH_SNIPPET = """
def tie_break(route):
    return hash(route)  # repro: allow(DET001) ordering is re-sorted downstream
"""

_HASH_STANDALONE = """
def tie_break(route):
    # repro: allow(DET001) ordering is re-sorted downstream
    return hash(route)
"""


class TestSuppressions:
    def test_trailing_comment_suppresses_own_line(self):
        report = _check(_HASH_SNIPPET, "rib/decision.py")
        assert report.clean
        assert report.suppressed == 1

    def test_standalone_comment_covers_next_line(self):
        report = _check(_HASH_STANDALONE, "rib/decision.py")
        assert report.clean
        assert report.suppressed == 1

    def test_standalone_comment_does_not_leak_past_next_line(self):
        report = _check(
            """
            def tie_break(route):
                # repro: allow(DET001) first call only
                first = hash(route)
                second = hash(route)
                return first + second
            """,
            "rib/decision.py",
        )
        assert [f.code for f in report.findings] == ["DET001"]
        assert report.suppressed == 1

    def test_wrong_code_does_not_suppress(self):
        report = _check(
            """
            def tie_break(route):
                return hash(route)  # repro: allow(DET002) wrong code
            """,
            "rib/decision.py",
        )
        assert [f.code for f in report.findings] == ["DET001"]

    def test_multiple_codes_in_one_directive(self):
        report = _check(
            """
            import time

            def stamp(route):
                # repro: allow(DET001, DET002) display-only diagnostic string
                return f"{hash(route)}@{time.time()}"
            """,
            "analysis/tables.py",
        )
        assert report.clean
        assert report.suppressed == 2

    def test_missing_reason_is_sup001(self):
        report = _check(
            """
            def tie_break(route):
                return hash(route)  # repro: allow(DET001)
            """,
            "rib/decision.py",
        )
        codes = sorted(f.code for f in report.findings)
        # The directive is rejected, so DET001 also survives.
        assert codes == ["DET001", "SUP001"]

    def test_unknown_code_is_sup001(self):
        report = _check(
            """
            x = 1  # repro: allow(NOPE123) not a real code
            """,
            "analysis/tables.py",
        )
        assert [f.code for f in report.findings] == ["SUP001"]
        assert "NOPE123" in report.findings[0].message

    def test_malformed_directive_is_sup001(self):
        report = _check(
            """
            x = 1  # repro: allow DET001 forgot the parens
            """,
            "analysis/tables.py",
        )
        assert [f.code for f in report.findings] == ["SUP001"]

    def test_sup001_cannot_self_suppress(self):
        report = _check(
            """
            # repro: allow(SUP001) trying to waive the waiver checker
            x = 1  # repro: allow(BOGUS999) bad
            """,
            "analysis/tables.py",
        )
        codes = [f.code for f in report.findings]
        assert "SUP001" in codes

    def test_prose_mention_is_not_a_directive(self):
        report = _check(
            '''
            """Docs may say ``# repro: allow(DET001) reason`` freely."""

            # The syntax is `# repro: allow(CODE) reason`, documented here.
            x = 1
            ''',
            "analysis/tables.py",
        )
        assert report.clean
        assert report.suppressed == 0

    def test_unused_suppression_does_not_count(self):
        report = _check(
            """
            # repro: allow(DET001) nothing on the next line triggers this
            x = 1
            """,
            "analysis/tables.py",
        )
        assert report.clean
        assert report.suppressed == 0


class TestBaseline:
    def _findings(self):
        report = _check(
            """
            def tie_break(route):
                return hash(route)
            """,
            "rib/decision.py",
        )
        assert not report.clean
        return report.findings

    def test_round_trip(self, tmp_path):
        findings = self._findings()
        baseline = baseline_from_findings(findings)
        path = tmp_path / DEFAULT_BASELINE_NAME
        save_baseline(baseline, str(path))
        loaded = load_baseline(str(path))
        remaining, baselined = apply_baseline(findings, loaded)
        assert remaining == []
        assert baselined == len(findings)

    def test_baseline_is_line_number_free(self, tmp_path):
        findings = self._findings()
        baseline = baseline_from_findings(findings)
        # Same code on a different line (file grew above it) still
        # matches its grandfathered entry.
        moved = _check(
            """
            import zlib


            def other(route):
                return zlib.crc32(repr(route).encode())


            def tie_break(route):
                return hash(route)
            """,
            "rib/decision.py",
        )
        remaining, baselined = apply_baseline(moved.findings, baseline)
        assert remaining == []
        assert baselined == 1

    def test_occurrence_counts_cap_matches(self):
        findings = self._findings()
        baseline = baseline_from_findings(findings)
        doubled = _check(
            """
            def tie_break(route):
                return hash(route)

            def tie_break_again(route):
                return hash(route)
            """,
            "rib/decision.py",
        )
        remaining, baselined = apply_baseline(doubled.findings, baseline)
        # Only one occurrence was grandfathered; the new one surfaces.
        assert baselined == 1
        assert len(remaining) == 1

    def test_empty_baseline_shape(self, tmp_path):
        path = tmp_path / DEFAULT_BASELINE_NAME
        save_baseline(empty_baseline(), str(path))
        document = json.loads(path.read_text())
        assert document == {"findings": [], "version": 1}

    def test_corrupt_baseline_raises(self, tmp_path):
        path = tmp_path / DEFAULT_BASELINE_NAME
        path.write_text("not json")
        with pytest.raises(BaselineError):
            load_baseline(str(path))

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / DEFAULT_BASELINE_NAME
        path.write_text(json.dumps({"findings": [], "version": 99}))
        with pytest.raises(BaselineError):
            load_baseline(str(path))


class TestRunCheckOnDisk:
    def test_scans_directory_and_honors_baseline(self, tmp_path):
        package = tmp_path / "repro" / "rib"
        package.mkdir(parents=True)
        bad = package / "decision.py"
        bad.write_text("def f(route):\n    return hash(route)\n")
        report = run_check([str(tmp_path)])
        assert [f.code for f in report.findings] == ["DET001"]

        baseline = baseline_from_findings(report.findings)
        baseline_path = tmp_path / DEFAULT_BASELINE_NAME
        save_baseline(baseline, str(baseline_path))
        rerun = run_check(
            [str(tmp_path)], baseline=load_baseline(str(baseline_path))
        )
        assert rerun.clean
        assert rerun.baselined == 1

    def test_missing_path_raises(self):
        from repro.devtools import UsageError

        with pytest.raises(UsageError):
            run_check(["definitely/not/here"])
