"""Unit + property tests for the announcement-type classifier."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    AnnouncementType,
    UpdateClassifier,
    classify_observations,
)
from repro.analysis.classify import TYPE_ORDER, compare_announcements, TypeCounts
from repro.analysis.observations import (
    Observation,
    ObservationKind,
    SessionKey,
)
from repro.bgp import ASPath, CommunitySet
from repro.netbase import Prefix

SESSION = SessionKey("rrc00", 20205, "10.0.0.1")
PREFIX = Prefix("84.205.64.0/24")


def announce(t, path, communities="", session=SESSION, prefix=PREFIX):
    return Observation(
        timestamp=t,
        session=session,
        prefix=prefix,
        kind=ObservationKind.ANNOUNCE,
        as_path=ASPath.from_string(path) if path else ASPath.empty(),
        communities=CommunitySet.parse(communities),
    )


def withdraw(t, session=SESSION, prefix=PREFIX):
    return Observation(
        timestamp=t,
        session=session,
        prefix=prefix,
        kind=ObservationKind.WITHDRAW,
    )


class TestCompare:
    PATH = ASPath.from_string("1 2 3")

    def test_nn(self):
        kind = compare_announcements(
            self.PATH, CommunitySet.empty(), self.PATH, CommunitySet.empty()
        )
        assert kind == AnnouncementType.NN

    def test_nc(self):
        kind = compare_announcements(
            self.PATH,
            CommunitySet.parse("1:1"),
            self.PATH,
            CommunitySet.parse("1:2"),
        )
        assert kind == AnnouncementType.NC

    def test_pn(self):
        kind = compare_announcements(
            self.PATH,
            CommunitySet.empty(),
            ASPath.from_string("1 4 3"),
            CommunitySet.empty(),
        )
        assert kind == AnnouncementType.PN

    def test_pc(self):
        kind = compare_announcements(
            self.PATH,
            CommunitySet.parse("1:1"),
            ASPath.from_string("1 4 3"),
            CommunitySet.parse("1:2"),
        )
        assert kind == AnnouncementType.PC

    def test_xn(self):
        kind = compare_announcements(
            self.PATH,
            CommunitySet.empty(),
            ASPath.from_string("1 1 2 3"),
            CommunitySet.empty(),
        )
        assert kind == AnnouncementType.XN

    def test_xc(self):
        kind = compare_announcements(
            self.PATH,
            CommunitySet.parse("1:1"),
            ASPath.from_string("1 1 2 3"),
            CommunitySet.parse("1:2"),
        )
        assert kind == AnnouncementType.XC

    def test_empty_paths_compare_as_no_change(self):
        kind = compare_announcements(
            None, CommunitySet.empty(), None, CommunitySet.empty()
        )
        assert kind == AnnouncementType.NN


class TestTypeProperties:
    def test_flags(self):
        assert AnnouncementType.PC.path_changed
        assert AnnouncementType.PC.community_changed
        assert AnnouncementType.XN.prepend_only
        assert not AnnouncementType.XN.community_changed
        assert AnnouncementType.NC.is_spurious
        assert AnnouncementType.NN.is_spurious
        assert not AnnouncementType.PC.is_spurious

    def test_order_covers_all(self):
        assert set(TYPE_ORDER) == set(AnnouncementType)


class TestClassifier:
    def test_first_announcement_is_unclassified(self):
        classifier = UpdateClassifier()
        assert classifier.observe(announce(1, "1 2")) is None
        assert classifier.counts.unclassified_first == 1

    def test_streams_are_independent(self):
        classifier = UpdateClassifier()
        other_session = SessionKey("rrc00", 3356, "10.0.0.2")
        classifier.observe(announce(1, "1 2"))
        # Same prefix, different session: also first-on-stream.
        assert (
            classifier.observe(announce(2, "1 2", session=other_session))
            is None
        )

    def test_prefixes_are_independent(self):
        classifier = UpdateClassifier()
        classifier.observe(announce(1, "1 2"))
        other = announce(2, "1 2", prefix=Prefix("10.0.0.0/8"))
        assert classifier.observe(other) is None

    def test_withdrawal_does_not_reset_stream_state(self):
        # The paper compares an announcement to the previous
        # *announcement*, so a withdraw/re-announce of the same route
        # counts as nn.
        classifier = UpdateClassifier()
        classifier.observe(announce(1, "1 2", "1:1"))
        classifier.observe(withdraw(2))
        kind = classifier.observe(announce(3, "1 2", "1:1"))
        assert kind == AnnouncementType.NN
        assert classifier.counts.withdrawals == 1

    def test_community_exploration_sequence(self):
        # The Figure 4 pattern: pc followed by nc's.
        classifier = UpdateClassifier()
        classifier.observe(announce(0, "20205 6939 12654", "6939:1"))
        kinds = [
            classifier.observe(announce(1, "20205 3356 174 12654", "3356:100")),
            classifier.observe(announce(2, "20205 3356 174 12654", "3356:200")),
            classifier.observe(announce(3, "20205 3356 174 12654", "3356:300")),
        ]
        assert kinds == [
            AnnouncementType.PC,
            AnnouncementType.NC,
            AnnouncementType.NC,
        ]

    def test_duplicate_sequence(self):
        # The Figure 5 pattern: pn followed by nn's.
        classifier = UpdateClassifier()
        classifier.observe(announce(0, "20811 6939 12654"))
        kinds = [
            classifier.observe(announce(1, "20811 3356 174 12654")),
            classifier.observe(announce(2, "20811 3356 174 12654")),
        ]
        assert kinds == [AnnouncementType.PN, AnnouncementType.NN]

    def test_counts_and_shares(self):
        observations = [
            announce(0, "1 2", "1:1"),
            announce(1, "1 2", "1:2"),  # nc
            announce(2, "1 3", "1:2"),  # pn
            announce(3, "1 3", "1:2"),  # nn
            announce(4, "1 1 3", "1:2"),  # xn
            withdraw(5),
        ]
        counts = classify_observations(observations)
        assert counts.classified_total == 4
        assert counts.announcements_total == 5
        assert counts.withdrawals == 1
        assert counts.counts[AnnouncementType.NC] == 1
        assert counts.share(AnnouncementType.NC) == 0.25
        assert counts.no_path_change_share() == 0.5

    def test_empty_counts(self):
        counts = TypeCounts()
        assert counts.share(AnnouncementType.PC) == 0.0
        assert counts.classified_total == 0

    def test_merge(self):
        first = classify_observations(
            [announce(0, "1 2"), announce(1, "1 2")]
        )
        second = classify_observations(
            [announce(0, "1 2", session=SessionKey("x", 1, "a")),
             announce(1, "1 3", session=SessionKey("x", 1, "a"))]
        )
        merged = first.merge(second)
        assert merged.counts[AnnouncementType.NN] == 1
        assert merged.counts[AnnouncementType.PN] == 1
        assert merged.unclassified_first == 2

    def test_as_rows_ordering(self):
        counts = classify_observations([announce(0, "1"), announce(1, "1")])
        rows = counts.as_rows()
        assert [row[0] for row in rows] == [
            "pc", "pn", "nc", "nn", "xc", "xn",
        ]


class TestClassifierProperties:
    paths = st.lists(
        st.integers(min_value=1, max_value=100), min_size=1, max_size=4
    ).map(lambda asns: " ".join(str(a) for a in asns))
    community_sets = st.sets(
        st.integers(min_value=0, max_value=5), max_size=3
    ).map(
        lambda values: " ".join(f"100:{v}" for v in sorted(values))
    )

    @given(st.lists(st.tuples(paths, community_sets), min_size=2, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_every_non_first_announcement_gets_a_type(self, stream):
        observations = [
            announce(index, path, communities)
            for index, (path, communities) in enumerate(stream)
        ]
        counts = classify_observations(observations)
        assert counts.classified_total == len(stream) - 1
        assert counts.unclassified_first == 1

    @given(st.lists(st.tuples(paths, community_sets), min_size=2, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_shares_sum_to_one(self, stream):
        observations = [
            announce(index, path, communities)
            for index, (path, communities) in enumerate(stream)
        ]
        counts = classify_observations(observations)
        total = sum(counts.share(kind) for kind in AnnouncementType)
        assert total == pytest.approx(1.0)

    @given(paths, community_sets)
    @settings(max_examples=50, deadline=None)
    def test_identical_reannouncement_is_always_nn(self, path, communities):
        observations = [
            announce(0, path, communities),
            announce(1, path, communities),
        ]
        counts = classify_observations(observations)
        assert counts.counts[AnnouncementType.NN] == 1


class TestSnapshotSeeding:
    def _archive(self):
        from repro.netbase import Prefix
        from repro.simulator import Network

        network = Network()
        origin = network.add_router("origin", 65001)
        middle = network.add_router("middle", 65002)
        collector = network.add_collector("rrc0")
        network.connect(origin, middle)
        network.connect(middle, collector)
        origin.originate(Prefix("203.0.113.0/24"))
        network.converge()
        return network, origin, collector

    def test_seeded_first_announcement_is_classified(self):
        from repro.analysis import observations_from_collector
        from repro.bgp import CommunitySet
        from repro.mrt import snapshot_from_collector
        from repro.netbase import Prefix

        network, origin, collector = self._archive()
        snapshot = snapshot_from_collector(collector)
        collector.clear()
        # A community change arrives after the snapshot was taken.
        origin.originate(
            Prefix("203.0.113.0/24"),
            communities=CommunitySet.parse("65001:9"),
        )
        network.converge()

        unseeded = UpdateClassifier()
        for obs in observations_from_collector(collector):
            unseeded.observe(obs)
        assert unseeded.counts.unclassified_first == 1

        seeded = UpdateClassifier()
        assert seeded.seed_from_snapshot(snapshot, "rrc0") == 1
        for obs in observations_from_collector(collector):
            seeded.observe(obs)
        assert seeded.counts.unclassified_first == 0
        assert seeded.counts.counts[AnnouncementType.NC] == 1

    def test_seeding_does_not_override_live_state(self):
        from repro.mrt import snapshot_from_collector

        network, origin, collector = self._archive()
        snapshot = snapshot_from_collector(collector)
        classifier = UpdateClassifier()
        # Live observation first; seeding afterwards must not clobber.
        from repro.analysis import observations_from_collector

        for obs in observations_from_collector(collector):
            classifier.observe(obs)
        assert classifier.seed_from_snapshot(snapshot, "rrc0") == 0
