"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_lab_defaults(self):
        arguments = build_parser().parse_args(["lab"])
        assert arguments.command == "lab"
        assert arguments.vendor is None

    def test_classify_requires_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify"])

    def test_simulate_scale_choices(self):
        arguments = build_parser().parse_args(
            ["simulate", "--scale", "mar20", "--seed", "7"]
        )
        assert arguments.scale == "mar20"
        assert arguments.seed == 7
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scale", "huge"])


class TestLabCommand:
    def test_single_vendor_matrix(self, capsys):
        assert main(["lab", "--vendor", "junos"]) == 0
        out = capsys.readouterr().out
        assert "Junos" in out
        assert "exp4" in out

    def test_unknown_vendor_fails_cleanly(self, capsys):
        assert main(["lab", "--vendor", "nokia"]) == 2
        assert "unknown vendor" in capsys.readouterr().err


class TestClassifyCommand:
    def test_classifies_archive(self, tmp_path, capsys):
        # Build a small archive via the simulator.
        from repro.netbase import Prefix
        from repro.simulator import Network

        network = Network()
        origin = network.add_router("origin", 65001)
        middle = network.add_router("middle", 65002)
        collector = network.add_collector("rrc0")
        network.connect(origin, middle)
        network.connect(middle, collector)
        origin.originate(Prefix("203.0.113.0/24"))
        network.converge()
        origin.withdraw_origination(Prefix("203.0.113.0/24"))
        network.converge()
        archive = tmp_path / "updates.mrt"
        archive.write_bytes(collector.dump_mrt())

        assert main(["classify", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Announcements" in out

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["classify", "/nonexistent/file.mrt"]) == 2
        assert "cannot open" in capsys.readouterr().err

    def test_empty_archive_reports_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.mrt"
        empty.write_bytes(b"")
        assert main(["classify", str(empty)]) == 1
        assert "no update messages" in capsys.readouterr().err


class TestScenarioParser:
    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_sweep_arguments(self):
        arguments = build_parser().parse_args(
            [
                "scenario",
                "sweep",
                "internet-small",
                "--seeds",
                "1,2,3",
                "--workers",
                "2",
                "--cache-dir",
                "/tmp/c",
            ]
        )
        assert arguments.scenario_command == "sweep"
        assert arguments.name == "internet-small"
        assert arguments.seeds == "1,2,3"
        assert arguments.workers == 2

    def test_sweep_backend_arguments(self):
        arguments = build_parser().parse_args(
            [
                "scenario",
                "sweep",
                "internet-small",
                "--backend",
                "serial",
                "--shard",
                "0/2",
                "--max-retries",
                "2",
            ]
        )
        assert arguments.backend == "serial"
        assert arguments.shard == "0/2"
        assert arguments.max_retries == 2
        assert not arguments.resume

    def test_sweep_name_optional_for_resume(self):
        arguments = build_parser().parse_args(
            ["scenario", "sweep", "--resume", "--cache-dir", "/tmp/c"]
        )
        assert arguments.name is None
        assert arguments.resume


class TestScenarioCommand:
    def test_list_shows_catalog(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "internet-small" in out
        assert "lab-baseline" in out
        assert "scrub-heavy" in out

    def test_list_filters_by_kind(self, capsys):
        assert main(["scenario", "list", "--kind", "lab"]) == 0
        out = capsys.readouterr().out
        assert "lab-baseline" in out
        assert "internet-small" not in out

    def test_run_lab_scenario(self, capsys):
        assert main(["scenario", "run", "lab-junos"]) == 0
        out = capsys.readouterr().out
        assert "Lab behavior matrix" in out
        assert "Junos" in out
        assert "hash=" in out

    def test_run_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["scenario", "run", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_requires_exactly_one_source(self, capsys):
        assert main(["scenario", "run"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_run_spec_file(self, tmp_path, capsys):
        from repro.scenarios import get_scenario, spec_to_json

        path = tmp_path / "lab.json"
        path.write_text(spec_to_json(get_scenario("lab-junos")))
        assert main(["scenario", "run", "--spec-file", str(path)]) == 0
        assert "Lab behavior matrix" in capsys.readouterr().out

    def test_run_invalid_spec_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"name": "x", "kind": "lab", "collectors": ["bogus"]}'
        )
        assert main(["scenario", "run", "--spec-file", str(path)]) == 2
        assert "unknown collector" in capsys.readouterr().err

    def test_run_json_output(self, capsys):
        assert main(["scenario", "run", "lab-junos", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["name"] == "lab-junos"
        assert "lab_matrix" in payload["metrics"]

    def test_sweep_with_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        arguments = [
            "scenario",
            "sweep",
            "lab-junos",
            "--seeds",
            "1,2",
            "--workers",
            "1",
            "--cache-dir",
            cache,
        ]
        assert main(arguments) == 0
        first = capsys.readouterr().out
        assert "2 miss(es)" in first
        assert main(arguments) == 0
        second = capsys.readouterr().out
        assert "2 hit(s)" in second

    def test_sweep_resume_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        first = [
            "scenario",
            "sweep",
            "lab-junos",
            "--seeds",
            "1,2",
            "--workers",
            "1",
            "--backend",
            "serial",
            "--cache-dir",
            cache,
        ]
        assert main(first) == 0
        capsys.readouterr()
        resumed = [
            "scenario",
            "sweep",
            "--resume",
            "--cache-dir",
            cache,
            "--workers",
            "1",
        ]
        assert main(resumed) == 0
        out = capsys.readouterr().out
        assert "Resumed sweep" in out
        assert "2 hit(s), 0 miss(es)" in out

    def test_sweep_resume_requires_cache_dir(self, capsys):
        assert main(["scenario", "sweep", "--resume"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_sweep_resume_rejects_scenario_name(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "sweep",
                    "lab-junos",
                    "--resume",
                    "--cache-dir",
                    "/tmp/does-not-matter",
                ]
            )
            == 2
        )
        assert "drop the scenario name" in capsys.readouterr().err

    def test_sweep_without_name_or_resume(self, capsys):
        assert main(["scenario", "sweep"]) == 2
        assert "scenario name" in capsys.readouterr().err

    def test_sweep_bad_shard_rejected(self, capsys):
        assert (
            main(
                ["scenario", "sweep", "lab-junos", "--shard", "5/2"]
            )
            == 2
        )
        assert "shard" in capsys.readouterr().err

    def test_sweep_failure_reported_with_spec_context(self, capsys):
        # mrt-replay cells have no --input in a sweep, so every cell
        # fails at run time; the CLI must name the spec, not dump an
        # anonymous pool traceback, and exit nonzero.
        assert (
            main(
                [
                    "scenario",
                    "sweep",
                    "mrt-replay",
                    "--seeds",
                    "1",
                    "--workers",
                    "1",
                    "--backend",
                    "serial",
                ]
            )
            == 1
        )
        captured = capsys.readouterr()
        assert "mrt-replay@seed1" in captured.err
        assert "failed after 1 attempt(s)" in captured.err
        # No --cache-dir was given, so there is nothing to resume;
        # the advice must say how to make the next run resumable.
        assert "--cache-dir" in captured.out
        assert "--resume" not in captured.out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import os
        import subprocess
        import sys

        environment = dict(os.environ)
        source_root = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        environment["PYTHONPATH"] = source_root + (
            os.pathsep + environment["PYTHONPATH"]
            if environment.get("PYTHONPATH")
            else ""
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "scenario", "list"],
            capture_output=True,
            text=True,
            env=environment,
        )
        assert completed.returncode == 0
        assert "internet-small" in completed.stdout
