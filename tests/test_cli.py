"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_lab_defaults(self):
        arguments = build_parser().parse_args(["lab"])
        assert arguments.command == "lab"
        assert arguments.vendor is None

    def test_classify_requires_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify"])

    def test_simulate_scale_choices(self):
        arguments = build_parser().parse_args(
            ["simulate", "--scale", "mar20", "--seed", "7"]
        )
        assert arguments.scale == "mar20"
        assert arguments.seed == 7
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scale", "huge"])


class TestLabCommand:
    def test_single_vendor_matrix(self, capsys):
        assert main(["lab", "--vendor", "junos"]) == 0
        out = capsys.readouterr().out
        assert "Junos" in out
        assert "exp4" in out

    def test_unknown_vendor_fails_cleanly(self, capsys):
        assert main(["lab", "--vendor", "nokia"]) == 2
        assert "unknown vendor" in capsys.readouterr().err


class TestClassifyCommand:
    def test_classifies_archive(self, tmp_path, capsys):
        # Build a small archive via the simulator.
        from repro.netbase import Prefix
        from repro.simulator import Network

        network = Network()
        origin = network.add_router("origin", 65001)
        middle = network.add_router("middle", 65002)
        collector = network.add_collector("rrc0")
        network.connect(origin, middle)
        network.connect(middle, collector)
        origin.originate(Prefix("203.0.113.0/24"))
        network.converge()
        origin.withdraw_origination(Prefix("203.0.113.0/24"))
        network.converge()
        archive = tmp_path / "updates.mrt"
        archive.write_bytes(collector.dump_mrt())

        assert main(["classify", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Announcements" in out

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["classify", "/nonexistent/file.mrt"]) == 2
        assert "cannot open" in capsys.readouterr().err

    def test_empty_archive_reports_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.mrt"
        empty.write_bytes(b"")
        assert main(["classify", str(empty)]) == 1
        assert "no update messages" in capsys.readouterr().err
