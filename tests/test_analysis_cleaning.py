"""Unit tests for the §4 cleaning pipeline."""

import pytest

from repro.analysis import CleaningPipeline
from repro.analysis.cleaning import SAME_SECOND_STEP
from repro.analysis.observations import (
    Observation,
    ObservationKind,
    SessionKey,
)
from repro.bgp import ASPath, CommunitySet
from repro.netbase import Prefix
from repro.workloads import AllocationRegistry

SESSION = SessionKey("rrc00", 20205, "10.0.0.1")


def announce(t, path="20205 3356 12654", prefix="84.205.64.0/24",
             session=SESSION):
    return Observation(
        timestamp=t,
        session=session,
        prefix=Prefix(prefix),
        kind=ObservationKind.ANNOUNCE,
        as_path=ASPath.from_string(path),
        communities=CommunitySet.empty(),
    )


def registry_with(*asns, prefixes=("84.205.64.0/19",), at=0.0):
    registry = AllocationRegistry()
    registry.allocate_all(list(asns), list(prefixes), at=at)
    return registry


class TestAllocationFiltering:
    def test_passes_fully_allocated(self):
        pipeline = CleaningPipeline(
            oracle=registry_with(20205, 3356, 12654)
        )
        cleaned, report = pipeline.run([announce(10.5)])
        assert len(cleaned) == 1
        assert report.dropped_total == 0

    def test_drops_unallocated_asn_in_path(self):
        pipeline = CleaningPipeline(oracle=registry_with(20205, 12654))
        cleaned, report = pipeline.run([announce(10.5)])
        assert cleaned == []
        assert report.dropped_unallocated_asn == 1

    def test_drops_unallocated_peer_asn(self):
        pipeline = CleaningPipeline(oracle=registry_with(3356, 12654))
        cleaned, report = pipeline.run([announce(10.5)])
        assert cleaned == []
        assert report.dropped_unallocated_asn == 1

    def test_drops_unallocated_prefix(self):
        pipeline = CleaningPipeline(
            oracle=registry_with(20205, 3356, 12654, prefixes=())
        )
        cleaned, report = pipeline.run([announce(10.5)])
        assert cleaned == []
        assert report.dropped_unallocated_prefix == 1

    def test_allocation_date_matters(self):
        pipeline = CleaningPipeline(
            oracle=registry_with(20205, 3356, 12654, at=100.0)
        )
        cleaned, report = pipeline.run([announce(50.5), announce(150.5)])
        assert len(cleaned) == 1
        assert cleaned[0].timestamp == 150.5

    def test_drops_reserved_asns(self):
        pipeline = CleaningPipeline()
        observation = announce(10.5, path="20205 65535 12654")
        cleaned, report = pipeline.run([observation])
        assert cleaned == []
        assert report.dropped_reserved_asn == 1

    def test_drops_as_trans(self):
        pipeline = CleaningPipeline()
        cleaned, report = pipeline.run(
            [announce(10.5, path="20205 23456 12654")]
        )
        assert cleaned == []

    def test_reserved_filter_can_be_disabled(self):
        pipeline = CleaningPipeline(drop_reserved_asns=False)
        cleaned, _ = pipeline.run(
            [announce(10.5, path="20205 65535 12654")]
        )
        assert len(cleaned) == 1

    def test_max_prefix_length(self):
        pipeline = CleaningPipeline(max_prefix_length_v4=24)
        keep = announce(1.5)
        drop = announce(2.5, prefix="84.205.64.0/25")
        cleaned, report = pipeline.run([keep, drop])
        assert len(cleaned) == 1
        assert report.dropped_long_prefix == 1

    def test_withdrawals_pass_asn_checks_without_path(self):
        withdrawal = Observation(
            timestamp=1.5,
            session=SESSION,
            prefix=Prefix("84.205.64.0/24"),
            kind=ObservationKind.WITHDRAW,
        )
        pipeline = CleaningPipeline(oracle=registry_with(20205))
        cleaned, _ = pipeline.run([withdrawal])
        assert len(cleaned) == 1


class TestRouteServerRepair:
    def test_prepends_missing_peer_asn(self):
        # Peer 20205 is a transparent route server: path starts at 3356.
        observation = announce(10.5, path="3356 12654")
        pipeline = CleaningPipeline()
        cleaned, report = pipeline.run([observation])
        assert str(cleaned[0].as_path) == "20205 3356 12654"
        assert report.repaired_route_server_paths == 1
        assert SESSION in report.route_server_peers

    def test_leaves_normal_paths_alone(self):
        pipeline = CleaningPipeline()
        cleaned, report = pipeline.run([announce(10.5)])
        assert str(cleaned[0].as_path) == "20205 3356 12654"
        assert report.repaired_route_server_paths == 0

    def test_repair_can_be_disabled(self):
        pipeline = CleaningPipeline(repair_route_server_paths=False)
        cleaned, _ = pipeline.run([announce(10.5, path="3356 12654")])
        assert str(cleaned[0].as_path) == "3356 12654"


class TestTimestampDisambiguation:
    def test_same_second_arrivals_are_spread(self):
        pipeline = CleaningPipeline()
        cleaned, report = pipeline.run(
            [announce(100.0), announce(100.0), announce(100.0)]
        )
        times = [obs.timestamp for obs in cleaned]
        assert times == [
            100.0,
            100.0 + SAME_SECOND_STEP,
            100.0 + 2 * SAME_SECOND_STEP,
        ]
        assert report.disambiguated_timestamps == 2

    def test_order_is_preserved(self):
        pipeline = CleaningPipeline()
        first = announce(100.0, path="20205 1 12654")
        second = announce(100.0, path="20205 2 12654")
        cleaned, _ = pipeline.run([first, second])
        assert str(cleaned[0].as_path).split()[1] == "1"
        assert cleaned[0].timestamp < cleaned[1].timestamp

    def test_subsecond_timestamps_untouched(self):
        pipeline = CleaningPipeline()
        cleaned, report = pipeline.run(
            [announce(100.25), announce(100.50)]
        )
        assert [obs.timestamp for obs in cleaned] == [100.25, 100.50]
        assert report.disambiguated_timestamps == 0

    def test_collectors_are_independent(self):
        other = SessionKey("route-views2", 20205, "10.0.0.1")
        pipeline = CleaningPipeline()
        cleaned, report = pipeline.run(
            [announce(100.0), announce(100.0, session=other)]
        )
        assert [obs.timestamp for obs in cleaned] == [100.0, 100.0]

    def test_disambiguation_can_be_disabled(self):
        pipeline = CleaningPipeline(disambiguate_same_second=False)
        cleaned, _ = pipeline.run([announce(100.0), announce(100.0)])
        assert [obs.timestamp for obs in cleaned] == [100.0, 100.0]


class TestReport:
    def test_summary_mentions_counts(self):
        pipeline = CleaningPipeline()
        _, report = pipeline.run([announce(100.0), announce(100.0)])
        summary = report.summary()
        assert "2 ->" in summary.replace("cleaned ", "")
        assert "disambiguated 1" in summary
