"""The declarative fault plan: validation, firing, determinism.

Kill faults cannot be exercised in-process (os._exit would take pytest
with it) — subprocess coverage lives in test_chaos.py; here the plan
machinery itself is pinned: rule validation, deterministic probability
draws, exactly-once fire claims (in-memory and state-dir), env arming,
and the error/stall/torn actions end to end through a real sweep.
"""

import json
import os

import pytest

from repro import faults
from repro.faults.plan import FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def _fresh_fault_state():
    faults.reset_fault_plan()
    yield
    faults.reset_fault_plan()


class TestPlanValidation:
    def test_minimal_plan_parses(self):
        plan = FaultPlan.from_dict(
            {"rules": [{"site": "sweep.cell", "action": "error"}]}
        )
        assert len(plan.rules) == 1
        assert plan.rules[0].match == "*"

    def test_empty_plan_is_fine(self):
        assert FaultPlan.from_dict({}).rules == ()

    @pytest.mark.parametrize(
        "rule",
        [
            {"site": "", "action": "error"},
            {"site": "x", "action": "explode"},
            {"site": "x", "action": "error", "count": 0},
            {"site": "x", "action": "error", "probability": 1.5},
            {"site": "x", "action": "stall", "seconds": -1},
            {"site": "x", "action": "torn", "keep": 1.0},
            {"site": "x", "action": "error", "bogus_key": 1},
        ],
    )
    def test_bad_rules_rejected(self, rule):
        with pytest.raises(faults.FaultPlanError):
            FaultPlan.from_dict({"rules": [rule]})

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(faults.FaultPlanError):
            faults.load_plan(str(path))

    def test_load_defaults_state_dir_next_to_the_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"rules": []}))
        plan = faults.load_plan(str(path))
        assert plan.state_dir == f"{path}.state"

    def test_matches_site_and_name_patterns(self):
        rule = FaultRule(
            site="queue.*", action="error", match="abc*"
        )
        assert rule.matches("queue.claim", "abc123")
        assert not rule.matches("sweep.cell", "abc123")
        assert not rule.matches("queue.claim", "xyz")


class TestFiring:
    def test_error_action_raises_injected_fault(self):
        plan = FaultPlan.from_dict(
            {"rules": [{"site": "s", "action": "error"}]}
        )
        with pytest.raises(faults.InjectedFault):
            plan.on_point("s", "anything")

    def test_stall_action_sleeps(self, monkeypatch):
        import repro.faults.plan as plan_module

        sleeps = []
        monkeypatch.setattr(plan_module.time, "sleep", sleeps.append)
        plan = FaultPlan.from_dict(
            {"rules": [{"site": "s", "action": "stall", "seconds": 2.5}]}
        )
        plan.on_point("s", "")
        assert sleeps == [2.5]

    def test_count_limits_fires_in_memory(self):
        plan = FaultPlan.from_dict(
            {"rules": [{"site": "s", "action": "error", "count": 2}]}
        )
        for _ in range(2):
            with pytest.raises(faults.InjectedFault):
                plan.on_point("s", "")
        plan.on_point("s", "")  # third pass: budget spent, no fire

    def test_count_is_exactly_once_across_plans_via_state_dir(
        self, tmp_path
    ):
        # Two plan instances over one state_dir model two processes:
        # the O_EXCL markers let exactly one of them claim the fire.
        state = str(tmp_path / "state")
        make = lambda: FaultPlan.from_dict(
            {"rules": [{"site": "s", "action": "error", "count": 1}]}
        )
        first, second = make(), make()
        first.state_dir = second.state_dir = state
        with pytest.raises(faults.InjectedFault):
            first.on_point("s", "")
        second.on_point("s", "")  # the twin sees the spent marker

    def test_probability_draw_is_deterministic(self):
        plan = FaultPlan.from_dict(
            {
                "seed": 7,
                "rules": [
                    {"site": "s", "action": "error", "probability": 0.5}
                ],
            }
        )
        rule = plan.rules[0]
        names = [f"cell-{i}" for i in range(64)]
        draws = [plan._draw(0, rule, name) for name in names]
        assert draws == [plan._draw(0, rule, name) for name in names]
        assert any(draws) and not all(draws)  # p=0.5 actually splits

    def test_different_seeds_draw_differently(self):
        def draws(seed):
            plan = FaultPlan.from_dict(
                {
                    "seed": seed,
                    "rules": [
                        {
                            "site": "s",
                            "action": "error",
                            "probability": 0.5,
                        }
                    ],
                }
            )
            return [
                plan._draw(0, plan.rules[0], f"cell-{i}")
                for i in range(64)
            ]

        assert draws(1) != draws(2)

    def test_torn_rules_ignore_faultpoints_but_mangle_bytes(self):
        plan = FaultPlan.from_dict(
            {"rules": [{"site": "durable.write", "action": "torn",
                        "keep": 0.25}]}
        )
        plan.on_point("durable.write", "x")  # no raise: torn ≠ point
        mangled = plan.mangle("durable.write", "x", b"A" * 100)
        assert mangled == b"A" * 25
        untouched = plan.mangle("other.site", "x", b"A" * 100)
        assert untouched == b"A" * 100


class TestArming:
    def test_disabled_faultpoint_is_a_noop(self):
        faults.set_fault_plan(None)
        faults.faultpoint("anything", name="x")  # must not raise
        assert faults.mangle("s", "x", b"data") == b"data"
        assert not faults.fault_plan_enabled()

    def test_env_arming_reaches_faultpoints(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {"rules": [{"site": "unit.test", "action": "error"}]}
            )
        )
        monkeypatch.setenv(faults.PLAN_ENV, str(path))
        faults.reset_fault_plan()
        assert faults.fault_plan_enabled()
        with pytest.raises(faults.InjectedFault):
            faults.faultpoint("unit.test", name="any")

    def test_set_fault_plan_returns_previous_state(self):
        plan = FaultPlan.from_dict({"rules": []})
        assert faults.set_fault_plan(plan) is None  # fixture reset
        assert faults.set_fault_plan(None) is plan

    def test_reset_reprobes_the_environment(self, monkeypatch, tmp_path):
        faults.set_fault_plan(None)
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {"rules": [{"site": "unit.reprobe", "action": "error"}]}
            )
        )
        monkeypatch.setenv(faults.PLAN_ENV, str(path))
        faults.faultpoint("unit.reprobe")  # still disarmed: cached off
        faults.reset_fault_plan()
        with pytest.raises(faults.InjectedFault):
            faults.faultpoint("unit.reprobe")


class TestSweepIntegration:
    def test_error_fault_is_absorbed_by_the_retry_budget(
        self, monkeypatch, tmp_path
    ):
        from repro.scenarios import expand_seeds, get_scenario, run_sweep

        specs = expand_seeds(get_scenario("lab-junos"), (1, 2))
        target = specs[0].name
        plan = FaultPlan.from_dict(
            {
                "rules": [
                    {
                        "site": "sweep.cell",
                        "match": target,
                        "action": "error",
                        "count": 1,
                    }
                ]
            }
        )
        faults.set_fault_plan(plan)
        report = run_sweep(
            specs,
            backend="serial",
            cache_dir=str(tmp_path / "cache"),
            max_retries=1,
        )
        assert report.failures == []
        assert len(report.results) == 2
        assert report.cell_attempts[
            [d for d in report.cell_attempts][0]
        ] in (1, 2)
        assert sum(report.cell_attempts.values()) == 3  # one retry

    def test_error_fault_exhausting_retries_fails_the_cell(
        self, tmp_path
    ):
        from repro.scenarios import expand_seeds, get_scenario, run_sweep

        specs = expand_seeds(get_scenario("lab-junos"), (1, 2))
        target = specs[1].name
        plan = FaultPlan.from_dict(
            {
                "rules": [
                    {
                        "site": "sweep.cell",
                        "match": target,
                        "action": "error",
                    }
                ]
            }
        )
        faults.set_fault_plan(plan)
        report = run_sweep(
            specs, backend="serial", cache_dir=str(tmp_path / "cache")
        )
        assert [failure.name for failure in report.failures] == [target]
        assert "InjectedFault" in report.failures[0].error
        assert [result.name for result in report.results] == [
            specs[0].name
        ]

    def test_torn_cache_write_is_detected_and_recomputed(
        self, tmp_path
    ):
        from repro.scenarios import (
            expand_seeds,
            get_scenario,
            run_sweep,
            spec_hash,
        )

        cache = str(tmp_path / "cache")
        specs = expand_seeds(get_scenario("lab-junos"), (1,))
        digest = spec_hash(specs[0])
        plan = FaultPlan.from_dict(
            {
                "rules": [
                    {
                        "site": "durable.write",
                        "match": f"*{digest}*",
                        "action": "torn",
                        "keep": 0.5,
                        "count": 1,
                    }
                ]
            }
        )
        faults.set_fault_plan(plan)
        first = run_sweep(specs, backend="serial", cache_dir=cache)
        assert first.failures == []  # the torn write is silent...
        faults.set_fault_plan(None)
        second = run_sweep(specs, backend="serial", cache_dir=cache)
        # ...but the read side detects it: served as a miss, not as a
        # half-parsed result.
        assert second.cache_hits == 0
        assert second.cache_misses == 1
        third = run_sweep(specs, backend="serial", cache_dir=cache)
        assert third.cache_hits == 1  # the clean rewrite sticks

    def test_metrics_count_fired_faults(self):
        from repro.obs import metrics

        with metrics.enabled_scope():
            metrics.reset_metrics()
            plan = FaultPlan.from_dict(
                {"rules": [{"site": "s", "action": "error"}]}
            )
            with pytest.raises(faults.InjectedFault):
                plan.on_point("s", "")
            assert (
                metrics.registry().counter_value("fault.fired.error")
                == 1
            )
