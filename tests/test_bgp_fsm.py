"""Unit tests for the BGP session FSM (RFC 4271 §8)."""

import pytest

from repro.bgp.fsm import (
    FSMError,
    FSMEvent,
    FSMState,
    FSMTimers,
    SessionFSM,
    establish,
)


class TestHappyPath:
    def test_full_establishment_sequence(self):
        fsm = SessionFSM()
        assert fsm.state == FSMState.IDLE
        fsm.handle(FSMEvent.MANUAL_START)
        assert fsm.state == FSMState.CONNECT
        fsm.handle(FSMEvent.TCP_CONNECTION_CONFIRMED)
        assert fsm.state == FSMState.OPEN_SENT
        assert fsm.opens_sent == 1
        fsm.handle(FSMEvent.BGP_OPEN_RECEIVED)
        assert fsm.state == FSMState.OPEN_CONFIRM
        assert fsm.keepalives_sent == 1
        fsm.handle(FSMEvent.KEEPALIVE_RECEIVED)
        assert fsm.is_established

    def test_establish_helper(self):
        fsm = establish(SessionFSM())
        assert fsm.is_established
        assert len(fsm.transitions) == 4

    def test_established_callback_fires_once(self):
        fired = []
        fsm = SessionFSM(on_established=lambda: fired.append(1))
        establish(fsm)
        assert fired == [1]

    def test_tcp_failure_falls_back_to_active(self):
        fsm = SessionFSM()
        fsm.handle(FSMEvent.MANUAL_START)
        fsm.handle(FSMEvent.TCP_CONNECTION_FAILS)
        assert fsm.state == FSMState.ACTIVE
        fsm.handle(FSMEvent.CONNECT_RETRY_EXPIRED)
        assert fsm.state == FSMState.CONNECT

    def test_active_can_establish_directly(self):
        fsm = SessionFSM()
        fsm.handle(FSMEvent.MANUAL_START)
        fsm.handle(FSMEvent.TCP_CONNECTION_FAILS)
        fsm.handle(FSMEvent.TCP_CONNECTION_CONFIRMED)
        assert fsm.state == FSMState.OPEN_SENT


class TestSessionMaintenance:
    def test_keepalives_refresh_established(self):
        fsm = establish(SessionFSM())
        fsm.handle(FSMEvent.KEEPALIVE_RECEIVED)
        fsm.handle(FSMEvent.UPDATE_RECEIVED)
        assert fsm.is_established

    def test_keepalive_timer_sends_keepalive(self):
        fsm = establish(SessionFSM())
        before = fsm.keepalives_sent
        fsm.handle(FSMEvent.KEEPALIVE_TIMER_EXPIRED)
        assert fsm.keepalives_sent == before + 1
        assert fsm.is_established


class TestTeardown:
    def test_hold_timer_expiry_drops_session(self):
        reasons = []
        fsm = establish(SessionFSM(on_session_drop=reasons.append))
        fsm.handle(FSMEvent.HOLD_TIMER_EXPIRED)
        assert fsm.state == FSMState.IDLE
        assert fsm.drops == 1
        assert "hold timer" in reasons[0]

    def test_notification_drops_session(self):
        fsm = establish(SessionFSM())
        fsm.handle(FSMEvent.NOTIFICATION_RECEIVED)
        assert fsm.state == FSMState.IDLE

    def test_tcp_failure_drops_established(self):
        fsm = establish(SessionFSM())
        fsm.handle(FSMEvent.TCP_CONNECTION_FAILS)
        assert fsm.state == FSMState.IDLE

    def test_manual_stop_from_every_live_state(self):
        for target in ("connect", "opensent", "openconfirm", "established"):
            fsm = SessionFSM()
            fsm.handle(FSMEvent.MANUAL_START)
            if target != "connect":
                fsm.handle(FSMEvent.TCP_CONNECTION_CONFIRMED)
            if target in ("openconfirm", "established"):
                fsm.handle(FSMEvent.BGP_OPEN_RECEIVED)
            if target == "established":
                fsm.handle(FSMEvent.KEEPALIVE_RECEIVED)
            fsm.handle(FSMEvent.MANUAL_STOP)
            assert fsm.state == FSMState.IDLE, target

    def test_restart_after_drop(self):
        fsm = establish(SessionFSM())
        fsm.handle(FSMEvent.HOLD_TIMER_EXPIRED)
        establish(fsm)
        assert fsm.is_established


class TestErrorHandling:
    def test_unexpected_event_follows_catch_all_to_idle(self):
        fsm = SessionFSM()
        fsm.handle(FSMEvent.MANUAL_START)  # Connect
        fsm.handle(FSMEvent.UPDATE_RECEIVED)  # illegal in Connect
        assert fsm.state == FSMState.IDLE
        assert fsm.drops == 1

    def test_ignorable_events_are_noops(self):
        fsm = SessionFSM()
        fsm.handle(FSMEvent.HOLD_TIMER_EXPIRED)  # Idle: ignorable
        assert fsm.state == FSMState.IDLE
        assert fsm.drops == 0

    def test_manual_start_in_established_is_noop(self):
        fsm = establish(SessionFSM())
        fsm.handle(FSMEvent.MANUAL_START)
        assert fsm.is_established

    def test_establish_helper_raises_on_failure(self):
        class Broken(SessionFSM):
            def handle(self, event):
                return super().handle(FSMEvent.MANUAL_STOP)

        with pytest.raises(FSMError):
            establish(Broken())


class TestTimers:
    def test_negotiated_hold_time_is_minimum(self):
        timers = FSMTimers(hold_time=90.0).negotiated(30.0)
        assert timers.hold_time == 30.0
        assert timers.keepalive_interval == pytest.approx(10.0)

    def test_negotiated_zero_disables_keepalives(self):
        timers = FSMTimers(hold_time=90.0).negotiated(0.0)
        assert timers.hold_time == 0.0
        assert timers.keepalive_interval == 0.0

    def test_transition_log_renders(self):
        fsm = establish(SessionFSM())
        rendered = str(fsm.transitions[0])
        assert "Idle" in rendered and "Connect" in rendered
