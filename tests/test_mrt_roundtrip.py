"""MRT round-trip equivalence: live stream vs re-read archive.

A live run's observation stream and the stream re-read from its
``dump_mrt`` bytes must classify identically — for extended
(microsecond) timestamps the streams are bit-identical; for
whole-second legacy archives the timestamps coarsen but the per-stream
event order (and therefore every classification result) survives.
The spilled archive of an ``mrt-spill`` collector is pinned
byte-for-byte against the ``full`` policy's export, and the
``mrt-replay`` scenario family is proven metric-identical to the live
run it replays.
"""

import dataclasses
import hashlib
import io
import json

import pytest

from repro.analysis import observations_from_mrt
from repro.analysis.classify import classify_observations
from repro.analysis.observations import observations_from_collector
from repro.mrt.reader import MRTReader
from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.engine import internet_config_from_spec
from repro.simulator.session import BGPSession
from repro.workloads import InternetModel


def _collector_output_hash(dump: bytes) -> str:
    return hashlib.sha256(dump).hexdigest()[:16]


@pytest.fixture(scope="module")
def solo_day():
    """A single-collector tiny day (one archive file, full policy)."""
    base = get_scenario("topology-tiny")
    spec = dataclasses.replace(
        base,
        internet=dataclasses.replace(
            base.internet, collector_names=("rrc00",)
        ),
    )
    config = internet_config_from_spec(spec)
    BGPSession._counter = 0
    return spec, InternetModel(config).run()


class TestRoundTripClassification:
    def test_extended_timestamps_round_trip_bit_identically(self, solo_day):
        _, day = solo_day
        collector = day.collector("rrc00")
        live = list(observations_from_collector(collector))
        dump = collector.dump_mrt(extended_timestamps=True)
        replayed = list(
            observations_from_mrt(
                MRTReader(io.BytesIO(dump)), collector.name
            )
        )
        assert len(replayed) == len(live)
        for mine, theirs in zip(live, replayed):
            assert mine.session == theirs.session
            assert mine.prefix == theirs.prefix
            assert mine.kind == theirs.kind
            assert mine.as_path == theirs.as_path
            assert mine.communities == theirs.communities
            assert mine.med == theirs.med
            # Microsecond resolution: equal to within MRT precision.
            assert abs(mine.timestamp - theirs.timestamp) < 1e-5
        assert (
            classify_observations(replayed).counts
            == classify_observations(live).counts
        )

    def test_whole_second_timestamps_classify_identically(self, solo_day):
        _, day = solo_day
        collector = day.collector("rrc00")
        live = list(observations_from_collector(collector))
        dump = collector.dump_mrt(extended_timestamps=False)
        replayed = list(
            observations_from_mrt(
                MRTReader(io.BytesIO(dump)), collector.name
            )
        )
        assert len(replayed) == len(live)
        for mine, theirs in zip(live, replayed):
            assert theirs.timestamp == float(int(mine.timestamp))
            assert mine.stream_key() == theirs.stream_key()
        assert (
            classify_observations(replayed).counts
            == classify_observations(live).counts
        )

    def test_dump_hash_is_reproducible(self, solo_day):
        spec, day = solo_day
        collector = day.collector("rrc00")
        first = _collector_output_hash(collector.dump_mrt())
        # A fresh, identically-seeded simulation pins the same bytes.
        BGPSession._counter = 0
        again = InternetModel(internet_config_from_spec(spec)).run()
        assert (
            _collector_output_hash(again.collector("rrc00").dump_mrt())
            == first
        )


class TestSpillRoundTrip:
    def test_spill_bytes_equal_full_policy_dump(self, solo_day):
        spec, day = solo_day
        full_dump = day.collector("rrc00").dump_mrt()
        spill_spec = dataclasses.replace(
            spec,
            internet=dataclasses.replace(
                spec.internet, archive_policy="mrt-spill"
            ),
        )
        config = internet_config_from_spec(spill_spec)
        BGPSession._counter = 0
        spill_day = InternetModel(config).run()
        collector = spill_day.collector("rrc00")
        assert len(collector.records) == 0
        assert collector.message_count() > 0
        collector.close()
        try:
            with open(collector.spill_path, "rb") as handle:
                spilled = handle.read()
            assert _collector_output_hash(
                spilled
            ) == _collector_output_hash(full_dump)
            assert spilled == full_dump
            # dump_mrt under spill re-reads the file and round-trips.
            assert collector.dump_mrt() == full_dump
        finally:
            import os

            os.unlink(collector.spill_path)

    def test_mrt_replay_scenario_matches_live_run(self, solo_day, tmp_path):
        spec, day = solo_day
        collector = day.collector("rrc00")
        archive = tmp_path / "day.mrt"
        archive.write_bytes(collector.dump_mrt())
        BGPSession._counter = 0
        live = run_scenario(spec)
        replay_spec = get_scenario("mrt-replay")
        replay_spec = dataclasses.replace(
            replay_spec,
            mrt=dataclasses.replace(
                replay_spec.mrt, path=str(archive), collector="rrc00"
            ),
        )
        replay = run_scenario(replay_spec)
        for key in (
            "update_counts",
            "duplicates",
            "community_prevalence",
            "table1",
        ):
            assert json.dumps(
                live.metrics[key], sort_keys=True
            ) == json.dumps(replay.metrics[key], sort_keys=True)
        # Beacons are a live-run concept; the full-feed type shares
        # still must agree exactly.
        assert (
            live.metrics["table2"]["full_shares"]
            == replay.metrics["table2"]["full_shares"]
        )

    def test_mrt_replay_strict_rejects_damage(self, solo_day, tmp_path):
        from repro.mrt.records import MRTError

        _, day = solo_day
        dump = day.collector("rrc00").dump_mrt()
        archive = tmp_path / "damaged.mrt"
        archive.write_bytes(dump[: len(dump) - 7])
        strict = get_scenario("mrt-replay-strict")
        strict = dataclasses.replace(
            strict, mrt=dataclasses.replace(strict.mrt, path=str(archive))
        )
        with pytest.raises(MRTError):
            run_scenario(strict)
        tolerant = get_scenario("mrt-replay")
        tolerant = dataclasses.replace(
            tolerant,
            mrt=dataclasses.replace(tolerant.mrt, path=str(archive)),
        )
        result = run_scenario(tolerant)
        assert result.metrics["update_counts"]["observations"] > 0


class TestMrtScenarioErrors:
    def test_missing_path_is_a_validation_error(self):
        from repro.scenarios import ScenarioValidationError

        with pytest.raises(ScenarioValidationError) as err:
            run_scenario(get_scenario("mrt-replay"))
        assert "mrt.path" in str(err.value)

    def test_unreadable_path_is_a_validation_error(self):
        from repro.scenarios import ScenarioValidationError

        spec = get_scenario("mrt-replay")
        spec = dataclasses.replace(
            spec,
            mrt=dataclasses.replace(spec.mrt, path="/nonexistent/x.mrt"),
        )
        with pytest.raises(ScenarioValidationError) as err:
            run_scenario(spec)
        assert "cannot open" in str(err.value)


class TestCliMrtReplay:
    def test_scenario_run_with_input(self, solo_day, tmp_path, capsys):
        from repro.cli import main

        _, day = solo_day
        archive = tmp_path / "cli.mrt"
        archive.write_bytes(day.collector("rrc00").dump_mrt())
        assert (
            main(
                [
                    "scenario",
                    "run",
                    "mrt-replay",
                    "--input",
                    str(archive),
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["mrt"]["path"] == str(archive)
        assert payload["metrics"]["update_counts"]["observations"] > 0

    def test_input_rejected_for_non_mrt_scenarios(self, capsys):
        from repro.cli import main

        assert (
            main(
                ["scenario", "run", "topology-tiny", "--input", "x.mrt"]
            )
            == 2
        )
        assert "--input" in capsys.readouterr().err

    def test_list_filters_mrt_kind(self, capsys):
        from repro.cli import main

        assert main(["scenario", "list", "--kind", "mrt"]) == 0
        out = capsys.readouterr().out
        assert "mrt-replay" in out
        assert "topology-tiny" not in out
