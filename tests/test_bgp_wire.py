"""Unit + property tests for the BGP wire codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp import (
    ASPath,
    CommunitySet,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    Origin,
    PathAttributes,
    UpdateMessage,
    decode_message,
    encode_message,
)
from repro.bgp.community import Community, LargeCommunity
from repro.bgp.constants import HEADER_LENGTH, MARKER
from repro.bgp.errors import WireFormatError
from repro.bgp.wire import iter_messages
from repro.netbase import Prefix


def attrs(**overrides):
    defaults = dict(
        as_path=ASPath.from_string("20205 3356 174 12654"),
        next_hop="10.0.0.1",
    )
    defaults.update(overrides)
    return PathAttributes(**defaults)


class TestRoundtrips:
    def test_announcement(self):
        update = UpdateMessage.announce(Prefix("84.205.64.0/24"), attrs())
        assert decode_message(encode_message(update)) == update

    def test_withdrawal(self):
        update = UpdateMessage.withdraw(
            [Prefix("84.205.64.0/24"), Prefix("10.0.0.0/8")]
        )
        assert decode_message(encode_message(update)) == update

    def test_ipv6_announcement_uses_mp_reach(self):
        update = UpdateMessage.announce(
            Prefix("2001:db8::/32"), attrs(next_hop="2001:db8::1")
        )
        assert decode_message(encode_message(update)) == update

    def test_ipv6_withdrawal_uses_mp_unreach(self):
        update = UpdateMessage.withdraw(Prefix("2001:db8::/32"))
        assert decode_message(encode_message(update)) == update

    def test_mixed_families(self):
        update = UpdateMessage(
            announced=[Prefix("10.0.0.0/8")],
            withdrawn=[Prefix("2001:db8::/32"), Prefix("11.0.0.0/8")],
            attributes=attrs(),
        )
        decoded = decode_message(encode_message(update))
        assert set(decoded.announced) == set(update.announced)
        assert set(decoded.withdrawn) == set(update.withdrawn)

    def test_full_attribute_set(self):
        rich = attrs(
            origin=Origin.EGP,
            med=77,
            local_pref=150,
            communities=CommunitySet.parse("3356:300 65535:666 1:2:3"),
            atomic_aggregate=True,
            aggregator=(__import__("repro.netbase", fromlist=["ASN"]).ASN(64500), "192.0.2.9"),
            originator_id="192.0.2.7",
            cluster_list=("192.0.2.5", "192.0.2.6"),
        )
        update = UpdateMessage.announce(Prefix("10.0.0.0/8"), rich)
        assert decode_message(encode_message(update)) == update

    def test_unknown_transitive_attribute_roundtrip(self):
        exotic = attrs(extra=((99, b"\x01\x02\x03"),))
        update = UpdateMessage.announce(Prefix("10.0.0.0/8"), exotic)
        decoded = decode_message(encode_message(update))
        assert decoded.attributes.extra == ((99, b"\x01\x02\x03"),)

    def test_open(self):
        message = OpenMessage(4259840100, "203.0.113.1", 90)
        decoded = decode_message(encode_message(message))
        assert decoded == message

    def test_open_16bit_asn_without_capability(self):
        message = OpenMessage(65000, "203.0.113.1", four_octet_asn=False)
        decoded = decode_message(encode_message(message))
        assert int(decoded.asn) == 65000

    def test_keepalive(self):
        assert decode_message(encode_message(KeepaliveMessage())) == KeepaliveMessage()

    def test_notification(self):
        message = NotificationMessage(6, 4, b"shutdown")
        assert decode_message(encode_message(message)) == message

    def test_as_set_roundtrip(self):
        update = UpdateMessage.announce(
            Prefix("10.0.0.0/8"),
            attrs(as_path=ASPath.from_string("100 {200,300}")),
        )
        assert decode_message(encode_message(update)) == update


class TestErrors:
    def test_rejects_bad_marker(self):
        wire = bytearray(encode_message(KeepaliveMessage()))
        wire[0] = 0
        with pytest.raises(WireFormatError):
            decode_message(bytes(wire))

    def test_rejects_truncated_header(self):
        with pytest.raises(WireFormatError):
            decode_message(MARKER[:10])

    def test_rejects_truncated_body(self):
        wire = encode_message(
            UpdateMessage.withdraw(Prefix("10.0.0.0/8"))
        )
        with pytest.raises(WireFormatError):
            decode_message(wire[:-1])

    def test_rejects_trailing_garbage(self):
        wire = encode_message(KeepaliveMessage()) + b"\x00"
        with pytest.raises(WireFormatError):
            decode_message(wire)

    def test_rejects_unknown_type(self):
        wire = bytearray(encode_message(KeepaliveMessage()))
        wire[18] = 9
        with pytest.raises(WireFormatError):
            decode_message(bytes(wire))

    def test_rejects_keepalive_with_body(self):
        import struct

        body = b"x"
        wire = MARKER + struct.pack("!HB", HEADER_LENGTH + 1, 4) + body
        with pytest.raises(WireFormatError):
            decode_message(wire)


class TestStreaming:
    def test_iter_messages(self):
        first = encode_message(KeepaliveMessage())
        second = encode_message(
            UpdateMessage.withdraw(Prefix("10.0.0.0/8"))
        )
        messages = list(iter_messages(first + second))
        assert len(messages) == 2
        assert isinstance(messages[0], KeepaliveMessage)
        assert isinstance(messages[1], UpdateMessage)


# ----------------------------------------------------------------------
# property-based roundtrips
# ----------------------------------------------------------------------
@st.composite
def _prefix_v4(draw):
    length = draw(st.integers(min_value=8, max_value=24))
    network = draw(st.integers(min_value=0, max_value=2**length - 1))
    return Prefix.from_int(network << (32 - length), length, 4)


prefixes_v4 = _prefix_v4()

communities = st.builds(
    Community.of,
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=0, max_value=0xFFFF),
)

large_communities = st.builds(
    LargeCommunity,
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
)

as_paths = st.lists(
    st.integers(min_value=1, max_value=2**32 - 2), min_size=1, max_size=8
).map(ASPath.from_asns)


@st.composite
def update_messages(draw):
    announced = draw(st.lists(prefixes_v4, min_size=0, max_size=4, unique=True))
    withdrawn = draw(st.lists(prefixes_v4, min_size=0, max_size=4, unique=True))
    if not announced and not withdrawn:
        announced = [draw(prefixes_v4)]
    attributes = None
    if announced:
        attributes = PathAttributes(
            as_path=draw(as_paths),
            next_hop="10.0.0.1",
            med=draw(st.one_of(st.none(), st.integers(0, 2**32 - 1))),
            communities=CommunitySet(
                draw(st.lists(communities, max_size=5)),
                draw(st.lists(large_communities, max_size=3)),
            ),
        )
    return UpdateMessage(
        announced=announced, withdrawn=withdrawn, attributes=attributes
    )


class TestProperties:
    @given(update_messages())
    @settings(max_examples=200, deadline=None)
    def test_update_roundtrip(self, update):
        assert decode_message(encode_message(update)) == update

    @given(
        st.integers(min_value=1, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from([0, 3, 90, 65535]),
    )
    @settings(max_examples=100, deadline=None)
    def test_open_roundtrip(self, asn, router_id_int, hold_time):
        import ipaddress

        message = OpenMessage(
            asn, str(ipaddress.IPv4Address(router_id_int)), hold_time
        )
        assert decode_message(encode_message(message)) == message

    @given(st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_decoder_never_crashes_on_noise(self, noise):
        try:
            decode_message(MARKER + noise)
        except WireFormatError:
            pass  # rejecting is fine; crashing is not
