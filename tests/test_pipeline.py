"""The streaming observation pipeline: sinks, sources, equivalence.

The refactor's contract is strict: streaming must be a pure
re-plumbing.  Batch analysis of a finished archive, live-sink
analysis during the run, and replay of a spilled MRT archive must all
produce identical metrics, and the bounded archive policies must
bound memory without changing anything the analysis layer sees.
"""

import json

import pytest

from repro.analysis.cleaning import CleaningPipeline, CleaningReport
from repro.analysis.classify import UpdateClassifier
from repro.analysis.observations import (
    StreamGrouper,
    group_into_streams,
    observations_from_collector,
)
from repro.pipeline import (
    CallbackSink,
    CountingSink,
    ListArchive,
    MrtSpillArchive,
    ObservationStream,
    PipelineStop,
    RingArchive,
    SequenceView,
    Tee,
    make_archive,
    parse_archive_policy,
    replay_mrt,
)
from repro.scenarios import get_scenario, make_collectors, run_scenario
from repro.scenarios.collectors import ScenarioContext
from repro.scenarios.engine import internet_config_from_spec
from repro.simulator.session import BGPSession
from repro.workloads import InternetModel


# ----------------------------------------------------------------------
# plumbing units
# ----------------------------------------------------------------------
class TestParseArchivePolicy:
    def test_full(self):
        assert parse_archive_policy("full") == ("full", None)

    def test_ring(self):
        assert parse_archive_policy("ring:128") == ("ring", 128)

    def test_mrt_spill(self):
        assert parse_archive_policy("mrt-spill") == ("mrt-spill", None)

    def test_case_and_whitespace(self):
        assert parse_archive_policy(" RING:5 ") == ("ring", 5)

    @pytest.mark.parametrize(
        "bad", ["", "ringo", "ring:", "ring:0", "ring:-3", "ring:x", None]
    )
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_archive_policy(bad)


class TestSequenceView:
    def test_no_copy_semantics(self):
        backing = [1, 2, 3]
        view = SequenceView(backing)
        backing.append(4)
        assert list(view) == [1, 2, 3, 4]
        assert view[-1] == 4
        assert len(view) == 4

    def test_slicing_returns_list(self):
        view = SequenceView([1, 2, 3, 4])
        assert view[1:3] == [2, 3]

    def test_equality_with_lists(self):
        assert SequenceView([1, 2]) == [1, 2]
        assert SequenceView([1, 2]) != [2, 1]


class TestTeeAndCounting:
    def test_fan_out_order_and_close(self):
        seen = []
        tee = Tee()
        tee.attach(CallbackSink(lambda item: seen.append(("a", item))))
        counter = tee.attach(CountingSink())
        tee.push(1)
        tee.push(2)
        tee.close()
        assert seen == [("a", 1), ("a", 2)]
        assert counter.count == 2

    def test_detach(self):
        counter = CountingSink()
        tee = Tee([counter])
        tee.push(1)
        tee.detach(counter)
        tee.push(2)
        assert counter.count == 1


class TestArchives:
    def test_ring_bounds_memory(self):
        ring = RingArchive(3)
        for item in range(10):
            ring.push(item)
        assert list(ring.retained) == [7, 8, 9]
        assert ring.total_archived == 10
        assert ring.dropped == 7
        assert ring.clear() == 10
        assert ring.total_archived == 0

    def test_list_archive_keeps_everything(self):
        archive = ListArchive()
        for item in range(5):
            archive.push(item)
        assert list(archive.retained) == list(range(5))
        assert archive.dropped == 0

    def test_make_archive_dispatch(self):
        assert isinstance(make_archive("full"), ListArchive)
        assert isinstance(make_archive("ring:4"), RingArchive)
        spill = make_archive("mrt-spill")
        assert isinstance(spill, MrtSpillArchive)
        spill.unlink()


# ----------------------------------------------------------------------
# incremental grouper / cleaner equivalence
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_day():
    """One simulated topology-tiny day (full archives)."""
    config = internet_config_from_spec(get_scenario("topology-tiny"))
    BGPSession._counter = 0
    return InternetModel(config).run()


@pytest.fixture(scope="module")
def tiny_observations(tiny_day):
    observations = []
    for collector in tiny_day.collectors():
        observations.extend(observations_from_collector(collector))
    observations.sort(key=lambda obs: obs.timestamp)
    return observations


class TestStreamGrouper:
    def test_matches_batch_grouping(self, tiny_observations):
        grouper = StreamGrouper()
        for observation in tiny_observations:
            grouper.push(observation)
        assert grouper.streams == group_into_streams(tiny_observations)
        assert grouper.observations == len(tiny_observations)

    def test_push_returns_stream_key(self, tiny_observations):
        grouper = StreamGrouper()
        first = tiny_observations[0]
        key = grouper.push(first)
        assert key == first.stream_key()
        assert grouper.stream(key) == [first]


class TestCleaningStreaming:
    def test_stream_matches_run_bit_identically(self, tiny_observations):
        pipeline = CleaningPipeline()
        batch, batch_report = pipeline.run(tiny_observations)
        report = CleaningReport()
        streamed = list(pipeline.stream(tiny_observations, report))
        assert streamed == batch
        assert report == batch_report

    def test_sink_form_matches_run(self, tiny_observations):
        pipeline = CleaningPipeline(max_prefix_length_v4=24)
        batch, batch_report = pipeline.run(tiny_observations)
        out = []
        sink = pipeline.sink(CallbackSink(out.append))
        for observation in tiny_observations:
            sink.push(observation)
        assert out == batch
        assert sink.report == batch_report

    def test_whole_second_disambiguation_streams(self, tiny_observations):
        # Truncate to whole seconds to force the §4 disambiguation.
        truncated = [
            obs.shifted(float(int(obs.timestamp)))
            for obs in tiny_observations
        ]
        pipeline = CleaningPipeline()
        batch, batch_report = pipeline.run(truncated)
        streamed = list(pipeline.stream(truncated))
        assert streamed == batch
        assert batch_report.disambiguated_timestamps > 0


class TestClassifierSinkProtocol:
    def test_push_is_observe(self, tiny_observations):
        via_observe = UpdateClassifier()
        via_push = UpdateClassifier()
        for observation in tiny_observations:
            via_observe.observe(observation)
            via_push.push(observation)
        assert via_push.counts.counts == via_observe.counts.counts
        via_push.close()  # no-op, must exist


# ----------------------------------------------------------------------
# collector as a pipeline source
# ----------------------------------------------------------------------
class TestCollectorSinks:
    def test_live_sink_sees_archive_order(self):
        config = internet_config_from_spec(get_scenario("topology-tiny"))
        BGPSession._counter = 0
        model = InternetModel(config)
        live = []
        model.attach_collector_sink(CallbackSink(live.append))
        day = model.run()
        archived = []
        for collector in day.collectors():
            archived.extend(collector.records)
        # Same multiset and same per-collector order; the live feed
        # interleaves collectors by simulation time.
        assert len(live) == len(archived)
        for name in config.collector_names:
            live_records = [r for r in live if r.collector == name]
            assert live_records == [
                r for r in archived if r.collector == name
            ]

    def test_attach_after_build_is_rejected(self):
        config = internet_config_from_spec(get_scenario("topology-tiny"))
        model = InternetModel(config)
        model.build()
        with pytest.raises(RuntimeError):
            model.attach_collector_sink(CountingSink())

    def test_ring_policy_bounds_collector_memory(self):
        config = internet_config_from_spec(get_scenario("topology-tiny"))
        config.archive_policy = "ring:64"
        BGPSession._counter = 0
        day = InternetModel(config).run()
        for collector in day.collectors():
            assert len(collector.records) <= 64
            assert collector.message_count() > 64
            assert collector.dropped_records == (
                collector.message_count() - len(collector.records)
            )

    def test_deterministic_local_address_outside_router_id_range(self):
        config = internet_config_from_spec(get_scenario("topology-tiny"))
        day = InternetModel(config).run()
        for collector in day.collectors():
            last_octet = int(collector.local_address.rsplit(".", 1)[1])
            assert 201 <= last_octet <= 254
            router_octet = int(collector.router_id.rsplit(".", 1)[1])
            assert 1 <= router_octet <= 200
            assert collector.local_address != collector.router_id
        # Deterministic across instantiations.
        names = {c.name: c.local_address for c in day.collectors()}
        day2 = InternetModel(config).run()
        assert names == {c.name: c.local_address for c in day2.collectors()}

    def test_records_view_is_copy_free(self, tiny_day):
        collector = tiny_day.collectors()[0]
        view = collector.records
        assert isinstance(view, SequenceView)
        assert view[-1] is collector.records[-1]
        assert isinstance(collector.sessions, SequenceView)


# ----------------------------------------------------------------------
# engine equivalence: batch vs live sinks
# ----------------------------------------------------------------------
def _batch_metrics(spec):
    """The pre-refactor engine path: run, then iterate archives."""
    proxy = make_collectors(spec.collectors)
    config = internet_config_from_spec(spec)
    day = InternetModel(config).run()
    observations = []
    for collector in day.collectors():
        observations.extend(observations_from_collector(collector))
    observations.sort(key=lambda obs: obs.timestamp)
    proxy.start(
        ScenarioContext(
            spec, beacon_prefixes=set(day.beacon_prefixes), day=day
        )
    )
    for observation in observations:
        proxy.observe(observation)
    return proxy.finish()


class TestLiveStreamingEquivalence:
    @pytest.mark.parametrize(
        "name", ["topology-tiny", "damping-replay"]
    )
    def test_live_metrics_match_batch(self, name):
        spec = get_scenario(name)
        if name == "damping-replay":
            # Shrink to test size; the equivalence claim is the point.
            import dataclasses

            spec = dataclasses.replace(
                spec,
                internet=dataclasses.replace(
                    spec.internet,
                    tier1_count=2,
                    transit_count=3,
                    stub_count=6,
                ),
            )
        BGPSession._counter = 0
        live = run_scenario(spec).metrics
        BGPSession._counter = 0
        batch = _batch_metrics(spec)
        assert json.dumps(live, sort_keys=True) == json.dumps(
            batch, sort_keys=True
        )

    def test_bounded_policies_do_not_change_metrics(self):
        import dataclasses
        import os

        base = get_scenario("topology-tiny")
        results = {}
        for policy in ("full", "ring:32", "mrt-spill"):
            spec = dataclasses.replace(
                base,
                internet=dataclasses.replace(
                    base.internet, archive_policy=policy
                ),
            )
            BGPSession._counter = 0
            result = run_scenario(spec)
            results[policy] = result.metrics
            for path in result.spill_paths.values():
                os.unlink(path)
        assert results["full"] == results["ring:32"]
        assert results["full"] == results["mrt-spill"]


class TestEngineHooks:
    def test_early_stop_aborts_mid_run(self):
        spec = get_scenario("topology-tiny")
        BGPSession._counter = 0
        full = run_scenario(spec)
        total = full.metrics["update_counts"]["observations"]
        assert total > 50
        BGPSession._counter = 0
        stopped = run_scenario(
            spec, early_stop=lambda count, proxy: count >= 50
        )
        assert stopped.stopped_early
        assert stopped.metrics["update_counts"]["observations"] == 50
        assert not full.stopped_early

    def test_snapshots_accumulate_monotonically(self):
        spec = get_scenario("topology-tiny")
        BGPSession._counter = 0
        result = run_scenario(spec, snapshot_every=100)
        assert result.snapshots
        counts = [snap["observations"] for snap in result.snapshots]
        assert counts == sorted(counts)
        observed = [
            snap["metrics"]["update_counts"]["observations"]
            for snap in result.snapshots
        ]
        assert observed == counts
        # The final metrics continue past the last snapshot.
        assert (
            result.metrics["update_counts"]["observations"] >= counts[-1]
        )

    def test_default_run_has_no_snapshots(self):
        BGPSession._counter = 0
        result = run_scenario(get_scenario("topology-tiny"))
        assert result.snapshots == []
        assert result.stopped_early is False
        assert result.spill_paths == {}

    def test_spill_run_surfaces_flushed_archives(self):
        import os

        from repro.mrt.reader import MRTReader

        BGPSession._counter = 0
        result = run_scenario(get_scenario("internet-small-spill"))
        assert set(result.spill_paths) == {"rrc00"}
        path = result.spill_paths["rrc00"]
        try:
            # The engine closed the collector, so every archived
            # message — buffered tail included — must be on disk:
            # replaying the file must reproduce the live metrics
            # exactly (a truncated tail would change the counts).
            with open(path, "rb") as handle:
                assert list(MRTReader(handle))
            import dataclasses

            replay_spec = get_scenario("mrt-replay")
            replay_spec = dataclasses.replace(
                replay_spec,
                mrt=dataclasses.replace(
                    replay_spec.mrt, path=path, collector="rrc00"
                ),
            )
            replay = run_scenario(replay_spec)
            assert (
                replay.metrics["update_counts"]
                == result.metrics["update_counts"]
            )
        finally:
            os.unlink(path)


# ----------------------------------------------------------------------
# spec plumbing for the new knobs
# ----------------------------------------------------------------------
class TestSpecKnobs:
    def test_archive_policy_validation(self):
        import dataclasses

        from repro.scenarios import ScenarioValidationError
        from repro.scenarios.spec import InternetSpec, ScenarioSpec

        spec = ScenarioSpec(
            name="x",
            kind="internet",
            internet=InternetSpec(archive_policy="ring:0"),
        )
        with pytest.raises(ScenarioValidationError) as err:
            spec.validate()
        assert "archive_policy" in str(err.value)
        good = dataclasses.replace(
            spec, internet=InternetSpec(archive_policy="ring:16")
        )
        good.validate()

    def test_collector_names_threads_through(self):
        import dataclasses

        base = get_scenario("topology-tiny")
        spec = dataclasses.replace(
            base,
            internet=dataclasses.replace(
                base.internet, collector_names=("solo",)
            ),
        )
        config = internet_config_from_spec(spec)
        assert config.collector_names == ("solo",)

    def test_archive_policy_threads_through(self):
        import dataclasses

        base = get_scenario("topology-tiny")
        spec = dataclasses.replace(
            base,
            internet=dataclasses.replace(
                base.internet, archive_policy="mrt-spill"
            ),
        )
        config = internet_config_from_spec(spec)
        assert config.archive_policy == "mrt-spill"

    def test_unset_knobs_do_not_leak_into_the_canonical_form(self):
        # A spec that does not use a knob must hash identically no
        # matter how many optional fields the section type grows:
        # sweep-cache keys survive spec-type evolution.
        from repro.scenarios import spec_to_dict

        data = spec_to_dict(get_scenario("topology-tiny"))
        assert "mrt" not in data
        assert "archive_policy" not in data["internet"]
        assert "collector_names" not in data["internet"]
        assert all(
            value is not None for value in data["internet"].values()
        )
        spill = spec_to_dict(get_scenario("internet-small-spill"))
        assert spill["internet"]["archive_policy"] == "mrt-spill"
        assert "mrt" in spec_to_dict(get_scenario("mrt-replay"))

    def test_spec_json_round_trip_with_new_fields(self):
        import dataclasses

        from repro.scenarios import spec_from_json, spec_hash, spec_to_json

        base = get_scenario("internet-small-spill")
        text = spec_to_json(base)
        rebuilt = spec_from_json(text)
        assert rebuilt == base
        assert spec_hash(rebuilt) == spec_hash(base)
        mrt = get_scenario("mrt-replay")
        mrt = dataclasses.replace(
            mrt, mrt=dataclasses.replace(mrt.mrt, path="/tmp/x.mrt")
        )
        assert spec_from_json(spec_to_json(mrt)) == mrt


class TestPipelineStopPropagation:
    def test_sink_raising_stop_reaches_caller(self, tiny_day, tmp_path):
        collector = tiny_day.collectors()[0]
        path = tmp_path / "dump.mrt"
        path.write_bytes(collector.dump_mrt())

        class Bomb:
            count = 0

            def push(self, observation):
                self.count += 1
                if self.count >= 10:
                    raise PipelineStop()

            def close(self):
                pass

        with pytest.raises(PipelineStop):
            replay_mrt(str(path), Bomb(), collector=collector.name)
