"""Unit tests for beacon schedules and origin agents."""

import pytest

from repro.beacons import (
    BeaconOrigin,
    BeaconSchedule,
    PhaseKind,
    ripe_beacon_prefixes,
)
from repro.netbase import Prefix, parse_utc
from repro.simulator import Network

DAY = parse_utc("2020-03-15")


class TestSchedule:
    def setup_method(self):
        self.schedule = BeaconSchedule()

    def test_phases_per_day(self):
        phases = self.schedule.phases_for_day(DAY)
        assert len(phases) == 12  # 6 announce + 6 withdraw
        kinds = [phase.kind for phase in phases]
        assert kinds[0] == PhaseKind.ANNOUNCE
        assert kinds[1] == PhaseKind.WITHDRAW

    def test_phase_times_match_ripe(self):
        phases = self.schedule.phases_for_day(DAY)
        announces = [
            p.start - DAY for p in phases if p.kind == PhaseKind.ANNOUNCE
        ]
        withdraws = [
            p.start - DAY for p in phases if p.kind == PhaseKind.WITHDRAW
        ]
        assert announces == [h * 3600 for h in (0, 4, 8, 12, 16, 20)]
        assert withdraws == [h * 3600 for h in (2, 6, 10, 14, 18, 22)]

    def test_classify_announce_window(self):
        assert self.schedule.classify(DAY) == PhaseKind.ANNOUNCE
        assert (
            self.schedule.classify(DAY + 14 * 60) == PhaseKind.ANNOUNCE
        )

    def test_classify_withdraw_window(self):
        assert (
            self.schedule.classify(DAY + 2 * 3600) == PhaseKind.WITHDRAW
        )
        assert (
            self.schedule.classify(DAY + 2 * 3600 + 899)
            == PhaseKind.WITHDRAW
        )

    def test_classify_outside(self):
        assert self.schedule.classify(DAY + 3600) == PhaseKind.OUTSIDE
        assert (
            self.schedule.classify(DAY + 2 * 3600 + 901) == PhaseKind.OUTSIDE
        )

    def test_classification_is_periodic(self):
        for cycle in range(6):
            base = DAY + cycle * 4 * 3600
            assert self.schedule.classify(base + 60) == PhaseKind.ANNOUNCE
            assert (
                self.schedule.classify(base + 2 * 3600 + 60)
                == PhaseKind.WITHDRAW
            )

    def test_phase_index(self):
        assert self.schedule.phase_index(DAY + 1) == 0
        assert self.schedule.phase_index(DAY + 5 * 3600) == 1
        assert self.schedule.phase_index(DAY + 23 * 3600) == 5

    def test_phase_window(self):
        phase = self.schedule.phases_for_day(DAY)[0]
        start, end = phase.window()
        assert end - start == 15 * 60

    def test_validation(self):
        with pytest.raises(ValueError):
            BeaconSchedule(announce_start=5 * 3600, period=4 * 3600)
        with pytest.raises(ValueError):
            BeaconSchedule(announce_start=0, withdraw_start=0)


class TestRipePrefixes:
    def test_default_count(self):
        prefixes = ripe_beacon_prefixes()
        assert len(prefixes) == 15
        assert prefixes[0] == Prefix("84.205.64.0/24")
        assert len(set(prefixes)) == 15

    def test_range_check(self):
        with pytest.raises(ValueError):
            ripe_beacon_prefixes(0)
        with pytest.raises(ValueError):
            ripe_beacon_prefixes(33)


class TestBeaconOrigin:
    def test_day_cycle_against_simulator(self):
        network = Network(start_time=DAY - 3600)
        origin = network.add_router("origin", 65001)
        middle = network.add_router("middle", 65002)
        collector = network.add_collector("rrc", 12456)
        network.connect(origin, middle)
        network.connect(middle, collector)
        network.converge()

        beacon = BeaconOrigin(origin, Prefix("84.205.64.0/24"))
        scheduled = beacon.schedule_day(DAY)
        assert scheduled == 12
        network.run(until=DAY + 86_400)
        network.converge()

        announcements = sum(
            1 for r in collector.updates() if r.message.is_announcement
        )
        withdrawals = sum(
            1 for r in collector.updates() if r.message.is_withdrawal
        )
        assert announcements == 6
        assert withdrawals == 6

    def test_skips_past_phases(self):
        network = Network(start_time=DAY + 3 * 3600)
        origin = network.add_router("origin", 65001)
        beacon = BeaconOrigin(origin, Prefix("84.205.64.0/24"))
        scheduled = beacon.schedule_day(DAY)
        # 00:00 and 02:00 are already in the past.
        assert scheduled == 10

    def test_cancel(self):
        network = Network(start_time=DAY)
        origin = network.add_router("origin", 65001)
        beacon = BeaconOrigin(origin, Prefix("84.205.64.0/24"))
        beacon.schedule_day(DAY)
        beacon.cancel()
        network.converge()
        assert origin.originated_prefixes() == []
