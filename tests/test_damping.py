"""Unit tests for RFC 2439 route-flap damping."""

import pytest

from repro.netbase import Prefix
from repro.simulator.damping import DampingConfig, RouteDamper

PREFIX = Prefix("203.0.113.0/24")
PEER = "peer-1"


class TestConfig:
    def test_default_parameters_are_sane(self):
        config = DampingConfig()
        assert config.reuse_threshold < config.suppress_threshold
        assert config.max_penalty > config.suppress_threshold

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            DampingConfig(suppress_threshold=500, reuse_threshold=600)

    def test_rejects_bad_half_life(self):
        with pytest.raises(ValueError):
            DampingConfig(half_life=0)

    def test_max_penalty_respects_max_suppress_time(self):
        config = DampingConfig(half_life=900.0, max_suppress_time=3600.0)
        # Decaying from the cap for max_suppress_time lands exactly on
        # the reuse threshold.
        decayed = config.max_penalty * 0.5 ** (3600.0 / 900.0)
        assert decayed == pytest.approx(config.reuse_threshold)


class TestPenaltyModel:
    def setup_method(self):
        self.damper = RouteDamper()

    def test_single_flap_does_not_suppress(self):
        suppressed = self.damper.penalize(
            PEER, PREFIX, 0.0, is_withdrawal=True
        )
        assert not suppressed
        assert not self.damper.is_suppressed(PEER, PREFIX, 1.0)

    def test_rapid_flaps_suppress(self):
        for index in range(3):
            self.damper.penalize(
                PEER, PREFIX, float(index), is_withdrawal=True
            )
        assert self.damper.is_suppressed(PEER, PREFIX, 3.0)
        assert self.damper.suppressions == 1

    def test_attribute_changes_penalize_less(self):
        for index in range(3):
            self.damper.penalize(
                PEER, PREFIX, float(index), is_withdrawal=False
            )
        # 3 x 500 = 1500 < 2000: not suppressed.
        assert not self.damper.is_suppressed(PEER, PREFIX, 3.0)

    def test_penalty_decays_with_half_life(self):
        self.damper.penalize(PEER, PREFIX, 0.0, is_withdrawal=True)
        half_life = self.damper.config.half_life
        assert self.damper.penalty_of(
            PEER, PREFIX, half_life
        ) == pytest.approx(500.0)

    def test_suppressed_route_is_released_after_decay(self):
        for index in range(3):
            self.damper.penalize(
                PEER, PREFIX, float(index), is_withdrawal=True
            )
        assert self.damper.is_suppressed(PEER, PREFIX, 10.0)
        # After several half-lives the penalty sinks below reuse.
        later = 10.0 + 3 * self.damper.config.half_life
        assert not self.damper.is_suppressed(PEER, PREFIX, later)
        assert self.damper.releases == 1

    def test_penalty_is_capped(self):
        for index in range(100):
            self.damper.penalize(
                PEER, PREFIX, float(index), is_withdrawal=True
            )
        assert (
            self.damper.penalty_of(PEER, PREFIX, 100.0)
            <= self.damper.config.max_penalty
        )

    def test_reuse_eta(self):
        for index in range(3):
            self.damper.penalize(
                PEER, PREFIX, float(index), is_withdrawal=True
            )
        eta = self.damper.reuse_eta(PEER, PREFIX, 3.0)
        assert eta is not None and eta > 0
        # The route is indeed reusable after the predicted time.
        assert not self.damper.is_suppressed(
            PEER, PREFIX, 3.0 + eta + 1.0
        )

    def test_reuse_eta_none_for_unsuppressed(self):
        assert self.damper.reuse_eta(PEER, PREFIX, 0.0) is None

    def test_routes_are_independent(self):
        other_prefix = Prefix("198.51.100.0/24")
        for index in range(3):
            self.damper.penalize(
                PEER, PREFIX, float(index), is_withdrawal=True
            )
        assert self.damper.is_suppressed(PEER, PREFIX, 3.0)
        assert not self.damper.is_suppressed(PEER, other_prefix, 3.0)

    def test_peers_are_independent(self):
        for index in range(3):
            self.damper.penalize(
                PEER, PREFIX, float(index), is_withdrawal=True
            )
        assert not self.damper.is_suppressed("peer-2", PREFIX, 3.0)

    def test_release_at_exact_reuse_threshold(self):
        """RFC 2439 regression: decaying to *exactly* the reuse
        threshold must release the route (<= not <)."""
        config = DampingConfig(
            suppress_threshold=1000.0,
            reuse_threshold=750.0,
            half_life=900.0,
            withdrawal_penalty=1500.0,
        )
        damper = RouteDamper(config)
        damper.penalize(PEER, PREFIX, 0.0, is_withdrawal=True)
        assert damper.is_suppressed(PEER, PREFIX, 0.0)
        # One half-life: 1500 * 0.5 == 750.0 exactly in binary float.
        assert damper.penalty_of(PEER, PREFIX, 900.0) == 750.0
        assert not damper.is_suppressed(PEER, PREFIX, 900.0)
        assert damper.releases == 1

    def test_release_at_max_suppress_time_cap(self):
        """A route capped at max_penalty decays to exactly the reuse
        threshold after max_suppress_time — the RFC's guarantee that
        suppression never outlives the cap, which the strict-< compare
        used to violate."""
        config = DampingConfig(half_life=900.0, max_suppress_time=3600.0)
        damper = RouteDamper(config)
        for index in range(100):
            damper.penalize(PEER, PREFIX, float(index), is_withdrawal=True)
        assert damper.is_suppressed(PEER, PREFIX, 99.0)
        capped_at = 99.0
        assert damper.penalty_of(PEER, PREFIX, capped_at) == pytest.approx(
            config.max_penalty
        )
        # Exactly at the deadline: cap * 0.5^(3600/900) == reuse, and
        # landing on the threshold must release.
        released_by = capped_at + config.max_suppress_time
        assert not damper.is_suppressed(PEER, PREFIX, released_by)

    def test_fully_decayed_entries_are_forgotten(self):
        self.damper.penalize(PEER, PREFIX, 0.0, is_withdrawal=True)
        assert self.damper.tracked_routes() == 1
        # ~10 half-lives: penalty < 1, entry dropped on next query.
        much_later = 11 * self.damper.config.half_life
        assert not self.damper.is_suppressed(PEER, PREFIX, much_later)
        assert self.damper.tracked_routes() == 0


class TestDampingAbsorbsExploration:
    def test_community_exploration_burst_gets_suppressed(self):
        """A Figure 4 burst (many attribute changes in minutes) trips
        damping, while a single clean failover does not."""
        damper = RouteDamper()
        # One failover: pc + a couple of nc within a minute.
        damper.penalize(PEER, PREFIX, 0.0, is_withdrawal=False)
        damper.penalize(PEER, PREFIX, 10.0, is_withdrawal=False)
        assert not damper.is_suppressed(PEER, PREFIX, 20.0)
        # Beacon cycling: withdrawal + exploration every few minutes.
        now = 100.0
        for _cycle in range(3):
            damper.penalize(PEER, PREFIX, now, is_withdrawal=True)
            for _burst in range(3):
                now += 15.0
                damper.penalize(PEER, PREFIX, now, is_withdrawal=False)
            now += 60.0
        assert damper.is_suppressed(PEER, PREFIX, now)
