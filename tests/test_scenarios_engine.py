"""Engine: spec -> result, and equivalence with the legacy drivers."""

import pytest

from repro.analysis import build_table2, observations_from_collector
from repro.analysis.classify import TYPE_ORDER
from repro.scenarios import (
    InternetSpec,
    LabSpec,
    ScenarioSpec,
    ScenarioValidationError,
    get_scenario,
    internet_config_from_spec,
    make_collectors,
    run_scenario,
)
from repro.vendors import CISCO_IOS, JUNOS
from repro.workloads import InternetConfig, InternetModel

TINY = InternetSpec(
    tier1_count=2,
    transit_count=3,
    stub_count=6,
    beacon_count=1,
    link_flaps=2,
    prefix_flaps=2,
    med_churn_events=2,
    community_churn_events=3,
    prepend_change_events=1,
    collector_session_resets=1,
)


def tiny_spec(**overrides) -> ScenarioSpec:
    payload = {
        "name": "engine-tiny",
        "kind": "internet",
        "seed": 11,
        "internet": TINY,
        "collectors": ("update_counts", "table2"),
    }
    payload.update(overrides)
    return ScenarioSpec(**payload)


class TestLabEquivalence:
    def test_matrix_matches_direct_experiment_runs(self):
        from repro.simulator import run_experiment

        spec = ScenarioSpec(
            name="lab-slice",
            kind="lab",
            lab=LabSpec(
                experiments=("exp1", "exp3"), vendors=("cisco", "junos")
            ),
            collectors=("lab_matrix",),
        )
        result = run_scenario(spec)
        expected = [
            list(run_experiment(experiment, vendor).summary_row())
            for experiment in ("exp1", "exp3")
            for vendor in (CISCO_IOS, JUNOS)
        ]
        assert result.metrics["lab_matrix"]["rows"] == expected

    def test_exp3_duplicate_only_on_non_junos(self):
        result = run_scenario(
            ScenarioSpec(
                name="lab-exp3",
                kind="lab",
                lab=LabSpec(
                    experiments=("exp3",), vendors=("cisco", "junos")
                ),
                collectors=("lab_matrix",),
            )
        )
        cells = {
            cell["vendor"]: cell
            for cell in result.metrics["lab_matrix"]["cells"]
        }
        assert cells[CISCO_IOS.name]["collector_saw_duplicate"]
        assert not cells[JUNOS.name]["update_reached_collector"]


class TestInternetEquivalence:
    def test_engine_matches_direct_model_run(self):
        spec = tiny_spec()
        result = run_scenario(spec)

        day = InternetModel(internet_config_from_spec(spec)).run()
        observations = []
        for collector in day.collectors():
            observations.extend(observations_from_collector(collector))
        observations.sort(key=lambda obs: obs.timestamp)
        table2 = build_table2(observations, set(day.beacon_prefixes))

        engine_shares = result.metrics["table2"]["full_shares"]
        direct_shares = {
            kind.value: table2.full.share(kind) for kind in TYPE_ORDER
        }
        assert engine_shares == direct_shares
        assert result.metrics["update_counts"]["observations"] == len(
            observations
        )

    def test_identical_specs_identical_results(self):
        first = run_scenario(tiny_spec())
        second = run_scenario(tiny_spec())
        assert first.metrics == second.metrics
        assert first.spec_hash == second.spec_hash

    def test_seed_changes_the_day(self):
        baseline = run_scenario(tiny_spec())
        reseeded = run_scenario(tiny_spec(seed=12))
        assert baseline.metrics != reseeded.metrics


class TestConfigMapping:
    def test_small_base_matches_seed_configuration(self):
        spec = get_scenario("internet-small")
        config = internet_config_from_spec(spec)
        reference = InternetConfig.small()
        assert config.seed == reference.seed == 7
        assert config.topology.seed == reference.topology.seed
        assert config.beacon_count == reference.beacon_count
        assert config.vendor_mix == reference.vendor_mix

    def test_mar20_base_pins_topology_seed(self):
        config = internet_config_from_spec(get_scenario("internet-mar20"))
        reference = InternetConfig.mar20()
        assert config.seed == reference.seed
        assert config.topology.seed == reference.topology.seed

    def test_overrides_apply_and_mix_normalizes(self):
        spec = tiny_spec(
            internet=InternetSpec(
                stub_count=5,
                vendor_mix=(("junos", 3.0), ("bird", 1.0)),
                mrai=5.0,
            ),
            duration=3600.0,
        )
        config = internet_config_from_spec(spec)
        assert config.topology.stub_count == 5
        assert config.mrai == 5.0
        assert config.day_seconds == 3600.0
        assert config.seed == 11
        mix = dict(
            (profile.name, weight) for profile, weight in config.vendor_mix
        )
        assert mix[JUNOS.name] == pytest.approx(0.75)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_seed_sweep_keeps_topology_fixed(self):
        base = internet_config_from_spec(tiny_spec(seed=1))
        other = internet_config_from_spec(tiny_spec(seed=2))
        assert base.topology.seed == other.topology.seed
        assert base.seed != other.seed


class TestEngineValidation:
    def test_invalid_spec_never_simulates(self):
        with pytest.raises(ScenarioValidationError):
            run_scenario(tiny_spec(collectors=("bogus",)))

    def test_unknown_collector_at_proxy_level(self):
        with pytest.raises(KeyError, match="unknown collector"):
            make_collectors(("bogus",))


class TestShortDuration:
    def test_duration_shortens_the_day(self):
        # A 2-hour window drops most beacon cycles and squeezes the
        # background schedule, so the feed must shrink decisively.
        full = run_scenario(tiny_spec())
        short = run_scenario(tiny_spec(duration=7200.0))
        assert (
            short.metrics["update_counts"]["observations"]
            < full.metrics["update_counts"]["observations"]
        )
