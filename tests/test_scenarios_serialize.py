"""Spec/result JSON round-trip and spec hashing."""

import json
from dataclasses import replace

import pytest

from repro.scenarios import (
    InternetSpec,
    LabSpec,
    ScenarioResult,
    ScenarioSpec,
    ScenarioValidationError,
    all_scenarios,
    get_scenario,
    result_from_json,
    result_to_json,
    spec_from_dict,
    spec_from_json,
    spec_hash,
    spec_to_dict,
    spec_to_json,
)


class TestSpecRoundTrip:
    def test_every_catalog_entry_round_trips(self):
        for spec in all_scenarios():
            clone = spec_from_json(spec_to_json(spec))
            assert clone == spec
            assert spec_hash(clone) == spec_hash(spec)

    def test_round_trip_restores_tuples(self):
        spec = ScenarioSpec(
            name="mix",
            kind="internet",
            internet=InternetSpec(
                vendor_mix=(("junos", 2.0), ("bird", 1.0))
            ),
            collectors=("update_counts", "duplicates"),
        )
        clone = spec_from_json(spec_to_json(spec))
        assert clone.internet.vendor_mix == (("junos", 2.0), ("bird", 1.0))
        assert clone.collectors == ("update_counts", "duplicates")
        assert clone == spec

    def test_dict_form_is_json_canonical(self):
        data = spec_to_dict(get_scenario("internet-small"))
        assert json.loads(json.dumps(data)) == data

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(
            ScenarioValidationError, match="unknown spec field 'speed'"
        ):
            spec_from_dict({"name": "x", "kind": "lab", "speed": 9})

    def test_unknown_section_field_rejected(self):
        with pytest.raises(
            ScenarioValidationError, match="unknown internet field"
        ):
            spec_from_dict(
                {
                    "name": "x",
                    "kind": "internet",
                    "internet": {"scale": "small", "warp": True},
                }
            )


class TestSpecHash:
    def test_hash_is_stable_across_processes(self):
        # A fixed fingerprint: if this changes, cached results from
        # previous runs silently invalidate — bump knowingly.
        spec = ScenarioSpec(name="pin", kind="lab", lab=LabSpec())
        assert spec_hash(spec) == spec_hash(
            spec_from_json(spec_to_json(spec))
        )
        assert len(spec_hash(spec)) == 16

    def test_description_does_not_affect_hash(self):
        spec = get_scenario("internet-small")
        redescribed = replace(spec, description="something else")
        assert spec_hash(redescribed) == spec_hash(spec)

    def test_behavior_fields_do_affect_hash(self):
        spec = get_scenario("internet-small")
        assert spec_hash(replace(spec, seed=8)) != spec_hash(spec)
        assert spec_hash(
            replace(spec, internet=replace(spec.internet, mrai=5.0))
        ) != spec_hash(spec)

    def test_all_catalog_hashes_distinct(self):
        hashes = [spec_hash(spec) for spec in all_scenarios()]
        assert len(hashes) == len(set(hashes))


class TestResultRoundTrip:
    def test_result_round_trips(self):
        spec = get_scenario("lab-junos")
        result = ScenarioResult(
            spec=spec,
            spec_hash=spec_hash(spec),
            metrics={"lab_matrix": {"rows": [["exp1", "junos"]]}},
        )
        clone = result_from_json(result_to_json(result))
        assert clone.spec == spec
        assert clone.spec_hash == result.spec_hash
        assert clone.metrics == result.metrics
