"""Unit tests for the cross-session adjacency index and LocRIB.update."""

from repro.bgp.attributes import PathAttributes
from repro.bgp.aspath import ASPath
from repro.netbase import Prefix
from repro.rib.adj_rib import AdjacencyIndex, AdjRIBIn
from repro.rib.loc_rib import LocRIB
from repro.rib.route import Route, RouteSource

PREFIX = Prefix("203.0.113.0/24")
OTHER = Prefix("198.51.100.0/24")


def route(prefix=PREFIX, *, peer_id="192.0.2.1", med=None):
    return Route(
        prefix,
        PathAttributes(as_path=ASPath.from_asns((65010,)), med=med),
        source=RouteSource.EBGP,
        peer_id=peer_id,
    )


class TestAdjacencyIndex:
    def setup_method(self):
        self.index = AdjacencyIndex()
        self.rib_a = AdjRIBIn(1, self.index)
        self.rib_b = AdjRIBIn(2, self.index)

    def test_install_is_mirrored(self):
        self.rib_a.install(route(peer_id="a"))
        self.rib_b.install(route(peer_id="b"))
        candidates = self.index.candidates(PREFIX)
        assert [key for key, _ in candidates] == [1, 2]
        assert [r.peer_id for _, r in candidates] == ["a", "b"]

    def test_candidates_sorted_by_key_regardless_of_install_order(self):
        self.rib_b.install(route(peer_id="b"))
        self.rib_a.install(route(peer_id="a"))
        assert [key for key, _ in self.index.candidates(PREFIX)] == [1, 2]

    def test_reinstall_replaces_entry(self):
        self.rib_a.install(route(med=None))
        self.rib_a.install(route(med=50))
        candidates = self.index.candidates(PREFIX)
        assert len(candidates) == 1
        assert candidates[0][1].attributes.med == 50

    def test_withdraw_is_mirrored(self):
        self.rib_a.install(route())
        self.rib_b.install(route())
        self.rib_a.withdraw(PREFIX)
        assert [key for key, _ in self.index.candidates(PREFIX)] == [2]
        self.rib_b.withdraw(PREFIX)
        assert self.index.candidates(PREFIX) == []
        assert len(self.index) == 0

    def test_withdraw_of_absent_prefix_is_noop(self):
        assert self.rib_a.withdraw(PREFIX) is None
        assert self.index.candidates(PREFIX) == []

    def test_clear_removes_only_that_session(self):
        self.rib_a.install(route())
        self.rib_a.install(route(OTHER))
        self.rib_b.install(route())
        assert self.rib_a.clear() == [PREFIX, OTHER]
        assert [key for key, _ in self.index.candidates(PREFIX)] == [2]
        assert self.index.candidates(OTHER) == []

    def test_prefixes_snapshot(self):
        self.rib_a.install(route())
        self.rib_b.install(route(OTHER))
        assert sorted(self.index.prefixes()) == sorted([PREFIX, OTHER])

    def test_unindexed_rib_still_works(self):
        plain = AdjRIBIn()
        plain.install(route())
        assert plain.get(PREFIX) is not None
        assert plain.withdraw(PREFIX) is not None


class TestLocRIBUpdate:
    def setup_method(self):
        self.rib = LocRIB()

    def test_first_install_reports_changed(self):
        changed, previous = self.rib.update(route())
        assert changed and previous is None
        assert self.rib.get(PREFIX) is not None

    def test_equal_route_is_not_reinstalled(self):
        first = route()
        self.rib.update(first)
        changed, previous = self.rib.update(route())
        assert not changed
        assert previous is first
        # The original instance stays installed.
        assert self.rib.get(PREFIX) is first

    def test_different_route_replaces(self):
        self.rib.update(route(med=None))
        changed, previous = self.rib.update(route(med=10))
        assert changed
        assert previous is not None
        assert self.rib.get(PREFIX).attributes.med == 10
