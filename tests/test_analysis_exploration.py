"""Unit tests for §6 exploration/revealed-information analysis."""

import pytest

from repro.analysis import (
    CommunityExplorationDetector,
    RevealedInfoAnalysis,
    group_into_streams,
    label_phases,
)
from repro.analysis.classify import AnnouncementType
from repro.analysis.exploration import stream_phase_activity
from repro.analysis.observations import (
    Observation,
    ObservationKind,
    SessionKey,
)
from repro.analysis.revealed import revealed_communities
from repro.beacons import PhaseKind
from repro.bgp import ASPath, CommunitySet
from repro.netbase import Prefix, parse_utc

SESSION = SessionKey("rrc00", 20205, "10.0.0.1")
PREFIX = Prefix("84.205.64.0/24")
DAY = parse_utc("2020-03-15")
WITHDRAW_PHASE = DAY + 2 * 3600  # 02:00
ANNOUNCE_PHASE = DAY + 4 * 3600  # 04:00


def announce(t, path, communities=""):
    return Observation(
        timestamp=t,
        session=SESSION,
        prefix=PREFIX,
        kind=ObservationKind.ANNOUNCE,
        as_path=ASPath.from_string(path),
        communities=CommunitySet.parse(communities),
    )


def withdraw(t):
    return Observation(
        timestamp=t,
        session=SESSION,
        prefix=PREFIX,
        kind=ObservationKind.WITHDRAW,
    )


def exploration_burst(base, *, cleaner=False):
    """The Figure 4 (or, with cleaner=True, Figure 5) burst shape."""
    if cleaner:
        return [
            announce(base + 10, "20811 3356 174 12654"),
            announce(base + 20, "20811 3356 174 12654"),
            announce(base + 30, "20811 3356 174 12654"),
            withdraw(base + 60),
        ]
    return [
        announce(base + 10, "20205 3356 174 12654", "3356:301"),
        announce(base + 20, "20205 3356 174 12654", "3356:302"),
        announce(base + 30, "20205 3356 174 12654", "3356:303"),
        withdraw(base + 60),
    ]


class TestLabelPhases:
    def test_phases_assigned(self):
        labeled = label_phases(
            [
                announce(DAY + 60, "1 2"),
                announce(WITHDRAW_PHASE + 60, "1 3"),
                announce(DAY + 3600, "1 4"),
            ]
        )
        assert [item.phase for item in labeled] == [
            PhaseKind.ANNOUNCE,
            PhaseKind.WITHDRAW,
            PhaseKind.OUTSIDE,
        ]

    def test_withdrawals_not_included(self):
        labeled = label_phases([withdraw(DAY + 60)])
        assert labeled == []


class TestStreamActivity:
    def test_cumulative_series(self):
        stream = [
            announce(DAY, "20205 6939 12654", "6939:1"),
            *exploration_burst(WITHDRAW_PHASE),
        ]
        activity = stream_phase_activity(stream)
        assert activity.total_announcements == 3  # first is unclassified
        series = activity.cumulative_series()
        nc_series = series[AnnouncementType.NC]
        assert [count for _, count in nc_series] == [1, 2]
        assert len(activity.withdrawals) == 1

    def test_type_counts(self):
        stream = [
            announce(DAY, "20205 6939 12654", "6939:1"),
            *exploration_burst(WITHDRAW_PHASE),
        ]
        counts = stream_phase_activity(stream).type_counts()
        assert counts[AnnouncementType.PC] == 1
        assert counts[AnnouncementType.NC] == 2


class TestExplorationDetector:
    def _streams(self, observations):
        return group_into_streams(observations)

    def test_detects_community_exploration(self):
        observations = [
            announce(DAY, "20205 6939 12654", "6939:1"),
            *exploration_burst(WITHDRAW_PHASE),
        ]
        events = CommunityExplorationDetector().detect(
            self._streams(observations)
        )
        assert len(events) == 1
        event = events[0]
        assert event.is_community_exploration
        assert event.spurious_count == 2
        assert event.distinct_communities == 3

    def test_detects_duplicate_burst(self):
        observations = [
            announce(DAY, "20811 6939 12654"),
            *exploration_burst(WITHDRAW_PHASE, cleaner=True),
        ]
        events = CommunityExplorationDetector().detect(
            self._streams(observations)
        )
        assert len(events) == 1
        assert events[0].is_duplicate_burst

    def test_ignores_bursts_outside_withdraw_phase(self):
        observations = [
            announce(DAY, "20205 6939 12654", "6939:1"),
            *exploration_burst(DAY + 3600),  # outside any phase
        ]
        events = CommunityExplorationDetector().detect(
            self._streams(observations)
        )
        assert events == []

    def test_burst_gap_splits_events(self):
        detector = CommunityExplorationDetector(burst_gap=5.0)
        observations = [
            announce(DAY, "20205 6939 12654", "6939:1"),
            announce(WITHDRAW_PHASE + 10, "20205 3356 174 12654", "3356:301"),
            announce(WITHDRAW_PHASE + 12, "20205 3356 174 12654", "3356:302"),
            # 100s gap: outside the burst window.
            announce(WITHDRAW_PHASE + 112, "20205 3356 174 12654", "3356:303"),
        ]
        events = detector.detect(self._streams(observations))
        assert len(events) == 1
        assert events[0].spurious_count == 1

    def test_min_spurious_threshold(self):
        detector = CommunityExplorationDetector(min_spurious=3)
        observations = [
            announce(DAY, "20205 6939 12654", "6939:1"),
            *exploration_burst(WITHDRAW_PHASE),  # only 2 spurious
        ]
        assert detector.detect(self._streams(observations)) == []

    def test_multiple_phases_yield_multiple_events(self):
        observations = [announce(DAY, "20205 6939 12654", "6939:1")]
        for cycle in range(3):
            observations.extend(
                exploration_burst(WITHDRAW_PHASE + cycle * 4 * 3600)
            )
        events = CommunityExplorationDetector().detect(
            self._streams(observations)
        )
        assert len(events) == 3


class TestRevealedInfo:
    def test_withdrawal_exclusive_attribute(self):
        result = revealed_communities(
            [
                announce(DAY + 60, "1 2", "3356:100"),
                announce(WITHDRAW_PHASE + 60, "1 2", "3356:301"),
                announce(WITHDRAW_PHASE + 70, "1 2", "3356:302"),
            ]
        )
        assert result.total_unique == 3
        assert result.exclusively_withdrawal == 2
        assert result.exclusively_announcement == 1
        assert result.withdrawal_ratio == pytest.approx(2 / 3)

    def test_ambiguous_attribute(self):
        result = revealed_communities(
            [
                announce(DAY + 60, "1 2", "3356:100"),
                announce(WITHDRAW_PHASE + 60, "1 2", "3356:100"),
            ]
        )
        assert result.total_unique == 1
        assert result.ambiguous == 1
        assert result.withdrawal_ratio == 0.0

    def test_empty_attributes_ignored(self):
        result = revealed_communities([announce(DAY + 60, "1 2", "")])
        assert result.total_unique == 0

    def test_outside_phase(self):
        result = revealed_communities(
            [announce(DAY + 3600, "1 2", "3356:9")]
        )
        assert result.exclusively_outside == 1

    def test_withdrawals_do_not_reveal(self):
        analysis = RevealedInfoAnalysis()
        analysis.observe(withdraw(WITHDRAW_PHASE + 60))
        assert analysis.result().total_unique == 0

    def test_phases_of(self):
        analysis = RevealedInfoAnalysis()
        analysis.observe(announce(WITHDRAW_PHASE + 60, "1 2", "3356:301"))
        phases = analysis.phases_of(CommunitySet.parse("3356:301"))
        assert phases == {PhaseKind.WITHDRAW}
        assert analysis.phases_of(CommunitySet.parse("9:9")) is None

    def test_as_rows(self):
        result = revealed_communities(
            [announce(WITHDRAW_PHASE + 60, "1 2", "3356:301")]
        )
        rows = result.as_rows()
        assert rows[0] == ("total unique", 1, 1.0)
        assert rows[1][1] == 1  # exclusively withdrawal
