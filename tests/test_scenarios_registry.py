"""Registry: named lookup, the built-in catalog, registration."""

import pytest

from repro.scenarios import (
    ScenarioSpec,
    UnknownScenarioError,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
    unregister,
)
from repro.scenarios.registry import INTERNET_COLLECTORS


class TestCatalog:
    def test_at_least_ten_scenarios(self):
        assert len(scenario_names()) >= 10

    def test_names_sorted_and_unique(self):
        names = scenario_names()
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_paper_matrix_present(self):
        names = set(scenario_names())
        assert {"lab-baseline", "internet-small", "internet-mar20"} <= names

    def test_what_ifs_present(self):
        names = set(scenario_names())
        # Mixed-vendor internets, scrubbing sweep, beacon density,
        # topology ladder — the ISSUE's required coverage.
        assert {"internet-all-cisco", "internet-all-junos"} <= names
        assert {"scrub-none", "scrub-heavy"} <= names
        assert "beacons-dense" in names
        assert {
            "topology-tiny",
            "topology-medium",
            "topology-large",
        } <= names

    def test_every_entry_is_valid(self):
        for spec in all_scenarios():
            assert spec.validate() is spec

    def test_lookup_returns_fresh_equal_specs(self):
        first = get_scenario("lab-baseline")
        second = get_scenario("lab-baseline")
        assert first == second
        assert first is not second

    def test_internet_small_matches_seed_configuration(self):
        spec = get_scenario("internet-small")
        assert spec.kind == "internet"
        assert spec.seed == 7
        assert spec.collectors == INTERNET_COLLECTORS


class TestLookupErrors:
    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            get_scenario("internet-gigantic")
        assert "internet-small" in str(excinfo.value)


class TestRegistration:
    def test_register_and_unregister(self):
        factory = lambda: ScenarioSpec(  # noqa: E731
            name="test-custom",
            kind="lab",
            collectors=("lab_matrix",),
        )
        register("test-custom", factory)
        try:
            assert "test-custom" in scenario_names()
            assert get_scenario("test-custom").name == "test-custom"
        finally:
            unregister("test-custom")
        assert "test-custom" not in scenario_names()

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register("lab-baseline", lambda: None)
