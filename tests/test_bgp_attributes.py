"""Unit tests for repro.bgp.attributes and messages."""

import pytest

from repro.bgp import (
    ASPath,
    CommunitySet,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    Origin,
    PathAttributes,
    UpdateMessage,
)
from repro.bgp.errors import AttributeError_, MessageError
from repro.netbase import ASN, Prefix


def make_attrs(**overrides):
    defaults = dict(
        as_path=ASPath.from_string("20205 3356 174 12654"),
        next_hop="10.0.0.1",
        communities=CommunitySet.parse("3356:300"),
    )
    defaults.update(overrides)
    return PathAttributes(**defaults)


class TestPathAttributes:
    def test_defaults(self):
        attrs = PathAttributes()
        assert attrs.origin == Origin.IGP
        assert attrs.as_path.is_empty()
        assert attrs.communities.is_empty()
        assert attrs.med is None
        assert attrs.local_pref is None

    def test_replace_changes_one_field(self):
        attrs = make_attrs()
        updated = attrs.replace(med=50)
        assert updated.med == 50
        assert updated.as_path == attrs.as_path
        assert attrs.med is None  # original untouched

    def test_replace_can_clear_optional(self):
        attrs = make_attrs(med=10)
        assert attrs.replace(med=None).med is None

    def test_replace_rejects_unknown_field(self):
        with pytest.raises(AttributeError_):
            make_attrs().replace(color="blue")

    def test_with_communities(self):
        updated = make_attrs().with_communities(CommunitySet.parse("1:1"))
        assert updated.communities == CommunitySet.parse("1:1")

    def test_with_prepend(self):
        updated = make_attrs().with_prepend(64500, 2)
        assert updated.as_path.asns()[:2] == (ASN(64500), ASN(64500))

    def test_with_next_hop(self):
        assert make_attrs().with_next_hop("10.9.9.9").next_hop == "10.9.9.9"

    def test_med_range_validation(self):
        with pytest.raises(AttributeError_):
            PathAttributes(med=-1)
        with pytest.raises(AttributeError_):
            PathAttributes(local_pref=2**32)

    def test_equality_covers_all_fields(self):
        assert make_attrs() == make_attrs()
        assert make_attrs() != make_attrs(med=1)
        assert make_attrs() != make_attrs(next_hop="10.0.0.2")

    def test_hashable(self):
        assert len({make_attrs(), make_attrs()}) == 1

    def test_same_path_and_communities_ignores_next_hop_and_med(self):
        base = make_attrs()
        assert base.same_path_and_communities(
            make_attrs(next_hop="10.0.0.2", med=99)
        )
        assert not base.same_path_and_communities(
            make_attrs(communities=CommunitySet.empty())
        )
        assert not base.same_path_and_communities(
            make_attrs(as_path=ASPath.from_string("20205 3356"))
        )

    def test_repr_mentions_key_fields(self):
        rendered = repr(make_attrs(med=5))
        assert "med=5" in rendered
        assert "3356" in rendered


class TestUpdateMessage:
    def test_announce(self):
        update = UpdateMessage.announce(
            Prefix("84.205.64.0/24"), make_attrs()
        )
        assert update.is_announcement
        assert not update.is_withdrawal
        assert update.announced == (Prefix("84.205.64.0/24"),)

    def test_withdraw(self):
        update = UpdateMessage.withdraw(Prefix("84.205.64.0/24"))
        assert update.is_withdrawal
        assert update.attributes is None

    def test_mixed(self):
        update = UpdateMessage(
            announced=[Prefix("10.0.0.0/8")],
            withdrawn=[Prefix("11.0.0.0/8")],
            attributes=make_attrs(),
        )
        assert update.is_announcement and update.is_withdrawal

    def test_rejects_announce_without_attributes(self):
        with pytest.raises(MessageError):
            UpdateMessage(announced=[Prefix("10.0.0.0/8")])

    def test_rejects_empty_update(self):
        with pytest.raises(MessageError):
            UpdateMessage()

    def test_rejects_non_prefix(self):
        with pytest.raises(MessageError):
            UpdateMessage(withdrawn=["10.0.0.0/8"])  # type: ignore[list-item]

    def test_equality(self):
        first = UpdateMessage.announce(Prefix("10.0.0.0/8"), make_attrs())
        second = UpdateMessage.announce(Prefix("10.0.0.0/8"), make_attrs())
        assert first == second
        assert hash(first) == hash(second)


class TestOtherMessages:
    def test_open_fields(self):
        message = OpenMessage(65000, "192.0.2.1", 180)
        assert message.asn == ASN(65000)
        assert message.hold_time == 180
        assert message.version == 4

    def test_open_rejects_forbidden_hold_time(self):
        with pytest.raises(MessageError):
            OpenMessage(65000, "192.0.2.1", 1)
        with pytest.raises(MessageError):
            OpenMessage(65000, "192.0.2.1", 70000)

    def test_keepalive_equality(self):
        assert KeepaliveMessage() == KeepaliveMessage()

    def test_notification(self):
        message = NotificationMessage(6, 2, b"bye")
        assert message.code == 6
        assert message.subcode == 2
        assert message.data == b"bye"

    def test_notification_rejects_bad_subcode(self):
        with pytest.raises(MessageError):
            NotificationMessage(6, 300)
