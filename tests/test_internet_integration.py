"""Integration tests: the full synthetic internet end to end.

These run the small configuration once (module-scoped fixture) and make
qualitative assertions corresponding to the paper's findings.
"""

import pytest

from repro.analysis import (
    AnnouncementType,
    CleaningPipeline,
    CommunityExplorationDetector,
    build_table1,
    build_table2,
    classify_observations,
    group_into_streams,
    observations_from_collector,
)
from repro.analysis.revealed import revealed_communities
from repro.workloads import InternetConfig, InternetModel


@pytest.fixture(scope="module")
def simulated_day():
    config = InternetConfig.small()
    return InternetModel(config).run()


@pytest.fixture(scope="module")
def observations(simulated_day):
    merged = []
    for collector in simulated_day.collectors():
        merged.extend(observations_from_collector(collector))
    merged.sort(key=lambda obs: obs.timestamp)
    return merged


class TestStructure:
    def test_collectors_heard_messages(self, simulated_day):
        assert simulated_day.total_collected_messages() > 100
        for collector in simulated_day.collectors():
            assert collector.message_count() > 0

    def test_network_quiesced(self, simulated_day):
        assert simulated_day.network.queue.pending == 0

    def test_beacons_were_scheduled(self, simulated_day):
        assert len(simulated_day.beacon_prefixes) == 2

    def test_practices_assigned_to_all_ases(self, simulated_day):
        assert set(simulated_day.practices) == set(
            simulated_day.topology.ases
        )


class TestPaperFindings:
    def test_all_types_except_x_occur(self, observations):
        counts = classify_observations(observations)
        for kind in (
            AnnouncementType.PC,
            AnnouncementType.PN,
            AnnouncementType.NC,
            AnnouncementType.NN,
        ):
            assert counts.counts[kind] > 0, kind

    def test_no_path_change_types_are_substantial(self, observations):
        """Finding 1: announcements with no path change are common."""
        counts = classify_observations(observations)
        assert counts.no_path_change_share() > 0.2

    def test_prepend_types_are_rare(self, observations):
        counts = classify_observations(observations)
        prepend_share = counts.share(AnnouncementType.XC) + counts.share(
            AnnouncementType.XN
        )
        assert prepend_share < 0.05

    def test_communities_are_prevalent(self, observations):
        table1 = build_table1(observations)
        assert table1.community_share > 0.3

    def test_beacon_withdrawals_reveal_communities(
        self, simulated_day, observations
    ):
        """Finding 4: most community attributes surface in withdrawals."""
        beacons = set(simulated_day.beacon_prefixes)
        beacon_obs = [o for o in observations if o.prefix in beacons]
        result = revealed_communities(beacon_obs)
        assert result.total_unique > 0
        assert result.withdrawal_ratio > 0.3

    def test_community_exploration_detected(
        self, simulated_day, observations
    ):
        """Finding 2: geo-tagging produces exploration bursts."""
        beacons = set(simulated_day.beacon_prefixes)
        beacon_obs = [o for o in observations if o.prefix in beacons]
        events = CommunityExplorationDetector().detect(
            group_into_streams(beacon_obs)
        )
        assert events, "no exploration bursts detected"

    def test_sessions_show_diverse_type_mixes(self, observations):
        """Figure 3: different sessions see different distributions."""
        by_session = {}
        for observation in observations:
            by_session.setdefault(observation.session, []).append(
                observation
            )
        shares = []
        for session_obs in by_session.values():
            counts = classify_observations(session_obs)
            if counts.classified_total >= 20:
                shares.append(
                    round(counts.no_path_change_share(), 2)
                )
        assert len(set(shares)) > 1, "all sessions identical"


class TestCleaningIntegration:
    def test_bogons_are_dropped(self, simulated_day, observations):
        pipeline = CleaningPipeline(oracle=simulated_day.registry)
        cleaned, report = pipeline.run(observations)
        assert report.dropped_unallocated_prefix > 0
        assert len(cleaned) < len(observations)

    def test_route_server_paths_repaired(
        self, simulated_day, observations
    ):
        pipeline = CleaningPipeline(oracle=simulated_day.registry)
        cleaned, report = pipeline.run(observations)
        assert report.repaired_route_server_paths > 0
        # After repair, every announcement starts with its peer ASN.
        for observation in cleaned:
            if observation.is_announcement and observation.as_path:
                assert (
                    int(observation.as_path.first_asn)
                    == observation.session.peer_asn
                )

    def test_cleaning_is_idempotent(self, simulated_day, observations):
        pipeline = CleaningPipeline(oracle=simulated_day.registry)
        once, _ = pipeline.run(observations)
        twice, report = CleaningPipeline(
            oracle=simulated_day.registry
        ).run(once)
        assert len(twice) == len(once)
        assert report.repaired_route_server_paths == 0


class TestTableBuilders:
    def test_table1_consistency(self, observations):
        table1 = build_table1(observations)
        assert table1.announcements + table1.withdrawals == len(
            observations
        )
        assert table1.with_communities <= table1.announcements
        assert table1.peers <= table1.sessions
        assert table1.ipv4_prefixes > 0

    def test_table2_shares_sum_to_one(self, observations, simulated_day):
        table2 = build_table2(
            observations, set(simulated_day.beacon_prefixes)
        )
        assert table2.sanity_check()
        assert table2.beacon is not None
        assert table2.beacon.classified_total <= (
            table2.full.classified_total
        )

    def test_mrt_dump_reparses_identically(self, simulated_day):
        import io

        from repro.analysis import observations_from_mrt
        from repro.mrt import MRTReader

        collector = simulated_day.collectors()[0]
        direct = list(observations_from_collector(collector))
        data = collector.dump_mrt()
        records = MRTReader(io.BytesIO(data))
        reparsed = list(
            observations_from_mrt(records, collector.name)
        )
        assert len(reparsed) == len(direct)
        assert [o.prefix for o in reparsed] == [o.prefix for o in direct]
        assert [o.communities for o in reparsed] == [
            o.communities for o in direct
        ]
