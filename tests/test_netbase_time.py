"""Unit tests for repro.netbase.timebase."""

import pytest

from repro.netbase import SimClock, parse_utc, format_utc, utc_day
from repro.netbase.errors import ClockError
from repro.netbase.timebase import seconds_into_day, SECONDS_PER_DAY


class TestParseFormat:
    def test_parse_date_only(self):
        assert parse_utc("1970-01-01") == 0.0

    def test_parse_datetime(self):
        assert parse_utc("1970-01-01 01:00:00") == 3600.0

    def test_parse_minutes_form(self):
        assert parse_utc("1970-01-01 01:30") == 5400.0

    def test_parse_mar20(self):
        # 2020-03-15 00:00 UTC, the paper's d_mar20 day.
        assert parse_utc("2020-03-15") == 1584230400.0

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_utc("not a date")

    def test_format_roundtrip(self):
        when = parse_utc("2020-03-15 02:15:00")
        assert format_utc(when) == "2020-03-15 02:15:00"
        assert format_utc(when, with_time=False) == "2020-03-15"


class TestDayMath:
    def test_utc_day_floor(self):
        when = parse_utc("2020-03-15 13:45:00")
        assert utc_day(when) == parse_utc("2020-03-15")

    def test_seconds_into_day(self):
        when = parse_utc("2020-03-15 02:00:00")
        assert seconds_into_day(when) == 7200.0

    def test_day_length_constant(self):
        assert SECONDS_PER_DAY == 86400


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(100.0).now == 100.0

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_to_same_instant_allowed(self):
        clock = SimClock(5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_by(self):
        clock = SimClock(1.0)
        clock.advance_by(2.5)
        assert clock.now == 3.5

    def test_refuses_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(ClockError):
            clock.advance_to(9.0)

    def test_refuses_negative_delta(self):
        with pytest.raises(ClockError):
            SimClock().advance_by(-1.0)
