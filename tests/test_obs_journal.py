"""Run journals: append-only JSONL with tolerant readers."""

import json
import os

import pytest

from repro.obs.journal import (
    RunJournal,
    cell_journal_path,
    journal_dir,
    peak_rss_kb,
    read_journal,
)


class TestRunJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.write("start", name="demo")
            journal.heartbeat(observations=100, elapsed=2.0)
            journal.write("finish", stopped_early=False)
        events = read_journal(path)
        assert [event["event"] for event in events] == [
            "start",
            "heartbeat",
            "finish",
        ]
        assert all("ts" in event for event in events)
        heartbeat = events[1]
        assert heartbeat["observations"] == 100
        assert heartbeat["rate_per_second"] == 50.0
        assert heartbeat["peak_rss_kb"] >= 0

    def test_append_mode_accumulates_across_opens(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        for attempt in (1, 2):
            with RunJournal(path) as journal:
                journal.write("start", attempt=attempt)
        starts = [
            event for event in read_journal(path)
            if event["event"] == "start"
        ]
        assert [event["attempt"] for event in starts] == [1, 2]

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "run.jsonl")
        with RunJournal(path) as journal:
            journal.write("start")
        assert os.path.exists(path)

    def test_reader_tolerates_truncated_tail(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.write("start")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "heartbeat", "obs')  # killed mid-write
        events = read_journal(path)
        assert [event["event"] for event in events] == ["start"]

    def test_post_crash_append_starts_on_fresh_line(self, tmp_path):
        # A writer killed mid-append leaves a torn partial line; the
        # next writer must not glue its first record onto it, or both
        # the fragment *and* that valid event would be discarded.
        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.write("start")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "heartbeat", "obs')  # killed here
        with RunJournal(path) as journal:
            journal.write("attempt-start", attempt=2)
        events = read_journal(path)
        assert [event["event"] for event in events] == [
            "start",
            "attempt-start",
        ]

    def test_reader_skips_blank_and_non_object_lines(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n[1, 2]\n")
            handle.write(json.dumps({"event": "start", "ts": 1.0}) + "\n")
        assert [event["event"] for event in read_journal(path)] == ["start"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_journal(str(tmp_path / "absent.jsonl")) == []

    def test_cell_journal_layout(self):
        assert journal_dir("/cache") == os.path.join("/cache", "journals")
        assert cell_journal_path("/cache", "abcd1234") == os.path.join(
            "/cache", "journals", "abcd1234.jsonl"
        )

    def test_peak_rss_is_positive_here(self):
        assert peak_rss_kb() > 0


class TestTailBytes:
    def write_events(self, path, count):
        with open(path, "w", encoding="utf-8") as handle:
            for index in range(count):
                handle.write(
                    json.dumps({"event": "heartbeat", "ts": float(index)})
                    + "\n"
                )

    def test_small_file_read_in_full(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        self.write_events(path, 5)
        events = read_journal(path, tail_bytes=1 << 20)
        assert len(events) == 5
        assert events[0]["ts"] == 0.0

    def test_large_file_reads_only_the_tail(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        self.write_events(path, 1000)
        full = read_journal(path)
        tail = read_journal(path, tail_bytes=512)
        assert len(tail) < len(full)
        # Tail events are a suffix of the full read, in order.
        assert tail == full[len(full) - len(tail):]
        assert tail[-1]["ts"] == 999.0

    def test_tail_skips_the_partial_first_line(self, tmp_path):
        # Seeking into the middle of a line must not yield a mangled
        # (or coincidentally parseable) half-event.
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"event": "start", "ts": 1.0}) + "\n")
            handle.write(json.dumps({"event": "finish", "ts": 2.0}) + "\n")
        size = os.path.getsize(path)
        events = read_journal(path, tail_bytes=size - 3)
        assert [event["event"] for event in events] == ["finish"]

    def test_tail_bytes_must_be_positive(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        self.write_events(path, 1)
        with pytest.raises(ValueError, match="tail_bytes"):
            read_journal(path, tail_bytes=0)
