"""Unit tests for workload generation (registry, topology, practices)."""

import pytest

from repro.bgp import ASPath, CommunitySet, PathAttributes
from repro.netbase import ASN, Prefix
from repro.policy.engine import PolicyContext
from repro.workloads import (
    AllocationRegistry,
    ASRole,
    GaoRexfordExportFilter,
    Relationship,
    RelationshipImportPolicy,
    REL_CUSTOMER,
    REL_PEER,
    REL_PROVIDER,
    ScrubInternalTags,
    TopologyParams,
    generate_topology,
)
from repro.workloads.practices import CommunityPractice
from repro.bgp.community import Community

CONTEXT = PolicyContext(
    local_asn=ASN(64500),
    peer_asn=ASN(64501),
    prefix=Prefix("203.0.113.0/24"),
)


def attrs(communities=""):
    return PathAttributes(
        as_path=ASPath.from_string("64501 65099"),
        next_hop="10.0.0.1",
        communities=CommunitySet.parse(communities),
    )


class TestRegistry:
    def test_asn_allocation_with_date(self):
        registry = AllocationRegistry()
        registry.allocate_asn(65001, at=100.0)
        assert registry.asn_allocated(65001, 150.0)
        assert not registry.asn_allocated(65001, 50.0)
        assert not registry.asn_allocated(65002, 150.0)

    def test_earlier_allocation_wins(self):
        registry = AllocationRegistry()
        registry.allocate_asn(65001, at=100.0)
        registry.allocate_asn(65001, at=50.0)
        assert registry.asn_allocated(65001, 75.0)

    def test_prefix_covering_block(self):
        registry = AllocationRegistry()
        registry.allocate_prefix("84.205.64.0/19", at=10.0)
        assert registry.prefix_allocated(Prefix("84.205.64.0/24"), 20.0)
        assert not registry.prefix_allocated(Prefix("84.205.64.0/24"), 5.0)
        assert not registry.prefix_allocated(Prefix("10.0.0.0/8"), 20.0)

    def test_prefix_versions_are_separate(self):
        registry = AllocationRegistry()
        registry.allocate_prefix("2001:db8::/32")
        assert registry.prefix_allocated(Prefix("2001:db8::/48"), 1.0)
        assert not registry.prefix_allocated(Prefix("10.0.0.0/8"), 1.0)

    def test_bulk_and_introspection(self):
        registry = AllocationRegistry()
        registry.allocate_all([1, 2], [Prefix("10.0.0.0/8")], at=0.0)
        assert registry.asn_count() == 2
        assert registry.prefix_block_count() == 1
        assert len(registry.records()) == 3


class TestTopologyGeneration:
    def setup_method(self):
        self.params = TopologyParams(
            tier1_count=3, transit_count=6, stub_count=15, seed=42
        )
        self.topology = generate_topology(self.params)

    def test_as_counts(self):
        assert len(self.topology.ases_by_role(ASRole.TIER1)) == 3
        assert len(self.topology.ases_by_role(ASRole.TRANSIT)) == 6
        assert len(self.topology.ases_by_role(ASRole.STUB)) == 15

    def test_deterministic_from_seed(self):
        again = generate_topology(self.params)
        assert sorted(again.ases) == sorted(self.topology.ases)
        assert again.session_count() == self.topology.session_count()

    def test_different_seeds_differ(self):
        other = generate_topology(
            TopologyParams(
                tier1_count=3, transit_count=6, stub_count=15, seed=43
            )
        )
        assert (
            sorted(other.ases) != sorted(self.topology.ases)
            or other.session_count() != self.topology.session_count()
        )

    def test_tier1_clique(self):
        tier1_asns = {
            spec.asn for spec in self.topology.ases_by_role(ASRole.TIER1)
        }
        clique_adjacencies = [
            adj
            for adj in self.topology.adjacencies
            if adj.asn_a in tier1_asns and adj.asn_b in tier1_asns
        ]
        expected_pairs = len(tier1_asns) * (len(tier1_asns) - 1) // 2
        assert len(clique_adjacencies) == expected_pairs
        assert all(
            adj.relationship == Relationship.PEER
            for adj in clique_adjacencies
        )

    def test_every_as_is_connected(self):
        for asn in self.topology.ases:
            assert self.topology.degree(asn) >= 1

    def test_stubs_never_provide_transit(self):
        stub_asns = {
            spec.asn for spec in self.topology.ases_by_role(ASRole.STUB)
        }
        for adj in self.topology.adjacencies:
            if adj.asn_a in stub_asns:
                assert adj.relationship == Relationship.PROVIDER
            # Stubs are never the B side of topologies we generate.
            assert adj.asn_b not in stub_asns or adj.asn_a not in stub_asns

    def test_parallel_links_have_distinct_cities(self):
        for adj in self.topology.adjacencies:
            names = [city.city for city in adj.cities]
            assert len(names) == len(set(names))
            assert adj.link_count >= 1

    def test_prefixes_are_unique(self):
        prefixes = self.topology.all_prefixes()
        assert len(prefixes) == len(set(prefixes))
        assert prefixes  # at least some

    def test_session_count_includes_parallel(self):
        assert (
            self.topology.session_count()
            >= self.topology.adjacency_count()
        )

    def test_relationship_inverse(self):
        assert Relationship.CUSTOMER.inverse() == Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse() == Relationship.CUSTOMER
        assert Relationship.PEER.inverse() == Relationship.PEER


class TestGaoRexfordPolicies:
    def test_import_sets_local_pref_and_tag(self):
        step = RelationshipImportPolicy(64500, Relationship.CUSTOMER)
        result = step.apply(attrs(), CONTEXT)
        assert result.local_pref == 200
        assert Community.of(64500, REL_CUSTOMER) in result.communities

    def test_import_prefers_customer_over_peer_over_provider(self):
        prefs = {
            rel: RelationshipImportPolicy(64500, rel)
            .apply(attrs(), CONTEXT)
            .local_pref
            for rel in Relationship
        }
        assert (
            prefs[Relationship.CUSTOMER]
            > prefs[Relationship.PEER]
            > prefs[Relationship.PROVIDER]
        )

    def test_import_replaces_stale_own_tag(self):
        stale = attrs(f"64500:{REL_PROVIDER}")
        result = RelationshipImportPolicy(
            64500, Relationship.CUSTOMER
        ).apply(stale, CONTEXT)
        assert Community.of(64500, REL_PROVIDER) not in result.communities
        assert Community.of(64500, REL_CUSTOMER) in result.communities

    def test_export_to_customer_sends_everything(self):
        step = GaoRexfordExportFilter(64500, Relationship.CUSTOMER)
        tagged = attrs(f"64500:{REL_PROVIDER}")
        assert step.apply(tagged, CONTEXT) is tagged

    def test_export_to_peer_blocks_peer_and_provider_routes(self):
        step = GaoRexfordExportFilter(64500, Relationship.PEER)
        assert step.apply(attrs(f"64500:{REL_PEER}"), CONTEXT) is None
        assert step.apply(attrs(f"64500:{REL_PROVIDER}"), CONTEXT) is None

    def test_export_to_provider_allows_customer_routes(self):
        step = GaoRexfordExportFilter(64500, Relationship.PROVIDER)
        customer_route = attrs(f"64500:{REL_CUSTOMER}")
        assert step.apply(customer_route, CONTEXT) is customer_route

    def test_export_allows_own_originations(self):
        step = GaoRexfordExportFilter(64500, Relationship.PEER)
        own = attrs("")  # no relationship tag: locally originated
        assert step.apply(own, CONTEXT) is own

    def test_foreign_tags_do_not_trigger_filter(self):
        step = GaoRexfordExportFilter(64500, Relationship.PEER)
        foreign = attrs(f"64999:{REL_PROVIDER}")
        assert step.apply(foreign, CONTEXT) is foreign

    def test_scrub_removes_only_own_tags(self):
        scrub = ScrubInternalTags(64500)
        mixed = attrs(
            f"64500:{REL_CUSTOMER} 64999:{REL_PEER} 3356:300"
        )
        result = scrub.apply(mixed, CONTEXT)
        assert Community.of(64500, REL_CUSTOMER) not in result.communities
        assert Community.of(64999, REL_PEER) in result.communities
        assert Community.parse("3356:300") in result.communities

    def test_scrub_noop_when_clean(self):
        scrub = ScrubInternalTags(64500)
        clean = attrs("3356:300")
        assert scrub.apply(clean, CONTEXT) is clean

    def test_practice_enum_values(self):
        assert CommunityPractice.TAGGER.value == "tagger"
        assert len(CommunityPractice) == 4
