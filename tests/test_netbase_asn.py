"""Unit tests for repro.netbase.asn."""

import pytest

from repro.netbase import ASN, AS_TRANS, parse_asn
from repro.netbase.asn import is_private_asn, is_reserved_asn
from repro.netbase.errors import ASNError


class TestConstruction:
    def test_from_int(self):
        assert int(ASN(3356)) == 3356

    def test_from_asplain_string(self):
        assert ASN("64512") == 64512

    def test_from_asdot_string(self):
        assert ASN("64512.1") == (64512 << 16) | 1

    def test_from_as_prefixed_string(self):
        assert ASN("AS3356") == 3356
        assert ASN("as3356") == 3356

    def test_rejects_out_of_range(self):
        with pytest.raises(ASNError):
            ASN(-1)
        with pytest.raises(ASNError):
            ASN(2**32)

    def test_rejects_garbage_strings(self):
        for bad in ("", "AS", "12.x", "65536.0x", "banana"):
            with pytest.raises(ASNError):
                ASN(bad)

    def test_rejects_asdot_component_overflow(self):
        with pytest.raises(ASNError):
            ASN("65536.1")

    def test_parse_asn_helper(self):
        assert parse_asn("AS20205") == ASN(20205)


class TestClassification:
    def test_16bit_detection(self):
        assert ASN(65535).is_16bit
        assert not ASN(65536).is_16bit

    def test_private_ranges(self):
        assert ASN(64512).is_private
        assert ASN(65534).is_private
        assert ASN(4200000000).is_private
        assert not ASN(3356).is_private

    def test_reserved_ranges(self):
        assert ASN(0).is_reserved
        assert ASN(65535).is_reserved
        assert ASN(64496).is_reserved  # documentation
        assert ASN(4294967295).is_reserved
        assert not ASN(3356).is_reserved

    def test_as_trans_not_public(self):
        assert not ASN(AS_TRANS).is_public

    def test_public(self):
        assert ASN(3356).is_public
        assert not ASN(64512).is_public

    def test_module_level_helpers(self):
        assert is_private_asn(64512)
        assert is_reserved_asn(0)
        assert not is_private_asn(1)
        assert not is_reserved_asn(1)


class TestRendering:
    def test_asdot_16bit_stays_plain(self):
        assert ASN(3356).to_asdot() == "3356"

    def test_asdot_32bit(self):
        assert ASN((64512 << 16) | 1).to_asdot() == "64512.1"

    def test_str_and_repr(self):
        assert str(ASN(3356)) == "3356"
        assert repr(ASN(3356)) == "ASN(3356)"

    def test_behaves_as_int(self):
        assert ASN(100) + 1 == 101
        assert ASN(100) == 100
        assert hash(ASN(100)) == hash(100)
        assert ASN(5) < ASN(6)
