"""Unit + property tests for the prefix trie."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netbase import Prefix
from repro.rib.trie import PrefixTrie


def p(text):
    return Prefix(text)


class TestBasics:
    def setup_method(self):
        self.trie = PrefixTrie()

    def test_insert_get(self):
        self.trie.insert(p("10.0.0.0/8"), "a")
        assert self.trie.get(p("10.0.0.0/8")) == "a"
        assert self.trie.get(p("10.0.0.0/9")) is None
        assert len(self.trie) == 1

    def test_mapping_protocol(self):
        self.trie[p("10.0.0.0/8")] = "a"
        assert self.trie[p("10.0.0.0/8")] == "a"
        assert p("10.0.0.0/8") in self.trie
        assert p("11.0.0.0/8") not in self.trie
        with pytest.raises(KeyError):
            self.trie[p("11.0.0.0/8")]

    def test_replace_keeps_size(self):
        self.trie.insert(p("10.0.0.0/8"), "a")
        self.trie.insert(p("10.0.0.0/8"), "b")
        assert len(self.trie) == 1
        assert self.trie.get(p("10.0.0.0/8")) == "b"

    def test_remove(self):
        self.trie.insert(p("10.0.0.0/8"), "a")
        assert self.trie.remove(p("10.0.0.0/8")) == "a"
        assert len(self.trie) == 0
        assert self.trie.remove(p("10.0.0.0/8")) is None

    def test_remove_keeps_other_branches(self):
        self.trie.insert(p("10.0.0.0/8"), "a")
        self.trie.insert(p("10.0.0.0/16"), "b")
        self.trie.remove(p("10.0.0.0/8"))
        assert self.trie.get(p("10.0.0.0/16")) == "b"

    def test_versions_are_separate(self):
        self.trie.insert(p("10.0.0.0/8"), "v4")
        self.trie.insert(p("2001:db8::/32"), "v6")
        assert self.trie.longest_match(p("2001:db8::/48"))[1] == "v6"
        assert self.trie.longest_match(p("10.1.0.0/16"))[1] == "v4"

    def test_default_route(self):
        self.trie.insert(p("0.0.0.0/0"), "default")
        match = self.trie.longest_match(p("192.0.2.0/24"))
        assert match == (p("0.0.0.0/0"), "default")


class TestLongestMatch:
    def setup_method(self):
        self.trie = PrefixTrie()
        self.trie.insert(p("10.0.0.0/8"), "block")
        self.trie.insert(p("10.2.0.0/16"), "subnet")
        self.trie.insert(p("10.2.3.0/24"), "site")

    def test_most_specific_wins(self):
        assert self.trie.longest_match(p("10.2.3.0/24"))[1] == "site"
        assert self.trie.longest_match(p("10.2.4.0/24"))[1] == "subnet"
        assert self.trie.longest_match(p("10.9.0.0/16"))[1] == "block"

    def test_no_match(self):
        assert self.trie.longest_match(p("192.0.2.0/24")) is None

    def test_match_returns_stored_prefix(self):
        matched, _ = self.trie.longest_match(p("10.2.3.128/25"))
        assert matched == p("10.2.3.0/24")


class TestCoverQueries:
    def setup_method(self):
        self.trie = PrefixTrie()
        for text in ("10.0.0.0/8", "10.2.0.0/16", "10.2.3.0/24",
                     "11.0.0.0/8"):
            self.trie.insert(p(text), text)

    def test_covered_by(self):
        covered = {str(px) for px, _ in self.trie.covered_by(p("10.0.0.0/8"))}
        assert covered == {"10.0.0.0/8", "10.2.0.0/16", "10.2.3.0/24"}

    def test_covering(self):
        covering = {
            str(px) for px, _ in self.trie.covering(p("10.2.3.0/24"))
        }
        assert covering == {"10.0.0.0/8", "10.2.0.0/16", "10.2.3.0/24"}

    def test_overlaps(self):
        assert self.trie.overlaps(p("10.2.0.0/15"))  # covers 10.2/16
        assert self.trie.overlaps(p("10.2.3.4/32"))  # covered
        assert not self.trie.overlaps(p("192.0.2.0/24"))

    def test_items_enumerates_everything(self):
        assert len(list(self.trie.items())) == 4


class TestHostAndDefaultRoutes:
    """Cover queries at both extremes of the length range: /32 host
    routes (leaf depth) and the /0 default route (the root node)."""

    def setup_method(self):
        self.trie = PrefixTrie()
        for text in (
            "0.0.0.0/0",
            "10.0.0.0/8",
            "10.2.3.0/24",
            "10.2.3.4/32",
            "192.0.2.1/32",
        ):
            self.trie.insert(p(text), text)

    def test_covered_by_default_route_returns_all_v4(self):
        covered = {str(px) for px, _ in self.trie.covered_by(p("0.0.0.0/0"))}
        assert covered == {
            "0.0.0.0/0",
            "10.0.0.0/8",
            "10.2.3.0/24",
            "10.2.3.4/32",
            "192.0.2.1/32",
        }

    def test_covered_by_host_route_is_itself_only(self):
        covered = list(self.trie.covered_by(p("10.2.3.4/32")))
        assert covered == [(p("10.2.3.4/32"), "10.2.3.4/32")]

    def test_covering_host_route_walks_full_chain(self):
        covering = {
            str(px) for px, _ in self.trie.covering(p("10.2.3.4/32"))
        }
        assert covering == {
            "0.0.0.0/0",
            "10.0.0.0/8",
            "10.2.3.0/24",
            "10.2.3.4/32",
        }

    def test_covering_default_route_is_itself_only(self):
        covering = list(self.trie.covering(p("0.0.0.0/0")))
        assert covering == [(p("0.0.0.0/0"), "0.0.0.0/0")]

    def test_covering_isolated_host_includes_default(self):
        covering = {
            str(px) for px, _ in self.trie.covering(p("192.0.2.1/32"))
        }
        assert covering == {"0.0.0.0/0", "192.0.2.1/32"}

    def test_overlaps_via_stored_default_route(self):
        # The default route overlaps everything in its address family.
        assert self.trie.overlaps(p("203.0.113.0/24"))
        assert self.trie.overlaps(p("255.255.255.255/32"))

    def test_overlaps_host_routes_without_default(self):
        trie = PrefixTrie()
        trie.insert(p("10.2.3.4/32"), "host")
        assert trie.overlaps(p("10.2.3.4/32"))
        assert trie.overlaps(p("10.0.0.0/8"))  # covers the host route
        assert not trie.overlaps(p("10.2.3.5/32"))  # sibling host
        assert not trie.overlaps(p("11.0.0.0/8"))

    def test_overlaps_probe_with_default_probe(self):
        trie = PrefixTrie()
        trie.insert(p("198.51.100.0/24"), "doc")
        # A /0 probe overlaps any stored prefix of the same version...
        assert trie.overlaps(p("0.0.0.0/0"))
        # ...but not across address families.
        assert not trie.overlaps(p("::/0"))

    def test_longest_match_host_route_beats_default(self):
        assert self.trie.longest_match(p("10.2.3.4/32"))[1] == "10.2.3.4/32"
        assert self.trie.longest_match(p("10.2.3.5/32"))[1] == "10.2.3.0/24"
        assert self.trie.longest_match(p("172.16.0.0/12"))[1] == "0.0.0.0/0"

    def test_v6_default_route_is_separate(self):
        self.trie.insert(p("::/0"), "v6-default")
        assert self.trie.longest_match(p("2001:db8::/32"))[1] == "v6-default"
        covered_v6 = {str(px) for px, _ in self.trie.covered_by(p("::/0"))}
        assert covered_v6 == {"::/0"}


@st.composite
def _prefixes(draw):
    length = draw(st.integers(min_value=0, max_value=28))
    network = draw(st.integers(min_value=0, max_value=(1 << length) - 1 if length else 0))
    return Prefix.from_int(network << (32 - length) if length else 0, length, 4)


class TestProperties:
    @given(st.dictionaries(_prefixes(), st.integers(), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_matches_dict_semantics(self, entries):
        trie = PrefixTrie()
        for prefix, value in entries.items():
            trie.insert(prefix, value)
        assert len(trie) == len(entries)
        for prefix, value in entries.items():
            assert trie.get(prefix) == value
        assert dict(trie.items()) == entries

    @given(
        st.dictionaries(_prefixes(), st.integers(), min_size=1, max_size=30),
        _prefixes(),
    )
    @settings(max_examples=100, deadline=None)
    def test_longest_match_agrees_with_linear_scan(self, entries, probe):
        trie = PrefixTrie()
        for prefix, value in entries.items():
            trie.insert(prefix, value)
        expected = None
        for prefix in entries:
            if prefix.contains(probe):
                if expected is None or prefix.length > expected.length:
                    expected = prefix
        result = trie.longest_match(probe)
        if expected is None:
            assert result is None
        else:
            assert result == (expected, entries[expected])

    @given(st.lists(_prefixes(), min_size=1, max_size=30, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_remove_everything_empties_the_trie(self, prefixes):
        trie = PrefixTrie()
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        for prefix in prefixes:
            assert trie.remove(prefix) is not None
        assert len(trie) == 0
        assert list(trie.items()) == []
