"""Unit tests for nn root-cause attribution."""

import pytest

from repro.analysis.duplicates import (
    DuplicateAttributor,
    DuplicateCause,
    attribute_duplicates,
)
from repro.analysis.observations import (
    Observation,
    ObservationKind,
    SessionKey,
)
from repro.bgp import ASPath, CommunitySet
from repro.netbase import Prefix, parse_utc

SESSION = SessionKey("rrc00", 20205, "10.0.0.1")
PREFIX = Prefix("84.205.64.0/24")
DAY = parse_utc("2020-03-15")
WITHDRAW_PHASE = DAY + 2 * 3600
QUIET_TIME = DAY + 3600  # outside any beacon phase


def announce(t, path="20811 3356 12654", communities=""):
    return Observation(
        timestamp=t,
        session=SESSION,
        prefix=PREFIX,
        kind=ObservationKind.ANNOUNCE,
        as_path=ASPath.from_string(path),
        communities=CommunitySet.parse(communities),
    )


def withdraw(t):
    return Observation(
        timestamp=t,
        session=SESSION,
        prefix=PREFIX,
        kind=ObservationKind.WITHDRAW,
    )


class TestAttribution:
    def test_post_withdrawal_duplicate_is_session_reset(self):
        report = attribute_duplicates(
            [
                announce(QUIET_TIME),
                withdraw(QUIET_TIME + 100),
                announce(QUIET_TIME + 110),  # identical re-announcement
            ]
        )
        assert report.counts[DuplicateCause.SESSION_RESET] == 1

    def test_cleaned_exploration_in_withdraw_phase(self):
        report = attribute_duplicates(
            [
                announce(DAY + 60),
                announce(WITHDRAW_PHASE + 60),
                announce(WITHDRAW_PHASE + 70),
            ]
        )
        # Two duplicates; both in the withdrawal phase on a
        # community-free stream, no preceding withdrawal.
        assert report.counts[DuplicateCause.CLEANED_EXPLORATION] == 2

    def test_quiet_time_duplicate_is_med_or_internal(self):
        report = attribute_duplicates(
            [announce(QUIET_TIME), announce(QUIET_TIME + 500)]
        )
        assert report.counts[DuplicateCause.MED_OR_INTERNAL] == 1

    def test_community_bearing_stream_is_not_cleaned_exploration(self):
        report = attribute_duplicates(
            [
                announce(DAY + 60, communities="3356:1"),
                announce(WITHDRAW_PHASE + 60, communities="3356:1"),
            ]
        )
        assert report.counts[DuplicateCause.CLEANED_EXPLORATION] == 0
        assert report.counts[DuplicateCause.UNKNOWN] == 1

    def test_reset_window_boundary(self):
        attributor = DuplicateAttributor()
        attributor.observe(announce(QUIET_TIME))
        attributor.observe(withdraw(QUIET_TIME + 100))
        # Far outside the reset window: not a reset.
        cause = attributor.observe(
            announce(QUIET_TIME + 100 + attributor.RESET_WINDOW + 200)
        )
        assert cause == DuplicateCause.MED_OR_INTERNAL

    def test_non_duplicates_are_not_attributed(self):
        report = attribute_duplicates(
            [
                announce(QUIET_TIME),
                announce(QUIET_TIME + 10, path="20811 6939 12654"),  # pn
            ]
        )
        assert report.total == 0

    def test_report_shares(self):
        report = attribute_duplicates(
            [
                announce(QUIET_TIME),
                announce(QUIET_TIME + 500),
                announce(QUIET_TIME + 1000),
            ]
        )
        assert report.total == 2
        assert report.share(DuplicateCause.MED_OR_INTERNAL) == 1.0
        rows = report.as_rows()
        assert any(
            row[0] == "med_or_internal" and row[1] == 2 for row in rows
        )

    def test_empty_report(self):
        report = attribute_duplicates([])
        assert report.total == 0
        assert report.share(DuplicateCause.UNKNOWN) == 0.0


class TestIntegrationWithGenerators:
    """The synthetic internet's nn generators land in their buckets."""

    @pytest.fixture(scope="class")
    def small_day(self):
        from repro.workloads import InternetConfig, InternetModel

        return InternetModel(InternetConfig.small()).run()

    def test_attribution_covers_most_duplicates(self, small_day):
        from repro.analysis import observations_from_collector

        observations = []
        for collector in small_day.collectors():
            observations.extend(
                observations_from_collector(collector)
            )
        observations.sort(key=lambda obs: obs.timestamp)
        report = attribute_duplicates(observations)
        assert report.total > 0
        # The three understood causes should dominate over unknown.
        understood = (
            report.share(DuplicateCause.SESSION_RESET)
            + report.share(DuplicateCause.CLEANED_EXPLORATION)
            + report.share(DuplicateCause.MED_OR_INTERNAL)
        )
        assert understood > 0.5
