"""The decode-and-classify read path: damage tolerance and memo caches.

The read-path overhaul (buffered MRT reader, attribute-bytes memo,
NLRI/address interning) must be a pure optimization: identical decoded
values, identical classification, damage handled exactly as before —
plus the new guarantees pinned here: tolerant-mode drops are counted
and surfaced, the BGP4MP_ET empty-body case is damage (not a decode
attempt), and every cache is bounded.
"""

import dataclasses
import io
import json
import struct

import pytest

from repro.analysis.classify import UpdateClassifier
from repro.bgp import wire
from repro.bgp.aspath import ASPath
from repro.bgp.community import CommunitySet
from repro.bgp.attributes import PathAttributes
from repro.bgp.message import UpdateMessage
from repro.mrt import records as mrt_records
from repro.mrt.reader import MRTReader
from repro.mrt.records import Bgp4mpMessage, MRTError
from repro.mrt.writer import dump_records
from repro.netbase import prefix as prefix_module
from repro.netbase.prefix import Prefix
from repro.pipeline import replay_mrt
from repro.scenarios import (
    get_scenario,
    result_from_json,
    result_to_json,
    run_scenario,
)


def update(path="20205 3356 174 12654", prefix="84.205.64.0/24",
           communities="3356:300"):
    return UpdateMessage.announce(
        Prefix(prefix),
        PathAttributes(
            as_path=ASPath.from_string(path),
            next_hop="10.0.0.1",
            communities=CommunitySet.parse(communities),
        ),
    )


def record(timestamp=1584230400.25, message=None, peer_asn=20205):
    return Bgp4mpMessage(
        timestamp=timestamp,
        peer_asn=peer_asn,
        local_asn=12456,
        peer_address="192.0.2.2",
        local_address="192.0.2.1",
        message=message or update(),
    )


@pytest.fixture
def all_memos_on():
    """Reset every decode memo before and after (tests mutate them)."""
    wire.set_decode_memo(True)
    prefix_module.set_nlri_memo(True)
    mrt_records.set_address_memo(True)
    yield
    wire.set_decode_memo(True)
    prefix_module.set_nlri_memo(True)
    mrt_records.set_address_memo(True)


def et_record_bytes(length: int, subtype: int = 4) -> bytes:
    """A raw BGP4MP_ET record with the given body *length* claim."""
    body = struct.pack("!I", 123456) + b"\x00" * (length - 4)
    return struct.pack("!IHHI", 1584230400, 17, subtype, length) + body


# ----------------------------------------------------------------------
# BGP4MP_ET empty-body guard
# ----------------------------------------------------------------------
class TestEtEmptyBodyGuard:
    def test_strict_mode_raises(self):
        with pytest.raises(MRTError, match="BGP4MP_ET record too short"):
            list(MRTReader(io.BytesIO(et_record_bytes(4))))

    def test_tolerant_mode_counts_one_error(self):
        reader = MRTReader(io.BytesIO(et_record_bytes(4)), tolerant=True)
        assert list(reader) == []
        assert reader.error_records == 1
        assert reader.skipped_records == 0

    def test_non_message_subtype_is_damage_not_skip(self):
        # length == 4 leaves no body at all, so even a STATE_CHANGE
        # subtype cannot be interpreted; it is damage, not a skip.
        reader = MRTReader(
            io.BytesIO(et_record_bytes(4, subtype=0)), tolerant=True
        )
        assert list(reader) == []
        assert reader.error_records == 1

    def test_damage_is_recoverable_midstream(self):
        # The length framing is intact, so the record after the
        # degenerate one must still decode.
        data = et_record_bytes(4) + dump_records([record()])
        reader = MRTReader(io.BytesIO(data), tolerant=True)
        assert len(list(reader)) == 1
        assert reader.error_records == 1


# ----------------------------------------------------------------------
# tolerant-mode mid-stream damage
# ----------------------------------------------------------------------
class TestTolerantMidStream:
    def test_truncated_header_after_good_record(self):
        good = dump_records([record()])
        data = good + good[:7]  # 7 bytes of a second header
        reader = MRTReader(io.BytesIO(data), tolerant=True)
        assert len(list(reader)) == 1
        assert reader.error_records == 1

    def test_truncated_body_after_good_record(self):
        good = dump_records([record()])
        second = dump_records([record(timestamp=1584230401.5)])
        data = good + second[: len(second) - 9]
        reader = MRTReader(io.BytesIO(data), tolerant=True)
        assert len(list(reader)) == 1
        assert reader.error_records == 1

    def test_damaged_record_between_two_good_ones(self):
        first = dump_records([record(timestamp=1584230400.0)])
        middle = bytearray(dump_records([record(timestamp=1584230401.0)]))
        # Corrupt the BGP marker inside the middle record's message:
        # 16-byte ET header + 20-byte IPv4 AS4 envelope = offset 36.
        middle[36] = 0x00
        last = dump_records([record(timestamp=1584230402.0)])
        reader = MRTReader(
            io.BytesIO(first + bytes(middle) + last), tolerant=True
        )
        yielded = list(reader)
        assert [r.timestamp for r in yielded] == [
            1584230400.0, 1584230402.0,
        ]
        assert reader.error_records == 1
        assert reader.skipped_records == 0

    def test_strict_mode_still_raises_between_good_ones(self):
        first = dump_records([record(timestamp=1584230400.0)])
        middle = bytearray(dump_records([record(timestamp=1584230401.0)]))
        middle[36] = 0x00
        with pytest.raises(MRTError):
            list(MRTReader(io.BytesIO(first + bytes(middle))))

    def test_large_archive_spans_read_chunks(self):
        # > 64 KiB so the buffered reader refills and compacts; every
        # record must survive the chunk boundaries byte-exactly.
        originals = [
            record(timestamp=1584230400.0 + i, peer_asn=20205 + (i % 7))
            for i in range(1500)
        ]
        data = dump_records(originals)
        assert len(data) > 2 * 64 * 1024
        decoded = list(MRTReader(io.BytesIO(data)))
        assert len(decoded) == 1500
        assert [r.timestamp for r in decoded] == [
            o.timestamp for o in originals
        ]
        assert all(
            d.message == o.message for d, o in zip(decoded, originals)
        )

    def make_mp_attr_record_bytes(self, mp_type: int, mp_value: bytes):
        """A raw ET record whose UPDATE carries a short MP attribute."""
        from repro.bgp.constants import MARKER

        attrs = bytearray()
        attrs += bytes([0x40, 1, 1, 0])  # ORIGIN IGP
        attrs += bytes([0x40, 2, 6, 2, 1]) + struct.pack("!I", 20205)
        attrs += bytes([0x40, 3, 4, 10, 0, 0, 1])  # NEXT_HOP
        attrs += bytes([0x80, mp_type, len(mp_value)]) + mp_value
        nlri = Prefix("84.205.64.0/24").to_nlri()
        body = (
            struct.pack("!H", 0)
            + struct.pack("!H", len(attrs))
            + bytes(attrs)
            + nlri
        )
        message = MARKER + struct.pack("!HB", 19 + len(body), 2) + body
        envelope = (
            struct.pack("!IIHH", 20205, 12456, 0, 1)
            + bytes([192, 0, 2, 2])
            + bytes([192, 0, 2, 1])
        )
        return (
            struct.pack(
                "!IHHI", 1584230400, 17, 4,
                4 + len(envelope) + len(message),
            )
            + struct.pack("!I", 0)
            + envelope
            + message
        )

    @pytest.mark.parametrize(
        "mp_type,mp_value",
        [(14, b"\x00\x02"), (14, b""), (15, b"\x00")],
    )
    def test_short_mp_attribute_is_damage_not_a_crash(
        self, mp_type, mp_value
    ):
        # struct.error is not ValueError: without an explicit length
        # guard a short MP_(UN)REACH_NLRI would escape tolerant mode
        # and crash the whole replay.
        damaged = self.make_mp_attr_record_bytes(mp_type, mp_value)
        good = dump_records([record()])
        reader = MRTReader(io.BytesIO(damaged + good), tolerant=True)
        assert len(list(reader)) == 1
        assert reader.error_records == 1

    def test_skipped_types_spanning_chunks(self):
        # An unmodeled record with a body larger than the read chunk
        # is stepped over without being materialized or decoded.
        alien = struct.pack("!IHHI", 0, 13, 1, 100_000) + b"\x7f" * 100_000
        data = alien + dump_records([record()])
        reader = MRTReader(io.BytesIO(data))
        assert len(list(reader)) == 1
        assert reader.skipped_records == 1


# ----------------------------------------------------------------------
# decode memo caches
# ----------------------------------------------------------------------
class TestDecodeMemo:
    def archive(self, count=40):
        recs = []
        for index in range(count):
            recs.append(
                record(
                    timestamp=1584230400.0 + index,
                    message=update(
                        path="20205 3356 174 12654",
                        communities="3356:300 3356:2001",
                    ),
                )
            )
        return dump_records(recs)

    def test_cached_decode_is_identity_interned(self, all_memos_on):
        data = self.archive()
        decoded = list(MRTReader(io.BytesIO(data)))
        first = decoded[0].message.attributes
        for item in decoded[1:]:
            attrs = item.message.attributes
            assert attrs is first
            assert attrs.as_path is first.as_path
            assert attrs.communities is first.communities
        prefixes = {id(item.message.announced[0]) for item in decoded}
        assert len(prefixes) == 1

    def test_cached_equals_uncached(self, all_memos_on):
        data = self.archive()
        fast = list(MRTReader(io.BytesIO(data)))
        wire.set_decode_memo(False)
        prefix_module.set_nlri_memo(False)
        mrt_records.set_address_memo(False)
        naive = list(MRTReader(io.BytesIO(data)))
        assert len(fast) == len(naive)
        for cached, plain in zip(fast, naive):
            assert cached.message == plain.message
            assert cached.timestamp == plain.timestamp
            assert cached.peer_address == plain.peer_address
            assert int(cached.peer_asn) == int(plain.peer_asn)
        # The naive run interned nothing.
        attrs = [item.message.attributes for item in naive]
        assert attrs[0] is not attrs[1]
        assert attrs[0] == attrs[1]

    def test_classification_identical_with_and_without_memo(
        self, all_memos_on
    ):
        recs = []
        for index in range(30):
            recs.append(
                record(
                    timestamp=1584230400.0 + index,
                    message=update(
                        communities="3356:300"
                        if index % 3
                        else "3356:300 64500:1",
                    ),
                )
            )
        data = dump_records(recs)

        def classify():
            classifier = UpdateClassifier()
            replay_mrt(io.BytesIO(data), classifier, collector="rrc00")
            return classifier.counts.counts

        fast = dict(classify())
        wire.set_decode_memo(False)
        prefix_module.set_nlri_memo(False)
        mrt_records.set_address_memo(False)
        assert dict(classify()) == fast

    def test_attr_block_memo_is_bounded(self, all_memos_on, monkeypatch):
        monkeypatch.setattr(wire, "_MEMO_LIMIT", 8)
        for index in range(50):
            data = dump_records(
                [record(message=update(path=f"20205 {3000 + index}"))]
            )
            list(MRTReader(io.BytesIO(data)))
        sizes = wire.decode_memo_sizes()
        assert sizes["attr_block"] <= 8
        assert sizes["as_path"] <= 8

    def test_nlri_memo_is_bounded(self, all_memos_on, monkeypatch):
        monkeypatch.setattr(prefix_module, "_NLRI_MEMO_LIMIT", 8)
        for index in range(50):
            Prefix.from_nlri(bytes([24, 10, index, 0]), 4)
        assert prefix_module.nlri_memo_size() <= 8

    def test_address_memo_is_bounded(self, all_memos_on, monkeypatch):
        monkeypatch.setattr(mrt_records, "_ADDRESS_MEMO_LIMIT", 8)
        for index in range(50):
            mrt_records.unpack_address(1, bytes([192, 0, 2, index]))
        assert mrt_records.address_memo_size() <= 8

    def test_nlri_memo_round_trip_identity(self, all_memos_on):
        wire_bytes = Prefix("84.205.64.0/24").to_nlri()
        first, consumed_a = Prefix.from_nlri(wire_bytes, 4)
        second, consumed_b = Prefix.from_nlri(wire_bytes, 4)
        assert first is second
        assert consumed_a == consumed_b == 4
        assert str(first) == "84.205.64.0/24"


# ----------------------------------------------------------------------
# reader stats surfaced through replay and the scenario result
# ----------------------------------------------------------------------
class TestReaderStatsSurfacing:
    def damaged_archive(self, tmp_path):
        good = dump_records(
            [record(timestamp=1584230400.0 + i) for i in range(3)]
        )
        middle = bytearray(dump_records([record(timestamp=1584230410.0)]))
        middle[36] = 0x00  # corrupt the BGP marker
        alien = struct.pack("!IHHI", 0, 13, 1, 4) + b"\x00" * 4
        path = tmp_path / "damaged.mrt"
        path.write_bytes(alien + good + bytes(middle))
        return str(path)

    def test_replay_mrt_fills_stats(self, tmp_path):
        path = self.damaged_archive(tmp_path)
        classifier = UpdateClassifier()
        stats: dict = {}
        delivered = replay_mrt(
            path, classifier, collector="rrc00", stats=stats
        )
        assert delivered == 3
        assert stats == {
            "records": 3,
            "skipped_records": 1,
            "error_records": 1,
            "messages": 3,
            "observations": 3,
        }

    def test_scenario_result_carries_reader_stats(self, tmp_path):
        path = self.damaged_archive(tmp_path)
        spec = get_scenario("mrt-replay")
        spec = dataclasses.replace(
            spec, mrt=dataclasses.replace(spec.mrt, path=path)
        )
        result = run_scenario(spec)
        assert result.reader_stats["records"] == 3
        assert result.reader_stats["skipped_records"] == 1
        assert result.reader_stats["error_records"] == 1

    def test_reader_stats_round_trip_json(self, tmp_path):
        path = self.damaged_archive(tmp_path)
        spec = get_scenario("mrt-replay")
        spec = dataclasses.replace(
            spec, mrt=dataclasses.replace(spec.mrt, path=path)
        )
        result = run_scenario(spec)
        payload = json.loads(result_to_json(result))
        assert payload["reader_stats"]["error_records"] == 1
        assert payload["reader_stats"]["skipped_records"] == 1
        rebuilt = result_from_json(result_to_json(result))
        assert rebuilt.reader_stats == result.reader_stats

    def test_non_mrt_results_omit_reader_stats(self):
        result = run_scenario(get_scenario("lab-baseline"))
        assert result.reader_stats == {}
        assert "reader_stats" not in json.loads(result_to_json(result))

    def test_cli_json_includes_reader_stats(self, tmp_path, capsys):
        from repro.cli import main

        path = self.damaged_archive(tmp_path)
        code = main(
            ["scenario", "run", "mrt-replay", "--input", path, "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reader_stats"]["skipped_records"] == 1
        assert payload["reader_stats"]["error_records"] == 1

    def test_cli_table_mentions_reader_stats(self, tmp_path, capsys):
        from repro.cli import main

        path = self.damaged_archive(tmp_path)
        code = main(["scenario", "run", "mrt-replay", "--input", path])
        assert code == 0
        out = capsys.readouterr().out
        assert "mrt reader: 3 records decoded" in out
        assert "1 damaged-dropped" in out
