"""Unit tests for repro.bgp.community."""

import pytest

from repro.bgp import (
    BLACKHOLE,
    Community,
    CommunitySet,
    LargeCommunity,
    NO_ADVERTISE,
    NO_EXPORT,
)
from repro.bgp.errors import AttributeError_


class TestCommunity:
    def test_parse(self):
        community = Community.parse("3356:300")
        assert community.asn == 3356
        assert community.local_value == 300

    def test_of(self):
        assert Community.of(3356, 300) == Community.parse("3356:300")

    def test_parse_rejects_malformed(self):
        for bad in ("3356", "a:b", "3356:70000", "70000:1", ":"):
            with pytest.raises(AttributeError_):
                Community.parse(bad)

    def test_of_rejects_out_of_range(self):
        with pytest.raises(AttributeError_):
            Community.of(0x10000, 1)

    def test_value_range_check(self):
        with pytest.raises(AttributeError_):
            Community(-1)
        with pytest.raises(AttributeError_):
            Community(2**32)

    def test_wire_roundtrip(self):
        community = Community.parse("64500:12345")
        assert Community.from_bytes(community.to_bytes()) == community

    def test_from_bytes_rejects_bad_length(self):
        with pytest.raises(AttributeError_):
            Community.from_bytes(b"\x00\x01\x02")

    def test_well_known(self):
        assert NO_EXPORT.is_well_known
        assert NO_ADVERTISE.is_well_known
        assert BLACKHOLE.is_well_known
        assert str(BLACKHOLE) == "65535:666"
        assert not Community.parse("3356:300").is_well_known

    def test_reserved_low(self):
        assert Community.parse("0:1").is_reserved_low

    def test_ordering_and_hash(self):
        low = Community.parse("1:1")
        high = Community.parse("2:0")
        assert low < high
        assert len({low, Community.parse("1:1")}) == 1

    def test_str_roundtrip(self):
        assert str(Community.parse("20205:64")) == "20205:64"


class TestLargeCommunity:
    def test_parse(self):
        large = LargeCommunity.parse("64496:1:2")
        assert large.global_admin == 64496
        assert (large.data1, large.data2) == (1, 2)

    def test_parse_rejects_malformed(self):
        for bad in ("1:2", "1:2:3:4", "a:b:c"):
            with pytest.raises(AttributeError_):
                LargeCommunity.parse(bad)

    def test_field_range_check(self):
        with pytest.raises(AttributeError_):
            LargeCommunity(2**32, 0, 0)

    def test_wire_roundtrip(self):
        large = LargeCommunity(4200000000, 7, 9)
        assert LargeCommunity.from_bytes(large.to_bytes()) == large

    def test_from_bytes_rejects_bad_length(self):
        with pytest.raises(AttributeError_):
            LargeCommunity.from_bytes(b"\x00" * 11)

    def test_ordering(self):
        assert LargeCommunity(1, 0, 0) < LargeCommunity(1, 0, 1)


class TestCommunitySet:
    def test_parse_mixed(self):
        mixed = CommunitySet.parse("3356:300 64496:1:2 65535:666")
        assert len(mixed.classic) == 2
        assert len(mixed.large) == 1
        assert len(mixed) == 3

    def test_empty_singleton(self):
        assert CommunitySet.empty().is_empty()
        assert not CommunitySet.empty()
        assert CommunitySet.parse("1:1")

    def test_equality_ignores_order(self):
        first = CommunitySet.parse("1:1 2:2")
        second = CommunitySet.parse("2:2 1:1")
        assert first == second
        assert hash(first) == hash(second)

    def test_add_remove_are_pure(self):
        base = CommunitySet.parse("1:1")
        bigger = base.add(Community.parse("2:2"))
        assert len(base) == 1
        assert len(bigger) == 2
        smaller = bigger.remove(Community.parse("1:1"))
        assert Community.parse("1:1") not in smaller

    def test_remove_missing_is_noop(self):
        base = CommunitySet.parse("1:1")
        assert base.remove(Community.parse("9:9")) == base

    def test_union(self):
        union = CommunitySet.parse("1:1").union(CommunitySet.parse("2:2"))
        assert union == CommunitySet.parse("1:1 2:2")

    def test_without_asn(self):
        mixed = CommunitySet.parse("3356:1 3356:2 174:1 3356:5:5")
        cleaned = mixed.without_asn(3356)
        assert cleaned == CommunitySet.parse("174:1")

    def test_only_asn(self):
        mixed = CommunitySet.parse("3356:1 174:1")
        assert mixed.only_asn(3356) == CommunitySet.parse("3356:1")

    def test_filter(self):
        mixed = CommunitySet.parse("1:100 1:200")
        kept = mixed.filter(lambda c: c.local_value >= 200)
        assert kept == CommunitySet.parse("1:200")

    def test_contains(self):
        mixed = CommunitySet.parse("1:1 2:2:2")
        assert Community.parse("1:1") in mixed
        assert LargeCommunity.parse("2:2:2") in mixed
        assert Community.parse("9:9") not in mixed

    def test_iteration_is_sorted(self):
        mixed = CommunitySet.parse("2:2 1:1 3:3:3")
        rendered = str(mixed)
        assert rendered == "1:1 2:2 3:3:3"

    def test_rejects_non_communities(self):
        with pytest.raises(AttributeError_):
            CommunitySet(classic=("1:1",))  # type: ignore[arg-type]
        with pytest.raises(AttributeError_):
            CommunitySet.empty().add("1:1")  # type: ignore[arg-type]

    def test_cleared(self):
        assert CommunitySet.parse("1:1").cleared().is_empty()
