"""Parallel sweep runner: determinism, caching, seed expansion."""

import json
import os

import pytest

from repro import durable
from repro.scenarios import (
    InternetSpec,
    LabSpec,
    ScenarioSpec,
    SweepRunner,
    expand_seeds,
    run_sweep,
    spec_hash,
)

TINY = InternetSpec(
    tier1_count=2,
    transit_count=3,
    stub_count=5,
    beacon_count=1,
    link_flaps=2,
    prefix_flaps=1,
    med_churn_events=1,
    community_churn_events=2,
    prepend_change_events=1,
    collector_session_resets=1,
)


def tiny_spec(seed: int = 5) -> ScenarioSpec:
    return ScenarioSpec(
        name="runner-tiny",
        kind="internet",
        seed=seed,
        internet=TINY,
        collectors=("update_counts", "duplicates"),
    )


class TestExpandSeeds:
    def test_names_and_seeds(self):
        specs = expand_seeds(tiny_spec(), (3, 9))
        assert [spec.name for spec in specs] == [
            "runner-tiny@seed3",
            "runner-tiny@seed9",
        ]
        assert [spec.seed for spec in specs] == [3, 9]

    def test_variants_hash_differently(self):
        specs = expand_seeds(tiny_spec(), (1, 2))
        assert spec_hash(specs[0]) != spec_hash(specs[1])


class TestDeterminism:
    def test_same_seed_identical_results_across_worker_counts(self):
        specs = expand_seeds(tiny_spec(), (1, 2))
        sequential = run_sweep(specs, workers=1)
        parallel = run_sweep(specs, workers=2)
        assert len(sequential.results) == len(parallel.results) == 2
        for left, right in zip(sequential.results, parallel.results):
            assert left.spec_hash == right.spec_hash
            assert left.metrics == right.metrics

    def test_lab_sweep_parallel_determinism(self):
        spec = ScenarioSpec(
            name="runner-lab",
            kind="lab",
            lab=LabSpec(experiments=("exp2",), vendors=("cisco", "junos")),
            collectors=("lab_matrix",),
        )
        specs = expand_seeds(spec, (1, 2, 3))
        sequential = run_sweep(specs, workers=1)
        parallel = run_sweep(specs, workers=3)
        for left, right in zip(sequential.results, parallel.results):
            assert left.metrics == right.metrics


class TestCache:
    def test_second_run_served_from_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        specs = expand_seeds(tiny_spec(), (1, 2))
        cold = run_sweep(specs, workers=1, cache_dir=cache)
        assert cold.cache_misses == 2
        assert cold.cache_hits == 0
        warm = run_sweep(specs, workers=1, cache_dir=cache)
        assert warm.cache_misses == 0
        assert warm.cache_hits == 2
        for left, right in zip(cold.results, warm.results):
            assert left.metrics == right.metrics

    def test_cache_files_keyed_on_spec_hash_and_version(self, tmp_path):
        from repro.scenarios.runner import CACHE_VERSION

        cache = str(tmp_path / "cache")
        spec = tiny_spec()
        run_sweep([spec], workers=1, cache_dir=cache)
        assert os.path.exists(
            os.path.join(
                cache, f"{spec_hash(spec)}.{CACHE_VERSION}.json"
            )
        )

    def test_stale_cache_version_not_served(self, tmp_path):
        cache = str(tmp_path / "cache")
        spec = tiny_spec()
        run_sweep([spec], workers=1, cache_dir=cache)
        # Entries from an older toolkit version must be recomputed.
        for entry in os.listdir(cache):
            os.rename(
                os.path.join(cache, entry),
                os.path.join(
                    cache, entry.replace(".v", ".v0-ancient-")
                ),
            )
        again = run_sweep([spec], workers=1, cache_dir=cache)
        assert again.cache_misses == 1
        assert again.cache_hits == 0

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        from repro.scenarios.runner import CACHE_VERSION

        cache = str(tmp_path / "cache")
        spec = tiny_spec()
        first = run_sweep([spec], workers=1, cache_dir=cache)
        path = os.path.join(
            cache, f"{spec_hash(spec)}.{CACHE_VERSION}.json"
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        again = run_sweep([spec], workers=1, cache_dir=cache)
        assert again.cache_misses == 1
        assert again.results[0].metrics == first.results[0].metrics
        # Overwritten with a valid (checksum-framed) entry.
        json.loads(durable.read_durable(path))

    def test_duplicate_specs_simulated_once(self, tmp_path):
        cache = str(tmp_path / "cache")
        spec = tiny_spec()
        report = run_sweep([spec, spec], workers=1, cache_dir=cache)
        assert len(report.results) == 2
        assert report.cache_misses == 1
        assert report.results[0].metrics == report.results[1].metrics


class TestCacheRobustness:
    """Damaged cache entries are misses — never crashes, never stale."""

    def _entry_path(self, cache: str, spec: ScenarioSpec) -> str:
        from repro.scenarios.runner import CACHE_VERSION

        return os.path.join(
            cache, f"{spec_hash(spec)}.{CACHE_VERSION}.json"
        )

    def _assert_recomputed(self, cache: str, spec, reference) -> None:
        report = run_sweep([spec], workers=1, cache_dir=cache)
        assert report.cache_hits == 0
        assert report.cache_misses == 1
        assert report.results[0].metrics == reference.metrics
        # The damaged entry was overwritten with a valid one.
        from repro.scenarios import result_from_json

        healed = result_from_json(
            durable.read_durable(self._entry_path(cache, spec))
        )
        assert healed.metrics == reference.metrics

    @pytest.fixture()
    def warm_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        spec = tiny_spec()
        reference = run_sweep([spec], workers=1, cache_dir=cache).results[0]
        return cache, spec, reference

    def test_truncated_entry_recomputed(self, warm_cache):
        cache, spec, reference = warm_cache
        path = self._entry_path(cache, spec)
        with open(path, encoding="utf-8") as handle:
            payload = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload[: len(payload) // 2])
        self._assert_recomputed(cache, spec, reference)

    def test_empty_entry_recomputed(self, warm_cache):
        cache, spec, reference = warm_cache
        open(self._entry_path(cache, spec), "w").close()
        self._assert_recomputed(cache, spec, reference)

    def test_wrong_schema_entry_recomputed(self, warm_cache):
        # Valid JSON, but not a result payload (missing spec/metrics).
        cache, spec, reference = warm_cache
        with open(
            self._entry_path(cache, spec), "w", encoding="utf-8"
        ) as handle:
            json.dump({"unexpected": True}, handle)
        self._assert_recomputed(cache, spec, reference)

    def test_non_object_entry_recomputed(self, warm_cache):
        # A JSON array used to raise TypeError straight through the
        # cache probe; now it is just another miss.
        cache, spec, reference = warm_cache
        with open(
            self._entry_path(cache, spec), "w", encoding="utf-8"
        ) as handle:
            json.dump([1, 2, 3], handle)
        self._assert_recomputed(cache, spec, reference)

    def test_wrong_cache_version_entry_not_served(self, warm_cache):
        # An entry written under another CACHE_VERSION must be
        # invisible: recomputed as a miss, not served as current.
        cache, spec, reference = warm_cache
        from repro.scenarios.runner import CACHE_VERSION

        current = self._entry_path(cache, spec)
        stale = current.replace(
            f".{CACHE_VERSION}.json", ".v0-ancient.json"
        )
        os.rename(current, stale)
        payload = json.loads(durable.read_durable(stale))
        payload["metrics"] = {"update_counts": {"poisoned": True}}
        with open(stale, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        report = run_sweep([spec], workers=1, cache_dir=cache)
        assert report.cache_misses == 1
        assert report.results[0].metrics == reference.metrics
        assert "poisoned" not in json.dumps(report.results[0].metrics)


class TestRunnerArguments:
    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            SweepRunner(workers=0)

    def test_invalid_spec_rejected_before_any_run(self, tmp_path):
        bad = ScenarioSpec(
            name="bad", kind="internet", collectors=("bogus",)
        )
        from repro.scenarios import ScenarioValidationError

        with pytest.raises(ScenarioValidationError):
            run_sweep([bad], workers=1, cache_dir=str(tmp_path))
        assert not os.listdir(str(tmp_path))
