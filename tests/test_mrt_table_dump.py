"""Tests for TABLE_DUMP_V2 RIB snapshots."""

import io

import pytest

from repro.bgp import ASPath, CommunitySet, PathAttributes
from repro.mrt.records import MRTError
from repro.mrt.table_dump import RibSnapshot, snapshot_from_collector
from repro.netbase import Prefix

PEERS = [(20205, "192.0.2.2"), (3356, "192.0.2.3"), (6939, "2001:db8::9")]


def attrs(path="20205 3356 12654", communities="3356:301"):
    return PathAttributes(
        as_path=ASPath.from_string(path),
        next_hop="10.0.0.1",
        communities=CommunitySet.parse(communities),
    )


def sample_snapshot():
    snapshot = RibSnapshot("rrc0", PEERS, snapshot_time=1584230400.0)
    snapshot.add_entry(
        Prefix("84.205.64.0/24"), 0, attrs(), originated_at=100.0
    )
    snapshot.add_entry(
        Prefix("84.205.64.0/24"), 1, attrs("3356 12654", "3356:52"),
        originated_at=200.0,
    )
    snapshot.add_entry(
        Prefix("10.0.0.0/8"), 2, attrs("6939 12654", ""),
        originated_at=300.0,
    )
    return snapshot


class TestRoundtrip:
    def test_write_read(self):
        snapshot = sample_snapshot()
        data = snapshot.to_bytes()
        parsed = RibSnapshot.read(io.BytesIO(data))
        assert parsed.collector_id == "rrc0"
        assert parsed.peers == PEERS
        assert parsed.snapshot_time == snapshot.snapshot_time
        assert len(parsed) == len(snapshot)
        assert parsed.route_count() == snapshot.route_count()
        for prefix in snapshot.prefixes():
            assert parsed.entries(prefix) == snapshot.entries(prefix)

    def test_ipv6_prefixes_use_their_subtype(self):
        snapshot = RibSnapshot("rrc0", PEERS)
        snapshot.add_entry(
            Prefix("2001:db8::/32"), 2,
            attrs("6939 12654", "").replace(next_hop="2001:db8::1"),
        )
        parsed = RibSnapshot.read(io.BytesIO(snapshot.to_bytes()))
        entries = parsed.entries(Prefix("2001:db8::/32"))
        assert len(entries) == 1
        assert entries[0].attributes.next_hop == "2001:db8::1"

    def test_record_count(self):
        snapshot = sample_snapshot()
        buffer = io.BytesIO()
        written = snapshot.write(buffer)
        # 1 peer index + 2 prefixes.
        assert written == 3

    def test_rejects_bad_peer_index(self):
        snapshot = RibSnapshot("rrc0", PEERS)
        with pytest.raises(MRTError):
            snapshot.add_entry(Prefix("10.0.0.0/8"), 9, attrs())

    def test_read_rejects_headerless_rib(self):
        snapshot = sample_snapshot()
        data = snapshot.to_bytes()
        # Find the second record start (skip peer index record).
        import struct

        length = struct.unpack("!I", data[8:12])[0]
        rib_only = data[12 + length :]
        with pytest.raises(MRTError):
            RibSnapshot.read(io.BytesIO(rib_only))

    def test_read_rejects_empty(self):
        with pytest.raises(MRTError):
            RibSnapshot.read(io.BytesIO(b""))


class TestSnapshotFromCollector:
    def _collector(self):
        from repro.netbase import Prefix
        from repro.simulator import Network

        network = Network()
        origin = network.add_router("origin", 65001)
        middle = network.add_router("middle", 65002)
        collector = network.add_collector("rrc0")
        network.connect(origin, middle)
        network.connect(middle, collector)
        return network, origin, collector

    def test_snapshot_reflects_final_state(self):
        network, origin, collector = self._collector()
        prefix = Prefix("203.0.113.0/24")
        origin.originate(prefix)
        network.converge()
        snapshot = snapshot_from_collector(collector)
        assert len(snapshot) == 1
        entries = snapshot.entries(prefix)
        assert len(entries) == 1
        assert str(entries[0].attributes.as_path) == "65002 65001"

    def test_withdrawn_routes_leave_the_snapshot(self):
        network, origin, collector = self._collector()
        prefix = Prefix("203.0.113.0/24")
        origin.originate(prefix)
        network.converge()
        origin.withdraw_origination(prefix)
        network.converge()
        snapshot = snapshot_from_collector(collector)
        assert len(snapshot) == 0

    def test_snapshot_roundtrips_through_bytes(self):
        network, origin, collector = self._collector()
        origin.originate(Prefix("203.0.113.0/24"))
        origin.originate(Prefix("2001:db8::/32"))
        network.converge()
        snapshot = snapshot_from_collector(collector)
        parsed = RibSnapshot.read(io.BytesIO(snapshot.to_bytes()))
        assert parsed.route_count() == snapshot.route_count()
        assert parsed.prefixes() == snapshot.prefixes()

    def test_time_bounded_snapshot(self):
        network, origin, collector = self._collector()
        prefix = Prefix("203.0.113.0/24")
        origin.originate(prefix)
        network.converge()
        cutoff = network.clock.now
        origin.withdraw_origination(prefix)
        network.converge()
        early = snapshot_from_collector(collector, at=cutoff)
        assert len(early) == 1
