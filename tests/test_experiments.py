"""Tests reproducing the paper's §3 lab experiment matrix.

Each test asserts the *published* finding; a regression here means the
reproduction no longer matches the paper.
"""

import pytest

from repro.simulator import LabTopology, run_all_experiments, run_experiment
from repro.simulator.experiments import LAB_PREFIX, TAG_Y2, TAG_Y3
from repro.vendors import ALL_PROFILES, BIRD, BIRD2, CISCO_IOS, CISCO_IOS_XR, JUNOS

NON_DEDUP = (CISCO_IOS, CISCO_IOS_XR, BIRD, BIRD2)


class TestConvergedBaseline:
    def test_collector_sees_route_via_y2(self):
        lab = LabTopology("exp2", CISCO_IOS)
        # Before the link event, Y1 prefers Y2, so the collector sees
        # the Y:300 tag (the paper's "collector sees p with Y:300").
        communities = lab.communities_at_collector()
        assert TAG_Y2 in communities
        assert TAG_Y3 not in communities

    def test_only_keepalives_after_convergence(self):
        lab = LabTopology("exp1", CISCO_IOS)
        # The network is converged: no further events pending.
        assert lab.network.queue.pending == 0

    def test_as_path_at_collector(self):
        lab = LabTopology("exp1", CISCO_IOS)
        assert lab.best_path_at_collector() == "64500 64510 64520"


class TestExp1:
    """No communities: internal next-hop change at Y1."""

    @pytest.mark.parametrize("vendor", NON_DEDUP, ids=lambda v: v.name)
    def test_non_dedup_vendors_send_duplicate_to_x1(self, vendor):
        result = run_experiment("exp1", vendor)
        assert result.update_sent_y1_to_x1
        assert not result.update_reached_collector

    def test_junos_suppresses_at_y1(self):
        result = run_experiment("exp1", JUNOS)
        assert not result.update_sent_y1_to_x1
        assert not result.update_reached_collector

    def test_duplicate_has_unchanged_path_and_no_communities(self):
        result = run_experiment("exp1", CISCO_IOS)
        announcements = [
            m for m in result.x1_y1_messages if m.kind == "announce"
        ]
        assert announcements
        assert announcements[0].as_path == "64510 64520"
        assert announcements[0].communities == ""


class TestExp2:
    """Geo-tagging at Y2/Y3 ingress, no filtering anywhere."""

    @pytest.mark.parametrize(
        "vendor", ALL_PROFILES, ids=lambda v: v.name
    )
    def test_community_change_propagates_to_collector(self, vendor):
        result = run_experiment("exp2", vendor)
        assert result.update_sent_y1_to_x1
        assert result.update_reached_collector
        assert result.collector_saw_community_change

    def test_collector_sees_y400_after_failover(self):
        lab = LabTopology("exp2", CISCO_IOS)
        lab.run()
        communities = lab.communities_at_collector()
        assert TAG_Y3 in communities
        assert TAG_Y2 not in communities

    def test_as_path_unchanged_through_failover(self):
        lab = LabTopology("exp2", CISCO_IOS)
        before = lab.best_path_at_collector()
        lab.run()
        assert lab.best_path_at_collector() == before

    def test_even_junos_sends_because_attributes_changed(self):
        result = run_experiment("exp2", JUNOS)
        assert result.update_sent_y1_to_x1
        assert result.update_reached_collector


class TestExp3:
    """X1 cleans communities on egress toward the collector."""

    @pytest.mark.parametrize("vendor", NON_DEDUP, ids=lambda v: v.name)
    def test_duplicate_leaks_to_collector(self, vendor):
        result = run_experiment("exp3", vendor)
        assert result.update_reached_collector
        assert result.collector_saw_duplicate
        assert not result.collector_saw_community_change

    def test_junos_suppresses_the_duplicate(self):
        result = run_experiment("exp3", JUNOS)
        assert result.update_sent_y1_to_x1  # Y1 still updates X1
        assert not result.update_reached_collector

    def test_leaked_duplicate_carries_no_communities(self):
        result = run_experiment("exp3", CISCO_IOS)
        announcements = [
            m for m in result.collector_messages if m.kind == "announce"
        ]
        assert announcements
        assert all(m.communities == "" for m in announcements)


class TestExp4:
    """X1 cleans communities on ingress from Y1."""

    @pytest.mark.parametrize(
        "vendor", ALL_PROFILES, ids=lambda v: v.name
    )
    def test_ingress_cleaning_fully_suppresses(self, vendor):
        result = run_experiment("exp4", vendor)
        assert not result.update_reached_collector

    @pytest.mark.parametrize("vendor", NON_DEDUP, ids=lambda v: v.name)
    def test_y1_still_sends_community_update_to_x1(self, vendor):
        # The inter-AS traffic on the X1-Y1 wire still happens; only
        # X1's RIB stays clean (the paper's ingress/egress distinction).
        result = run_experiment("exp4", vendor)
        assert result.update_sent_y1_to_x1
        announcements = [
            m for m in result.x1_y1_messages if m.kind == "announce"
        ]
        assert any(m.communities for m in announcements)


class TestMatrix:
    def test_full_matrix_shape(self):
        results = run_all_experiments()
        assert len(results) == 4 * len(ALL_PROFILES)
        rows = [result.summary_row() for result in results]
        assert all(len(row) == 5 for row in rows)

    def test_summary_notes_are_consistent(self):
        result = run_experiment("exp3", CISCO_IOS)
        assert "duplicate" in result.summary_row()[4]
        result = run_experiment("exp1", JUNOS)
        assert "suppressed" in result.summary_row()[4]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            LabTopology("exp9", CISCO_IOS)
