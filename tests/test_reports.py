"""Tests for the report rendering helpers."""

from repro.reports import (
    format_share,
    render_kv_table,
    render_series,
    render_stacked_counts,
    render_table,
)


class TestFormatShare:
    def test_percentage_style(self):
        assert format_share(0.337) == "33.7%"
        assert format_share(0.0) == "0.0%"
        assert format_share(1.0) == "100.0%"

    def test_none_renders_dash(self):
        assert format_share(None) == "-"


class TestRenderTable:
    def test_alignment(self):
        rendered = render_table(
            ("name", "value"),
            [("a", 1), ("longer-name", 22)],
        )
        lines = rendered.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        # All lines padded to equal visual width per column.
        assert lines[0].startswith("name")
        assert "longer-name" in lines[3]

    def test_title(self):
        rendered = render_table(("x",), [("1",)], title="My Table")
        assert rendered.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        rendered = render_table(("a", "b"), [])
        assert len(rendered.splitlines()) == 2

    def test_cells_are_stringified(self):
        rendered = render_table(("n",), [(3.14159,)])
        assert "3.14159" in rendered

    def test_kv_table(self):
        rendered = render_kv_table([("metric", "42")])
        assert "metric" in rendered and "42" in rendered

    def test_series(self):
        rendered = render_series(
            [("2020", 0.5)], value_format="{:.1f}"
        )
        assert "0.5" in rendered

    def test_stacked_counts(self):
        rendered = render_stacked_counts(
            ["day1", "day2"],
            {"pc": [1, 2], "nn": [3, 4]},
        )
        lines = rendered.splitlines()
        assert "total" in lines[0]
        assert lines[2].split()[-1] == "4"  # day1 total = 1+3
        assert lines[3].split()[-1] == "6"  # day2 total = 2+4
