"""Tests for ROUTE-REFRESH (RFC 2918) and beacon anchors."""

import pytest

from repro.bgp import (
    RouteRefreshMessage,
    decode_message,
    encode_message,
)
from repro.bgp.errors import MessageError, WireFormatError


class TestRouteRefresh:
    def test_roundtrip(self):
        for afi, safi in ((1, 1), (2, 1), (1, 2)):
            message = RouteRefreshMessage(afi, safi)
            assert decode_message(encode_message(message)) == message

    def test_defaults(self):
        message = RouteRefreshMessage()
        assert message.afi == 1
        assert message.safi == 1

    def test_range_validation(self):
        with pytest.raises(MessageError):
            RouteRefreshMessage(afi=70000)
        with pytest.raises(MessageError):
            RouteRefreshMessage(safi=300)

    def test_decoder_rejects_bad_length(self):
        wire = bytearray(encode_message(RouteRefreshMessage()))
        # Truncate the 4-byte body to 3 bytes and fix the length field.
        wire = wire[:-1]
        wire[16:18] = (len(wire)).to_bytes(2, "big")
        with pytest.raises(WireFormatError):
            decode_message(bytes(wire))

    def test_hash_and_repr(self):
        assert len({RouteRefreshMessage(), RouteRefreshMessage()}) == 1
        assert "afi=2" in repr(RouteRefreshMessage(2))


class TestBeaconAnchor:
    def test_anchor_is_announced_once_and_stays(self):
        from repro.beacons import BeaconOrigin
        from repro.netbase import Prefix, parse_utc
        from repro.simulator import Network

        day = parse_utc("2020-03-15")
        network = Network(start_time=day - 3600)
        origin = network.add_router("origin", 65001)
        middle = network.add_router("middle", 65002)
        collector = network.add_collector("rrc0")
        network.connect(origin, middle)
        network.connect(middle, collector)
        network.converge()

        beacon_prefix = Prefix("84.205.64.0/24")
        anchor_prefix = Prefix("84.205.80.0/24")
        agent = BeaconOrigin(
            origin, beacon_prefix, anchor_prefix=anchor_prefix
        )
        agent.schedule_day(day)
        network.run(until=day + 86_400)
        network.converge()

        anchor_events = [
            record
            for record in collector.updates()
            if anchor_prefix
            in record.message.announced + record.message.withdrawn
        ]
        # One announcement, never withdrawn: the control stream.
        assert len(anchor_events) == 1
        assert anchor_events[0].message.is_announcement
        beacon_withdrawals = [
            record
            for record in collector.updates()
            if beacon_prefix in record.message.withdrawn
        ]
        assert len(beacon_withdrawals) == 6
