"""CLI observability: --metrics/--journal/--progress/--profile and the
stdout discipline (machine output on stdout, chatter on stderr)."""

import json

import pytest

from repro.cli import main
from repro.obs import metrics as obs_metrics
from repro.obs.journal import read_journal


@pytest.fixture(autouse=True)
def metrics_off_afterwards():
    obs_metrics.set_metrics_enabled(False)
    obs_metrics.reset_metrics()
    yield
    obs_metrics.set_metrics_enabled(False)
    obs_metrics.reset_metrics()


class TestRunMetrics:
    def test_metrics_prints_report_tables(self, capsys):
        assert main(["scenario", "run", "lab-baseline", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "Phase timing" in out
        assert "lab.run" in out
        assert "Instrumentation" in out

    def test_metrics_flag_does_not_leak(self):
        assert main(["scenario", "run", "lab-baseline", "--metrics"]) == 0
        assert obs_metrics.metrics_enabled() is False

    def test_metrics_json_carries_report(self, capsys):
        code = main(
            ["scenario", "run", "topology-tiny", "--json", "--metrics"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        report = payload["metrics_report"]
        assert report["phases"]["internet.run"] > 0
        assert "prefix.nlri" in report["memo"]

    def test_plain_json_has_no_report(self, capsys):
        assert main(["scenario", "run", "topology-tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics_report" not in payload

    def test_metrics_out_writes_report_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        code = main(
            [
                "scenario",
                "run",
                "topology-tiny",
                "--metrics-out",
                str(out_file),
            ]
        )
        assert code == 0
        report = json.loads(out_file.read_text())
        assert report["phases"]["internet.build"] > 0
        # --metrics-out implies instrumentation without requiring
        # --metrics; the human tables print too.  (No memo table here:
        # a live internet run never touches the decode memos.)
        assert "Phase timing" in capsys.readouterr().out


class TestRunJournalAndProgress:
    def test_journal_written(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        code = main(
            [
                "scenario",
                "run",
                "topology-tiny",
                "--journal",
                str(journal),
                "--heartbeat-every",
                "100",
            ]
        )
        assert code == 0
        events = [event["event"] for event in read_journal(str(journal))]
        assert events[0] == "start"
        assert "heartbeat" in events
        assert events[-1] == "finish"

    def test_json_stdout_stays_parseable_with_progress(self, capsys):
        # Satellite guarantee: piping --json through json.loads works
        # even with heartbeats enabled, because progress is stderr-only.
        code = main(
            [
                "scenario",
                "run",
                "topology-tiny",
                "--json",
                "--progress",
                "--heartbeat-every",
                "100",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["spec"]["name"] == "topology-tiny"
        assert "observations @" in captured.err

    def test_profile_summary_on_stderr_stdout_intact(self, capsys):
        code = main(
            ["scenario", "run", "topology-tiny", "--json", "--profile"]
        )
        assert code == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout must remain one JSON doc
        assert "cumulative" in captured.err
        assert "run_scenario" in captured.err


class TestSweepObservability:
    def test_progress_lines_and_wall_summary(self, tmp_path, capsys):
        code = main(
            [
                "scenario",
                "sweep",
                "topology-tiny",
                "--seeds",
                "1,2",
                "--backend",
                "serial",
                "--workers",
                "1",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--progress",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "cells:" in captured.out
        assert "median" in captured.out
        assert "[sweep] topology-tiny@seed1: done" in captured.err

    def test_sweep_json_stdout_parseable_with_progress(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "scenario",
                "sweep",
                "topology-tiny",
                "--seeds",
                "1",
                "--backend",
                "serial",
                "--workers",
                "1",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--progress",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1

    def test_manifest_records_timing_and_journals_exist(self, tmp_path):
        from repro.obs.journal import journal_dir
        from repro.scenarios.runner import SweepManifest

        cache = str(tmp_path / "cache")
        code = main(
            [
                "scenario",
                "sweep",
                "topology-tiny",
                "--seeds",
                "1,2",
                "--backend",
                "serial",
                "--workers",
                "1",
                "--cache-dir",
                cache,
            ]
        )
        assert code == 0
        manifest = SweepManifest.load(cache)
        assert len(manifest.cells) == 2
        for digest, cell in manifest.cells.items():
            assert cell["state"] == "done"
            assert cell["attempts"] == 1
            assert cell["finished_at"] >= cell["started_at"]
            events = read_journal(
                f"{journal_dir(cache)}/{digest}.jsonl"
            )
            kinds = [event["event"] for event in events]
            assert kinds[0] == "start"
            assert kinds[-1] == "finish"

    def test_resume_tolerates_old_manifest_without_timing(
        self, tmp_path, capsys
    ):
        # A manifest from before this change has no attempts/timing
        # keys; --resume must load it and finish the pending cells.
        cache = str(tmp_path / "cache")
        code = main(
            [
                "scenario",
                "sweep",
                "topology-tiny",
                "--seeds",
                "1",
                "--backend",
                "serial",
                "--workers",
                "1",
                "--cache-dir",
                cache,
            ]
        )
        assert code == 0
        capsys.readouterr()
        manifest_path = f"{cache}/sweep.json"
        from repro import durable

        data = json.loads(durable.read_durable(manifest_path))
        for cell in data["cells"].values():
            for key in ("attempts", "started_at", "finished_at"):
                cell.pop(key, None)
            cell["state"] = "pending"
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        code = main(
            [
                "scenario",
                "sweep",
                "--resume",
                "--cache-dir",
                cache,
                "--backend",
                "serial",
                "--workers",
                "1",
            ]
        )
        assert code == 0
        assert "topology-tiny@seed1" in capsys.readouterr().out
