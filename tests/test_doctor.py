"""``repro doctor``: every corruption class detected and repaired.

Each test grows *real* state (a sweep into a cache dir, a queue
backend's work dir), breaks it the way a crash would, and checks the
doctor names the damage — then that ``--repair`` leaves a tree the
next sweep resumes cleanly from.  The fixtures deliberately reuse the
production writers rather than hand-rolled files: the doctor's value
is that it understands what the *real* pipeline leaves behind.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import durable
from repro.faults import doctor
from repro.scenarios import (
    QueueBackend,
    expand_seeds,
    get_scenario,
    run_sweep,
    spec_hash,
)
from repro.scenarios.backends import SweepJob

CHEAP = "lab-junos"


def _queue(tmp_path):
    """A queue backend with dirs ready and one enqueueable job."""
    backend = QueueBackend(str(tmp_path), stale_claim_seconds=None)
    backend._ensure_dirs()
    spec = expand_seeds(get_scenario(CHEAP), (1,))[0]
    job = SweepJob(
        digest=spec_hash(spec), name=spec.name, spec_json="{}"
    )
    return backend, job


def _sweep(cache_dir, seeds=(1, 2)):
    specs = expand_seeds(get_scenario(CHEAP), seeds)
    return specs, run_sweep(
        specs, backend="serial", cache_dir=str(cache_dir)
    )


def _truncate(path, keep=0.5):
    data = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(data[: int(len(data) * keep)])


class TestCleanTree:
    def test_fresh_sweep_tree_is_clean(self, tmp_path):
        _sweep(tmp_path / "cache")
        report = doctor.run_doctor(str(tmp_path))
        assert report.clean
        assert report.to_dict()["findings"] == []

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            doctor.run_doctor(str(tmp_path / "absent"))

    @pytest.mark.parametrize("field", ["grace_seconds", "lease_seconds"])
    def test_nonpositive_thresholds_rejected(self, tmp_path, field):
        with pytest.raises(ValueError):
            doctor.run_doctor(str(tmp_path), **{field: 0})


class TestOrphanTmp:
    def test_detected_and_removed(self, tmp_path):
        orphan = tmp_path / "cell.json.tmp.999999.0"
        orphan.write_text("partial write")
        report = doctor.run_doctor(str(tmp_path))
        assert [f.kind for f in report.findings] == ["orphan-tmp"]
        assert orphan.exists()  # scan is read-only
        repaired = doctor.run_doctor(str(tmp_path), repair=True)
        assert repaired.findings[0].repaired
        assert not orphan.exists()
        assert doctor.run_doctor(str(tmp_path)).clean

    def test_live_recent_tmp_is_not_a_finding(self, tmp_path):
        mine = tmp_path / f"cell.json.tmp.{os.getpid()}.0"
        mine.write_text("in flight")
        assert doctor.run_doctor(str(tmp_path)).clean
        assert mine.exists()

    def test_swept_inside_queue_kind_dirs(self, tmp_path):
        _queue(tmp_path)  # creates todo/claimed/done/seen
        orphan = tmp_path / "todo" / "x.json.tmp.999999.0"
        orphan.write_text("partial")
        report = doctor.run_doctor(str(tmp_path), repair=True)
        assert [f.kind for f in report.findings] == ["orphan-tmp"]
        assert not orphan.exists()


class TestCorruptCacheEntry:
    def test_quarantined_and_recomputed(self, tmp_path):
        cache = tmp_path / "cache"
        specs, _ = _sweep(cache)
        digest = spec_hash(specs[0])
        entry = cache / f"{digest}.v3.json"
        _truncate(entry)
        report = doctor.run_doctor(str(tmp_path), repair=True)
        kinds = [f.kind for f in report.findings]
        assert kinds == ["corrupt-cache-entry"]
        assert not entry.exists()
        quarantined = os.listdir(tmp_path / "quarantine")
        assert quarantined == [entry.name]
        assert doctor.run_doctor(str(tmp_path)).clean
        # The next sweep recomputes only the quarantined cell.
        _, report2 = _sweep(cache)
        assert report2.cache_hits == 1
        assert report2.cache_misses == 1
        assert report2.failures == []

    def test_quarantine_never_clobbers(self, tmp_path):
        cache = tmp_path / "cache"
        for _ in range(2):
            specs, _ = _sweep(cache)
            _truncate(cache / f"{spec_hash(specs[0])}.v3.json")
            doctor.run_doctor(str(tmp_path), repair=True)
        names = sorted(os.listdir(tmp_path / "quarantine"))
        assert len(names) == 2 and names[1] == f"{names[0]}.1"


class TestCorruptManifest:
    def test_truncated_manifest_is_rebuilt(self, tmp_path):
        cache = tmp_path / "cache"
        specs, _ = _sweep(cache)
        manifest = cache / "sweep.json"
        _truncate(manifest)
        report = doctor.run_doctor(str(tmp_path), repair=True)
        assert [f.kind for f in report.findings] == ["corrupt-manifest"]
        assert report.findings[0].repaired
        # Rebuilt from the intact cache entries: every cell present
        # and done.
        rebuilt = json.loads(durable.read_durable(str(manifest)))
        digests = {spec_hash(spec) for spec in specs}
        assert set(rebuilt["cells"]) == digests
        assert all(
            cell["state"] == "done"
            for cell in rebuilt["cells"].values()
        )
        # And a resumed sweep serves every cell as a hit.
        _, report2 = _sweep(cache)
        assert report2.cache_hits == 2
        assert report2.cache_misses == 0

    def test_garbage_manifest_schema_is_a_finding(self, tmp_path):
        cache = tmp_path / "cache"
        _sweep(cache)
        # Valid frame, valid JSON, wrong shape — still corrupt.
        durable.atomic_write(
            str(cache / "sweep.json"), json.dumps(["not", "a", "dict"])
        )
        report = doctor.run_doctor(str(tmp_path))
        assert [f.kind for f in report.findings] == ["corrupt-manifest"]

    def test_rebuild_skips_cells_whose_entry_also_died(self, tmp_path):
        cache = tmp_path / "cache"
        specs, _ = _sweep(cache)
        lost = spec_hash(specs[0])
        _truncate(cache / f"{lost}.v3.json")
        _truncate(cache / "sweep.json")
        doctor.run_doctor(str(tmp_path), repair=True)
        rebuilt = json.loads(
            durable.read_durable(str(cache / "sweep.json"))
        )
        assert set(rebuilt["cells"]) == {spec_hash(specs[1])}


class TestQueueRepairs:
    def _work_dir_with_claim(self, tmp_path, *, age=3600.0):
        backend, job = _queue(tmp_path)
        backend._enqueue(job)
        assert backend._claim(job.digest) is not None
        path = tmp_path / "claimed" / f"{job.digest}.json"
        old = os.stat(path).st_mtime - age
        os.utime(path, (old, old))
        return backend, job.digest, path

    def test_zombie_claim_is_requeued(self, tmp_path):
        backend, digest, path = self._work_dir_with_claim(tmp_path)
        report = doctor.run_doctor(str(tmp_path), repair=True)
        assert [f.kind for f in report.findings] == ["zombie-claim"]
        assert not path.exists()
        assert (tmp_path / "todo" / f"{digest}.json").exists()
        # The requeued record is claimable again.
        assert backend._claim(digest) is not None

    def test_fresh_claim_is_left_alone(self, tmp_path):
        _, _, path = self._work_dir_with_claim(tmp_path, age=1.0)
        assert doctor.run_doctor(str(tmp_path)).clean
        assert path.exists()

    def test_zombie_claim_with_todo_twin_is_dropped(self, tmp_path):
        _, digest, path = self._work_dir_with_claim(tmp_path)
        twin = tmp_path / "todo" / f"{digest}.json"
        twin.write_text(path.read_text())
        report = doctor.run_doctor(str(tmp_path), repair=True)
        assert [f.kind for f in report.findings] == ["zombie-claim"]
        assert not path.exists() and twin.exists()

    def test_corrupt_todo_record_requeues_via_seen_drop(self, tmp_path):
        backend, job = _queue(tmp_path)
        backend._enqueue(job)
        todo = tmp_path / "todo" / f"{job.digest}.json"
        _truncate(todo)
        report = doctor.run_doctor(str(tmp_path), repair=True)
        assert [f.kind for f in report.findings] == ["corrupt-todo"]
        assert not todo.exists()
        assert not any(
            name.startswith(job.digest)
            for name in os.listdir(tmp_path / "seen")
        )
        # With the markers dropped a peer's enqueue goes through again.
        backend._enqueue(job)
        assert todo.exists()

    def test_corrupt_done_record_is_quarantined(self, tmp_path):
        backend, job = _queue(tmp_path)
        backend._write_done(
            job.digest,
            0,
            (job.digest, '{"ok": true}', None, None, 1, None, None),
        )
        done = tmp_path / "done" / f"{job.digest}.json"
        _truncate(done)
        report = doctor.run_doctor(str(tmp_path), repair=True)
        assert [f.kind for f in report.findings] == ["corrupt-done"]
        assert not done.exists()
        assert doctor.run_doctor(str(tmp_path)).clean

    def test_dangling_seen_marker_is_removed(self, tmp_path):
        _queue(tmp_path)
        # A marker whose enqueue died before the todo write landed.
        marker = tmp_path / "seen" / ("f" * 8 + ".0")
        marker.write_text("")
        report = doctor.run_doctor(str(tmp_path), repair=True)
        assert [f.kind for f in report.findings] == ["dangling-seen"]
        assert not marker.exists()

    def test_seen_marker_with_done_record_is_kept(self, tmp_path):
        backend, job = _queue(tmp_path)
        backend._enqueue(job)
        generation = backend._claim(job.digest)
        backend._unclaim(job.digest)
        backend._write_done(
            job.digest,
            generation,
            (job.digest, '{"ok": true}', None, None, 1, None, None),
        )
        assert doctor.run_doctor(str(tmp_path)).clean


class TestDoctorCli:
    def _run(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "doctor", *argv],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_clean_tree_exits_zero(self, tmp_path):
        _sweep(tmp_path / "cache")
        proc = self._run(str(tmp_path))
        assert proc.returncode == 0, proc.stderr

    def test_findings_exit_one_and_repair_exits_zero(self, tmp_path):
        cache = tmp_path / "cache"
        specs, _ = _sweep(cache)
        _truncate(cache / f"{spec_hash(specs[0])}.v3.json")
        assert self._run(str(tmp_path)).returncode == 1
        proc = self._run(str(tmp_path), "--repair")
        assert proc.returncode == 0, proc.stderr
        assert self._run(str(tmp_path)).returncode == 0

    def test_json_output_shape(self, tmp_path):
        (tmp_path / "cell.json.tmp.999999.0").write_text("x")
        proc = self._run(str(tmp_path), "--json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["clean"] is False
        assert payload["findings"][0]["kind"] == "orphan-tmp"
        assert payload["findings"][0]["repaired"] is False

    def test_missing_directory_exits_two(self, tmp_path):
        proc = self._run(str(tmp_path / "absent"))
        assert proc.returncode == 2
        assert proc.stdout == ""
        assert "doctor" in proc.stderr
