"""Seeded property-based round-trip tests for :class:`ScenarioSpec`.

A tiny stdlib-``random`` fuzzer (no third-party property-testing
dependency) generates randomized *valid* specs across all three kinds
and every optional knob, then asserts the serialization invariants
the sweep machinery stands on:

* ``spec_from_json(spec_to_json(s)) == s`` — lossless round trip;
* ``spec_hash`` is invariant under JSON key reordering — the cache
  key depends on what a spec says, never on how its dict happens to
  be ordered;
* ``spec_hash`` survives the round trip — a spec rebuilt from disk
  lands in the same cache cell as the original.

Every test is seeded and parametrized over master seeds, so a failure
reproduces exactly.
"""

import json
import random
import string

import pytest

from repro.scenarios import (
    InternetSpec,
    LabSpec,
    MrtSpec,
    ScenarioSpec,
    known_collector_names,
    spec_from_dict,
    spec_from_json,
    spec_hash,
    spec_to_dict,
    spec_to_json,
)
from repro.scenarios.spec import INTERNET_SCALES, LAB_EXPERIMENTS

VENDORS = ("cisco", "ios-xr", "junos", "bird", "bird2")

MASTER_SEEDS = tuple(range(8))
SPECS_PER_SEED = 25


def _name(rng: random.Random) -> str:
    return "fuzz-" + "".join(
        rng.choice(string.ascii_lowercase + string.digits)
        for _ in range(rng.randint(1, 12))
    )


def _subset(rng: random.Random, items, minimum=1):
    count = rng.randint(minimum, len(items))
    return tuple(rng.sample(list(items), count))


def _maybe(rng: random.Random, builder, probability=0.5):
    return builder() if rng.random() < probability else None


def _lab_section(rng: random.Random) -> LabSpec:
    return LabSpec(
        experiments=_subset(rng, LAB_EXPERIMENTS),
        vendors=_subset(rng, VENDORS),
        mrai=rng.choice((0.0, 5.0, rng.uniform(0.0, 120.0))),
    )


def _internet_section(rng: random.Random) -> InternetSpec:
    # The three practice fractions are validated as a *sum* against
    # the base scale's defaults, so set them jointly: three shares of
    # a total that never exceeds 1.
    total = rng.uniform(0.0, 1.0)
    cut_a, cut_b = sorted((rng.random(), rng.random()))
    practice = (
        total * cut_a,
        total * (cut_b - cut_a),
        total * (1.0 - cut_b),
    )
    return InternetSpec(
        scale=rng.choice(INTERNET_SCALES),
        topology_seed=_maybe(rng, lambda: rng.randrange(2**31)),
        tier1_count=_maybe(rng, lambda: rng.randint(1, 5)),
        transit_count=_maybe(rng, lambda: rng.randint(1, 10)),
        stub_count=_maybe(rng, lambda: rng.randint(1, 40)),
        vendor_mix=_maybe(
            rng,
            lambda: tuple(
                (vendor, rng.uniform(0.05, 3.0))
                for vendor in _subset(rng, VENDORS)
            ),
        ),
        tagger_fraction=practice[0],
        cleaner_egress_fraction=practice[1],
        cleaner_ingress_fraction=practice[2],
        scrub_internal_fraction=_maybe(rng, rng.random),
        collector_peer_fraction=_maybe(rng, rng.random),
        collector_peer_clean_fraction=_maybe(rng, rng.random),
        include_route_server=_maybe(rng, lambda: rng.random() < 0.5),
        include_bogons=_maybe(rng, lambda: rng.random() < 0.5),
        beacon_count=_maybe(rng, lambda: rng.randint(0, 8)),
        link_flaps=_maybe(rng, lambda: rng.randint(0, 10)),
        prefix_flaps=_maybe(rng, lambda: rng.randint(0, 10)),
        med_churn_events=_maybe(rng, lambda: rng.randint(0, 10)),
        community_churn_events=_maybe(rng, lambda: rng.randint(0, 10)),
        prepend_change_events=_maybe(rng, lambda: rng.randint(0, 10)),
        collector_session_resets=_maybe(rng, lambda: rng.randint(0, 5)),
        mrai=_maybe(rng, lambda: rng.uniform(0.0, 60.0)),
        delivery_batching=_maybe(rng, lambda: rng.random() < 0.5),
        archive_policy=_maybe(
            rng,
            lambda: rng.choice(
                ("full", "mrt-spill", f"ring:{rng.randint(1, 4096)}")
            ),
        ),
        collector_names=_maybe(
            rng,
            lambda: tuple(
                f"rrc{rng.randrange(100):02d}"
                for _ in range(rng.randint(1, 3))
            ),
        ),
    )


def _mrt_section(rng: random.Random) -> MrtSpec:
    return MrtSpec(
        path=_maybe(rng, lambda: f"/data/{_name(rng)}.mrt"),
        collector=rng.choice(("mrt", "rrc00", "route-views2")),
        tolerant=rng.random() < 0.5,
    )


def random_spec(rng: random.Random) -> ScenarioSpec:
    """One randomized spec that must pass ``validate()``."""
    kind = rng.choice(("lab", "internet", "mrt"))
    sections = {
        "lab": _maybe(rng, lambda: _lab_section(rng), 0.8)
        if kind == "lab"
        else None,
        "internet": _maybe(rng, lambda: _internet_section(rng), 0.8)
        if kind == "internet"
        else None,
        "mrt": _maybe(rng, lambda: _mrt_section(rng), 0.8)
        if kind == "mrt"
        else None,
    }
    return ScenarioSpec(
        name=_name(rng),
        kind=kind,
        description=_maybe(rng, lambda: _name(rng), 0.5) or "",
        seed=rng.randrange(-(2**31), 2**31),
        duration=_maybe(rng, lambda: rng.uniform(1e-3, 86400.0)),
        collectors=_subset(rng, sorted(known_collector_names())),
        lab=sections["lab"],
        internet=sections["internet"],
        mrt=sections["mrt"],
    )


def _shuffle_keys(value, rng: random.Random):
    """Recursively rebuild dicts in a random insertion order."""
    if isinstance(value, dict):
        items = list(value.items())
        rng.shuffle(items)
        return {key: _shuffle_keys(item, rng) for key, item in items}
    if isinstance(value, list):
        return [_shuffle_keys(item, rng) for item in value]
    return value


@pytest.mark.parametrize("master_seed", MASTER_SEEDS)
def test_random_specs_are_valid(master_seed):
    rng = random.Random(master_seed)
    for _ in range(SPECS_PER_SEED):
        random_spec(rng).validate()


@pytest.mark.parametrize("master_seed", MASTER_SEEDS)
def test_json_round_trip_is_lossless(master_seed):
    rng = random.Random(master_seed)
    for _ in range(SPECS_PER_SEED):
        spec = random_spec(rng)
        rebuilt = spec_from_json(spec_to_json(spec))
        assert rebuilt == spec
        assert spec_hash(rebuilt) == spec_hash(spec)


@pytest.mark.parametrize("master_seed", MASTER_SEEDS)
def test_spec_hash_stable_under_key_reordering(master_seed):
    rng = random.Random(master_seed)
    for _ in range(SPECS_PER_SEED):
        spec = random_spec(rng)
        reference = spec_hash(spec)
        for _ in range(3):
            shuffled = _shuffle_keys(spec_to_dict(spec), rng)
            # Through the dict form and through unsorted JSON text:
            # the cache key must not care how the payload was ordered.
            assert spec_hash(spec_from_dict(shuffled)) == reference
            text = json.dumps(shuffled, sort_keys=False)
            assert spec_hash(spec_from_json(text)) == reference


@pytest.mark.parametrize("master_seed", MASTER_SEEDS)
def test_description_never_affects_the_hash(master_seed):
    rng = random.Random(master_seed)
    for _ in range(SPECS_PER_SEED):
        spec = random_spec(rng)
        from dataclasses import replace

        relabeled = replace(spec, description=_name(rng))
        assert spec_hash(relabeled) == spec_hash(spec)
