"""The sweep scheduler: crash containment, timeouts, backoff, queue.

The regression at the heart of this suite: one abruptly-dead worker
(``os._exit``, as a segfault or OOM kill looks to the pool) used to
break the whole ``ProcessPoolExecutor`` and fail *every* in-flight and
queued cell as ``worker died`` with ``attempts=1``.  These tests pin
the repaired behavior — siblings survive, the killer is charged
exactly, timeouts reap, retries back off deterministically — plus the
``queue`` backend's exactly-once claims.

Fault injection is plan-driven: a JSON :class:`repro.faults.FaultPlan`
armed through ``REPRO_FAULT_PLAN`` so the faults reach real forked
pool workers, exactly as ``scripts/ci.sh`` arms them.
"""

import json
import threading
import time

import pytest

from repro import faults
from repro.scenarios import backends as backends_module
from repro.scenarios import (
    QueueBackend,
    SweepJob,
    backoff_delay,
    expand_seeds,
    get_scenario,
    resume_sweep,
    run_sweep,
    spec_hash,
)
from repro.scenarios.runner import SweepManifest
from repro.scenarios.scheduler import PoolScheduler, SchedulerConfig

#: The cheapest registry scenario (~ms per cell) — crash/timeout
#: mechanics dominate the wall time, not the simulations.
CHEAP = "lab-junos"


def cheap_specs(seeds):
    return expand_seeds(get_scenario(CHEAP), seeds)


@pytest.fixture(autouse=True)
def _fresh_fault_state():
    """Env-probed fault state must not leak between tests."""
    faults.reset_fault_plan()
    yield
    faults.reset_fault_plan()


def arm_plan(monkeypatch, tmp_path, rules, *, seed=0):
    """Write a fault plan file and arm it via ``REPRO_FAULT_PLAN``.

    The env route (not ``set_fault_plan``) is deliberate: forked pool
    workers inherit the environment, so the plan reaches them exactly
    as it does under ``scripts/ci.sh`` — and the plan-file-adjacent
    ``state_dir`` gives count-limited rules exactly-once semantics
    *across* those processes.
    """
    path = tmp_path / "fault-plan.json"
    path.write_text(json.dumps({"seed": seed, "rules": rules}))
    monkeypatch.setenv(faults.PLAN_ENV, str(path))
    faults.reset_fault_plan()
    return str(path)


def disarm_plan(monkeypatch):
    monkeypatch.delenv(faults.PLAN_ENV, raising=False)
    faults.reset_fault_plan()


class TestBackoffDelay:
    def test_schedule_doubles_from_base(self):
        assert [backoff_delay(n, 0.1) for n in (1, 2, 3, 4)] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
        ]

    def test_deterministic(self):
        assert backoff_delay(3, 0.25) == backoff_delay(3, 0.25)

    def test_capped(self):
        assert backoff_delay(30, 0.1) == 30.0
        assert backoff_delay(5, 2.0, cap=3.0) == 3.0

    def test_disabled_for_zero_base_or_bad_attempt(self):
        assert backoff_delay(3, 0.0) == 0.0
        assert backoff_delay(0, 1.0) == 0.0


class TestAttemptJobBackoff:
    def test_sleeps_follow_the_schedule(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", sleeps.append)

        def always_raises(spec_json, journal_path=None):
            raise RuntimeError("flaky")

        monkeypatch.setattr(
            backends_module, "run_scenario_json", always_raises
        )
        reply = backends_module.attempt_job(
            ("cell", "d1", "{}", 3, None, 0.1)
        )
        assert reply[1] is None
        assert reply[4] == 4  # 1 + 3 retries
        assert sleeps == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
        ]

    def test_no_sleep_with_zero_backoff(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", sleeps.append)

        def always_raises(spec_json, journal_path=None):
            raise RuntimeError("flaky")

        monkeypatch.setattr(
            backends_module, "run_scenario_json", always_raises
        )
        backends_module.attempt_job(("cell", "d1", "{}", 2, None, 0.0))
        assert sleeps == []


class TestSchedulerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(cell_timeout=0.0),
            dict(cell_timeout=-1.0),
            dict(retry_backoff=-0.1),
            dict(pool_rebuilds=-1),
            dict(straggler_factor=0.0),
            dict(min_straggler_samples=0),
            dict(poll_interval=0.0),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            SchedulerConfig(**kwargs).validate()

    def test_defaults_validate(self):
        SchedulerConfig().validate()


class TestDeadWorkerCascade:
    """The tentpole: one dead worker must not fail its siblings."""

    def test_transient_kill_survived_by_pool_rebuild(
        self, monkeypatch, tmp_path
    ):
        # The worker picking up seed2 os._exits once; the rebuilt pool
        # completes the whole sweep with zero failures.
        arm_plan(
            monkeypatch,
            tmp_path,
            [
                {
                    "site": "sweep.cell",
                    "match": f"{CHEAP}@seed2",
                    "action": "kill",
                    "count": 1,
                }
            ],
        )
        report = run_sweep(
            cheap_specs((1, 2, 3)),
            workers=2,
            backend="processes",
            cache_dir=str(tmp_path / "cache"),
        )
        assert report.failures == []
        assert len(report.results) == 3

    def test_deterministic_crasher_fails_alone(
        self, monkeypatch, tmp_path
    ):
        # No count: the cell kills its worker on *every* attempt.
        # Rebuild budget spends, isolation attributes the crash, and
        # exactly that cell fails while both siblings complete — the
        # pre-fix behavior was three "worker died" failures.
        specs = cheap_specs((1, 2, 3))
        arm_plan(
            monkeypatch,
            tmp_path,
            [
                {
                    "site": "sweep.cell",
                    "match": f"{CHEAP}@seed2",
                    "action": "kill",
                }
            ],
        )
        cache = str(tmp_path / "cache")
        report = run_sweep(
            specs, workers=2, backend="processes", cache_dir=cache
        )
        assert [failure.name for failure in report.failures] == [
            f"{CHEAP}@seed2"
        ]
        assert "worker died" in report.failures[0].error
        assert sorted(result.name for result in report.results) == [
            f"{CHEAP}@seed1",
            f"{CHEAP}@seed3",
        ]
        states = SweepManifest.load(cache).states()
        by_name = {
            spec.name: states[spec_hash(spec)] for spec in specs
        }
        assert by_name == {
            f"{CHEAP}@seed1": "done",
            f"{CHEAP}@seed2": "failed",
            f"{CHEAP}@seed3": "done",
        }

    def test_killed_cell_recovers_on_resume(self, monkeypatch, tmp_path):
        # After the crasher is fixed (fault unset), --resume recomputes
        # only the failed cell and its attempts keep accumulating.
        specs = cheap_specs((1, 2))
        cache = str(tmp_path / "cache")
        arm_plan(
            monkeypatch,
            tmp_path,
            [
                {
                    "site": "sweep.cell",
                    "match": f"{CHEAP}@seed1",
                    "action": "kill",
                }
            ],
        )
        first = run_sweep(
            specs, workers=2, backend="processes", cache_dir=cache
        )
        assert len(first.failures) == 1
        disarm_plan(monkeypatch)
        second = resume_sweep(cache, workers=2, backend="processes")
        assert second.failures == []
        assert len(second.results) == 2
        assert second.cache_hits == 1  # the innocent sibling
        digest = spec_hash(specs[0])
        attempts = SweepManifest.load(cache).cells[digest]["attempts"]
        # The crash run reports 2 (the isolation-charged crash + the
        # final fatal attempt); the clean resume adds its 1.  The
        # pre-fix behavior reset the count to 1 on success.
        assert attempts == 3


class TestCellTimeout:
    def test_stuck_cell_reaped_and_reported(self, monkeypatch, tmp_path):
        # seed2's worker stalls 60s; with a 1s budget it is reaped and
        # lands as a `timeout:` failure while the siblings finish.
        arm_plan(
            monkeypatch,
            tmp_path,
            [
                {
                    "site": "sweep.cell",
                    "match": f"{CHEAP}@seed2",
                    "action": "stall",
                    "seconds": 60.0,
                }
            ],
        )
        started = time.monotonic()
        report = run_sweep(
            cheap_specs((1, 2, 3)),
            workers=2,
            backend="processes",
            cache_dir=str(tmp_path / "cache"),
            cell_timeout=1.0,
        )
        elapsed = time.monotonic() - started
        assert [failure.name for failure in report.failures] == [
            f"{CHEAP}@seed2"
        ]
        assert report.failures[0].error.startswith("timeout:")
        assert len(report.results) == 2
        # The reap actually freed us from the 60s stall.
        assert elapsed < 30.0

    def test_transient_stall_retries_within_budget(
        self, monkeypatch, tmp_path
    ):
        # The stall fires once; with one retry the cell completes on
        # its second attempt, and the charged (reaped) first attempt
        # shows up in the attempt count.
        arm_plan(
            monkeypatch,
            tmp_path,
            [
                {
                    "site": "sweep.cell",
                    "match": f"{CHEAP}@seed2",
                    "action": "stall",
                    "seconds": 60.0,
                    "count": 1,
                }
            ],
        )
        specs = cheap_specs((1, 2, 3))
        report = run_sweep(
            specs,
            workers=2,
            backend="processes",
            cache_dir=str(tmp_path / "cache"),
            cell_timeout=1.0,
            max_retries=1,
            retry_backoff=0.01,
        )
        assert report.failures == []
        assert len(report.results) == 3
        assert report.cell_attempts[spec_hash(specs[1])] == 2


def reply_ok(digest, wall=0.05):
    """A canned successful worker reply with a pinned wall time."""
    return (
        digest, json.dumps({"cell": digest}), None, None, 1, 0.0, wall,
    )


class TestPoolSchedulerUnit:
    """Thread-pool unit tests with a scripted attempt_job."""

    def make_scheduler(self, config, *, workers=2, max_retries=0):
        from concurrent.futures import ThreadPoolExecutor

        return PoolScheduler(
            make_pool=lambda n: ThreadPoolExecutor(max_workers=n),
            reapable=False,
            workers=workers,
            max_retries=max_retries,
            config=config,
        )

    def test_raising_entry_point_is_a_contained_death(
        self, monkeypatch
    ):
        # attempt_job never raises in production; if it somehow does
        # (a broken monkeypatch, an import error in a worker), the
        # cell fails alone instead of the batch.
        def scripted(args):
            digest = args[1]
            if digest == "d1":
                raise RuntimeError("boom")
            return reply_ok(digest)

        monkeypatch.setattr(backends_module, "attempt_job", scripted)
        scheduler = self.make_scheduler(
            SchedulerConfig(retry_backoff=0.0, poll_interval=0.01)
        )
        jobs = [
            SweepJob(digest="d1", name="a", spec_json="{}"),
            SweepJob(digest="d2", name="b", spec_json="{}"),
        ]
        outcomes = scheduler.run(jobs)
        assert [outcome.job.digest for outcome in outcomes] == [
            "d1", "d2",
        ]
        assert outcomes[0].failure is not None
        assert outcomes[0].failure.error.startswith(
            "worker died: RuntimeError: boom"
        )
        assert outcomes[1].ok

    def test_speculation_lets_the_twin_win(self, monkeypatch):
        # Three fast cells establish the median; the fourth stalls on
        # its first execution and returns instantly on its second.
        # With speculation on, the twin lands long before the stalled
        # original would have.
        lock = threading.Lock()
        calls = {}

        def scripted(args):
            digest = args[1]
            with lock:
                calls[digest] = calls.get(digest, 0) + 1
                nth = calls[digest]
            if digest == "slow" and nth == 1:
                time.sleep(1.5)
            return reply_ok(digest)

        monkeypatch.setattr(backends_module, "attempt_job", scripted)
        scheduler = self.make_scheduler(
            SchedulerConfig(
                retry_backoff=0.0,
                speculate=True,
                poll_interval=0.01,
            ),
            workers=2,
        )
        jobs = [
            SweepJob(digest=d, name=d, spec_json="{}")
            for d in ("f1", "f2", "f3", "slow")
        ]
        started = time.monotonic()
        outcomes = scheduler.run(jobs)
        elapsed = time.monotonic() - started
        assert all(outcome.ok for outcome in outcomes)
        assert len(outcomes) == 4
        assert calls["slow"] == 2  # original + speculative twin
        assert elapsed < 1.4  # did not wait out the stalled original

    def test_speculation_needs_enough_samples(self, monkeypatch):
        # With only one finished cell the median is not trusted, so
        # nothing is duplicated no matter how slow a cell looks.
        lock = threading.Lock()
        calls = {}

        def scripted(args):
            digest = args[1]
            with lock:
                calls[digest] = calls.get(digest, 0) + 1
            if digest == "slow":
                time.sleep(0.4)
            return reply_ok(digest)

        monkeypatch.setattr(backends_module, "attempt_job", scripted)
        scheduler = self.make_scheduler(
            SchedulerConfig(
                retry_backoff=0.0,
                speculate=True,
                poll_interval=0.01,
            ),
            workers=2,
        )
        jobs = [
            SweepJob(digest=d, name=d, spec_json="{}")
            for d in ("f1", "slow")
        ]
        outcomes = scheduler.run(jobs)
        assert all(outcome.ok for outcome in outcomes)
        assert calls["slow"] == 1


class QueueHarness:
    """Shared helpers for the queue-backend tests."""

    @staticmethod
    def counting_attempt_job(monkeypatch):
        """Patch attempt_job to count executions per digest."""
        real = backends_module.attempt_job
        lock = threading.Lock()
        executed = []

        def counting(args):
            with lock:
                executed.append(args[1])
            return real(args)

        monkeypatch.setattr(backends_module, "attempt_job", counting)
        return executed


class TestQueueBackend(QueueHarness):
    def test_single_invocation_drains_the_matrix(
        self, monkeypatch, tmp_path
    ):
        executed = self.counting_attempt_job(monkeypatch)
        specs = cheap_specs((1, 2, 3))
        cache = str(tmp_path / "cache")
        report = run_sweep(
            specs,
            backend=QueueBackend(str(tmp_path / "queue")),
            cache_dir=cache,
        )
        assert report.failures == []
        assert len(report.results) == 3
        assert sorted(executed) == sorted(
            spec_hash(spec) for spec in specs
        )
        # A rerun over the same cache computes nothing.
        executed.clear()
        again = run_sweep(
            specs,
            backend=QueueBackend(str(tmp_path / "queue")),
            cache_dir=cache,
        )
        assert again.cache_hits == 3
        assert executed == []

    def test_two_concurrent_invocations_compute_each_cell_once(
        self, monkeypatch, tmp_path
    ):
        # The acceptance scenario: two invocations pointed at one work
        # dir drain the matrix cooperatively.  Exactly-once is
        # asserted on actual executions — adopted outcomes also flow
        # through reports, which is the point of adoption.
        executed = self.counting_attempt_job(monkeypatch)
        specs = cheap_specs((1, 2, 3, 4))
        work_dir = str(tmp_path / "queue")
        cache = str(tmp_path / "cache")
        reports = [None, None]

        def invoke(slot):
            reports[slot] = run_sweep(
                specs,
                backend=QueueBackend(work_dir),
                cache_dir=cache,
            )

        threads = [
            threading.Thread(target=invoke, args=(slot,))
            for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(report is not None for report in reports)
        assert all(report.failures == [] for report in reports)
        # Every cell executed exactly once across both invocations.
        assert sorted(executed) == sorted(
            spec_hash(spec) for spec in specs
        )
        # And the shared cache converged: a follow-up run is all hits.
        executed.clear()
        converged = run_sweep(
            specs, backend="serial", cache_dir=cache
        )
        assert converged.cache_hits == 4
        assert executed == []

    def test_failed_cell_requeues_on_resume(
        self, monkeypatch, tmp_path
    ):
        # A failure's done record is generation-stamped; a later
        # invocation may enqueue generation+1 and retry it, while the
        # succeeded cells stay adopted, never recomputed.
        specs = cheap_specs((1, 2))
        target = f"{CHEAP}@seed1"
        work_dir = str(tmp_path / "queue")
        cache = str(tmp_path / "cache")
        real = backends_module.attempt_job

        def failing(args):
            name, digest = args[0], args[1]
            if name == target:
                return (
                    digest, None, "RuntimeError: injected", "tb",
                    1, 1.0, 2.0,
                )
            return real(args)

        monkeypatch.setattr(backends_module, "attempt_job", failing)
        first = run_sweep(
            specs, backend=QueueBackend(work_dir), cache_dir=cache
        )
        assert [failure.name for failure in first.failures] == [target]
        monkeypatch.setattr(backends_module, "attempt_job", real)
        second = resume_sweep(
            cache, backend=QueueBackend(work_dir)
        )
        assert second.failures == []
        assert len(second.results) == 2
        assert second.cache_hits == 1  # seed2 was cached, not re-run
        attempts = SweepManifest.load(cache).cells[
            spec_hash(specs[0])
        ]["attempts"]
        assert attempts == 2  # failed attempt + clean resume attempt

    def test_stale_claim_is_requeued(self, monkeypatch, tmp_path):
        # A claimant machine died mid-cell: its claim file sits there
        # untouched.  With stale-claim requeue armed (the default), a
        # later invocation renames it back into todo/ and computes it;
        # only an explicit ``stale_claim_seconds=None`` leaves the
        # zombie claim to its dead owner.
        import os

        executed = self.counting_attempt_job(monkeypatch)
        spec = cheap_specs((1,))[0]
        digest = spec_hash(spec)
        work_dir = str(tmp_path / "queue")
        dead_peer = QueueBackend(work_dir)
        job = SweepJob(
            digest=digest,
            name=spec.name,
            spec_json='{"name": "x"}',
        )
        dead_peer._ensure_dirs()
        dead_peer._enqueue(job)
        assert dead_peer._claim(digest) == 0
        claimed_path = dead_peer._path("claimed", digest)
        old = os.stat(claimed_path).st_mtime - 3600
        os.utime(claimed_path, (old, old))

        # Requeue disabled: the claim is respected — the cell is left
        # to its (dead) claimant and reported as skipped.
        cautious = QueueBackend(work_dir, stale_claim_seconds=None)
        report = run_sweep(
            [spec],
            backend=cautious,
            cache_dir=str(tmp_path / "cache_a"),
        )
        assert report.results == [] and report.failures == []
        assert report.skipped == 1
        assert executed == []

        # The default backend requeues the hour-old claim (3600s >
        # the armed DEFAULT_STALE_CLAIM_SECONDS) and computes it here.
        recovering = QueueBackend(work_dir)
        report = run_sweep(
            [spec],
            backend=recovering,
            cache_dir=str(tmp_path / "cache_b"),
        )
        assert report.failures == []
        assert len(report.results) == 1
        assert executed == [digest]

    def test_claim_starts_the_lease_clock_fresh(self, tmp_path):
        # os.rename preserves mtime, so a claimed file would otherwise
        # inherit its todo record's age — and a cell that sat queued
        # (or was requeued) past the stale threshold would look like a
        # zombie the instant it was claimed, letting a peer requeue
        # and double-compute it before the first heartbeat.
        import os

        from repro import durable

        spec = cheap_specs((1,))[0]
        digest = spec_hash(spec)
        backend = QueueBackend(str(tmp_path / "queue"))
        job = SweepJob(
            digest=digest, name=spec.name, spec_json='{"name": "x"}'
        )
        backend._ensure_dirs()
        backend._enqueue(job)
        todo_path = backend._path("todo", digest)
        old = os.stat(todo_path).st_mtime - 3600
        os.utime(todo_path, (old, old))  # an hour of queued backlog
        assert backend._claim(digest) == 0
        claimed_path = backend._path("claimed", digest)
        age = durable.fs_now(backend._dir("claimed")) - os.stat(
            claimed_path
        ).st_mtime
        assert age < 10  # lease age starts at claim, not enqueue
        # A peer's stale sweep therefore leaves the live claim alone.
        peer = QueueBackend(str(tmp_path / "queue"))
        assert peer._requeue_stale([digest]) is False
        assert os.path.exists(claimed_path)
        assert not os.path.exists(todo_path)

    def test_live_claim_lease_defeats_staleness(self, tmp_path):
        # The lease heartbeat renews the claim mtime while the cell
        # runs, so even an absurdly tight staleness threshold cannot
        # requeue a *live* claimant's cell mid-execution.
        import os

        from repro import durable

        backend = QueueBackend(work_dir=str(tmp_path / "queue"))
        backend._ensure_dirs()
        claimed = backend._path("claimed", "d1")
        with open(claimed, "w", encoding="utf-8") as handle:
            handle.write("{}")
        old = os.stat(claimed).st_mtime - 50
        os.utime(claimed, (old, old))
        with durable.ClaimLease(claimed, interval=0.05):
            time.sleep(0.3)
        age = durable.fs_now(backend._dir("claimed")) - os.stat(
            claimed
        ).st_mtime
        assert age < 10  # renewed from 50s old to fresh

    def test_requires_work_dir(self):
        with pytest.raises(ValueError, match="work_dir"):
            QueueBackend("")
        with pytest.raises(ValueError, match="stale_claim_seconds"):
            QueueBackend("/tmp/q", stale_claim_seconds=0.0)

    def test_default_is_armed(self):
        assert (
            QueueBackend("/tmp/q").stale_claim_seconds
            == backends_module.DEFAULT_STALE_CLAIM_SECONDS
        )
