"""Parallel sharded MRT decode: index, plan, merge, fallback.

The contract under test is bit-identity: a sharded decode of one
archive — index pass, session-partitioned shards, parallel workers,
deterministic merge — must produce exactly the serial pass's
classifier state, reader stats and scenario metrics, and anything the
indexer cannot handle must fall back to serial (never fail, never
diverge).
"""

import json

import pytest

from repro.analysis.classify import UpdateClassifier
from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import CommunitySet
from repro.bgp.message import UpdateMessage
from repro.cli import main
from repro.mrt.reader import MRTReader
from repro.mrt.shard import (
    RangeStream,
    ShardIndexError,
    index_archive,
    plan_shards,
)
from repro.mrt.records import Bgp4mpMessage
from repro.mrt.writer import dump_records
from repro.netbase.prefix import Prefix
from repro.obs import metrics as obs_metrics
from repro.pipeline.parallel import FALLBACK_COUNTER
from repro.pipeline.stream import replay_mrt
from repro.scenarios import (
    ScenarioValidationError,
    get_scenario,
    run_scenario,
)
from repro.scenarios.spec import MrtSpec, ScenarioSpec
from repro.simulator.session import BGPSession
from dataclasses import replace


SESSIONS = (
    # (peer_asn, peer_address) — includes a 4-byte ASN (MESSAGE_AS4
    # on the wire) and an IPv6 peer (AFI 2, 16-byte address).
    (20205, "192.0.2.2"),
    (3356, "192.0.2.6"),
    (4_200_000_001, "192.0.2.10"),
    (12654, "2001:db8::2"),
)


def update(prefix, path="20205 3356 174 12654"):
    return UpdateMessage.announce(
        Prefix(prefix),
        PathAttributes(
            as_path=ASPath.from_string(path),
            next_hop="10.0.0.1",
            communities=CommunitySet.parse("3356:300"),
        ),
    )


def record(session, timestamp, prefix):
    peer_asn, peer_address = session
    local = "2001:db8::1" if ":" in peer_address else "192.0.2.1"
    return Bgp4mpMessage(
        timestamp=timestamp,
        peer_asn=peer_asn,
        local_asn=12456,
        peer_address=peer_address,
        local_address=local,
        message=update(prefix),
    )


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    """A 120-record, 4-session archive (interleaved, repeated paths)."""
    records = []
    for step in range(120):
        session = SESSIONS[step % len(SESSIONS)]
        prefix = f"10.{step % 7}.0.0/16"
        records.append(
            record(session, 1584230400.0 + step * 0.25, prefix)
        )
    path = tmp_path_factory.mktemp("shard") / "archive.mrt"
    path.write_bytes(dump_records(records))
    return str(path)


@pytest.fixture(scope="module")
def spill_archive(tmp_path_factory):
    """A real spilled archive from the internet-small-spill scenario."""
    BGPSession._counter = 0
    result = run_scenario(get_scenario("internet-small-spill"))
    source = result.spill_paths["rrc00"]
    target = tmp_path_factory.mktemp("spill") / "spill.mrt"
    target.write_bytes(open(source, "rb").read())
    import os

    for spilled in result.spill_paths.values():
        os.unlink(spilled)
    return str(target)


def classifier_outcome(path, workers=None):
    """(exported classifier state, reader stats) for one replay."""
    classifier = UpdateClassifier()
    stats = {}
    replay_mrt(
        path, classifier, collector="rrc00", stats=stats, workers=workers
    )
    return classifier.export_state(), stats


# ----------------------------------------------------------------------
# index pass
# ----------------------------------------------------------------------
class TestIndexArchive:
    def test_offsets_cover_file_exactly(self, archive):
        import os

        index = index_archive(archive)
        assert index.size == os.path.getsize(archive)
        expected = 0
        for offset, length, _session in index.entries:
            assert offset == expected
            assert length > 0
            expected = offset + length
        assert expected == index.size

    def test_record_count_matches_reader(self, archive):
        index = index_archive(archive)
        with open(archive, "rb") as handle:
            decoded = sum(1 for _ in MRTReader(handle, tolerant=True))
        assert len(index.entries) == decoded == 120

    def test_one_session_id_per_wire_session(self, archive):
        index = index_archive(archive)
        assert index.session_count == len(SESSIONS)
        # Interleaved writes mean every session id shows up repeatedly
        # and in first-appearance order.
        first_four = [entry[2] for entry in index.entries[:4]]
        assert first_four == [0, 1, 2, 3]

    def test_truncated_tail_raises(self, archive, tmp_path):
        blob = open(archive, "rb").read()
        damaged = tmp_path / "truncated.mrt"
        damaged.write_bytes(blob[:-5])
        with pytest.raises(ShardIndexError, match="truncated"):
            index_archive(str(damaged))


# ----------------------------------------------------------------------
# shard planning
# ----------------------------------------------------------------------
class TestPlanShards:
    @pytest.mark.parametrize("shard_count", [1, 2, 3, 4, 7])
    def test_sessions_partition_exactly(self, archive, shard_count):
        plan = plan_shards(archive, shard_count)
        index = index_archive(archive)
        # Every session is assigned to exactly one shard...
        assert len(plan.session_assignment) == index.session_count
        assert all(
            0 <= shard < shard_count for shard in plan.session_assignment
        )
        # ...and every record's bytes land in exactly the shard that
        # owns its session (a true partition: disjoint and complete).
        covered = []
        for shard in plan.shards:
            for start, end in shard.ranges:
                covered.append((start, end, shard.index))
        covered.sort()
        position = 0
        for start, end, _shard in covered:
            assert start == position, "ranges overlap or leave a gap"
            position = end
        assert position == plan.size
        assert sum(shard.records for shard in plan.shards) == 120

    def test_plan_is_deterministic(self, archive):
        first = plan_shards(archive, 3)
        second = plan_shards(archive, 3)
        assert first == second

    def test_rejects_bad_shard_count(self, archive):
        with pytest.raises(ValueError, match="shard_count"):
            plan_shards(archive, 0)


# ----------------------------------------------------------------------
# RangeStream
# ----------------------------------------------------------------------
class TestRangeStream:
    def test_presents_ranges_as_one_stream(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(bytes(range(100)))
        with open(path, "rb") as handle:
            stream = RangeStream(handle, [(10, 20), (50, 55), (90, 100)])
            assert stream.read() == (
                bytes(range(10, 20))
                + bytes(range(50, 55))
                + bytes(range(90, 100))
            )

    def test_chunked_reads_cross_range_boundaries(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(bytes(range(100)))
        with open(path, "rb") as handle:
            stream = RangeStream(handle, [(0, 3), (7, 12)])
            parts = []
            while True:
                chunk = stream.read(2)
                if not chunk:
                    break
                parts.append(chunk)
            assert b"".join(parts) == bytes(range(3)) + bytes(range(7, 12))

    def test_shard_ranges_decode_as_mrt(self, archive):
        plan = plan_shards(archive, 3)
        total = 0
        for shard in plan.shards:
            with open(archive, "rb") as handle:
                stream = RangeStream(handle, shard.ranges)
                records = list(MRTReader(stream, tolerant=False))
            assert len(records) == shard.records
            total += len(records)
        assert total == 120


# ----------------------------------------------------------------------
# parallel replay == serial replay
# ----------------------------------------------------------------------
class TestShardedReplayIdentity:
    def test_workers_1_matches_serial(self, archive):
        serial_state, serial_stats = classifier_outcome(archive)
        sharded_state, sharded_stats = classifier_outcome(
            archive, workers=1
        )
        assert sharded_state == serial_state
        assert sharded_stats == serial_stats

    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_k_shard_merge_matches_serial(self, spill_archive, workers):
        serial_state, serial_stats = classifier_outcome(spill_archive)
        sharded_state, sharded_stats = classifier_outcome(
            spill_archive, workers=workers
        )
        assert json.dumps(sharded_state, sort_keys=True) == json.dumps(
            serial_state, sort_keys=True
        )
        assert sharded_stats == serial_stats

    def test_shard_stats_rows_sum_to_totals(self, archive):
        classifier = UpdateClassifier()
        stats = {}
        shard_stats = []
        replay_mrt(
            archive,
            classifier,
            collector="rrc00",
            stats=stats,
            workers=2,
            shard_stats=shard_stats,
        )
        assert [row["shard"] for row in shard_stats] == [0, 1]
        assert (
            sum(row["records"] for row in shard_stats) == stats["records"]
        )
        assert (
            sum(row["observations"] for row in shard_stats)
            == stats["observations"]
        )

    def test_decode_shard_phase_recorded(self, archive):
        with obs_metrics.enabled_scope():
            obs_metrics.reset_metrics()
            classifier_outcome(archive, workers=2)
            phases = obs_metrics.registry().phase_seconds()
            fallbacks = obs_metrics.registry().counter_value(
                FALLBACK_COUNTER
            )
        assert "mrt.decode.shard" in phases
        assert fallbacks == 0


# ----------------------------------------------------------------------
# damaged archives: serial fallback, never divergence
# ----------------------------------------------------------------------
class TestDamagedArchiveFallback:
    def test_truncated_archive_falls_back_identically(
        self, archive, tmp_path
    ):
        blob = open(archive, "rb").read()
        damaged = tmp_path / "damaged.mrt"
        damaged.write_bytes(blob[:-5])
        serial_state, serial_stats = classifier_outcome(str(damaged))
        with obs_metrics.enabled_scope():
            obs_metrics.reset_metrics()
            sharded_state, sharded_stats = classifier_outcome(
                str(damaged), workers=2
            )
            fallbacks = obs_metrics.registry().counter_value(
                FALLBACK_COUNTER
            )
        assert fallbacks == 1
        assert sharded_state == serial_state
        assert sharded_stats == serial_stats

    def test_missing_file_still_raises_like_serial(self, tmp_path):
        # The fallback covers *sharding* failures; a nonexistent path
        # must surface the same error the serial path raises.
        missing = str(tmp_path / "nope.mrt")
        with pytest.raises(OSError):
            replay_mrt(missing, UpdateClassifier(), workers=2)


# ----------------------------------------------------------------------
# scenario engine integration
# ----------------------------------------------------------------------
class TestScenarioDecodeWorkers:
    def test_metrics_byte_identical_to_serial(self, spill_archive):
        base = get_scenario("mrt-replay")
        serial = run_scenario(
            replace(base, mrt=replace(base.mrt, path=spill_archive))
        )
        sharded = run_scenario(
            replace(
                base,
                mrt=replace(
                    base.mrt, path=spill_archive, decode_workers=2
                ),
            )
        )
        assert json.dumps(sharded.metrics, sort_keys=True) == json.dumps(
            serial.metrics, sort_keys=True
        )
        assert sharded.reader_stats == serial.reader_stats
        assert serial.shard_stats == []
        assert [row["shard"] for row in sharded.shard_stats] == [0, 1]

    def test_shard_stats_round_trip_serialization(self, spill_archive):
        from repro.scenarios import result_from_json, result_to_json

        base = get_scenario("mrt-replay")
        result = run_scenario(
            replace(
                base,
                mrt=replace(
                    base.mrt, path=spill_archive, decode_workers=2
                ),
            )
        )
        rebuilt = result_from_json(result_to_json(result))
        assert rebuilt.shard_stats == result.shard_stats


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
class TestDecodeWorkersValidation:
    def spec(self, decode_workers):
        return ScenarioSpec(
            name="t",
            kind="mrt",
            description="d",
            mrt=MrtSpec(path="x.mrt", decode_workers=decode_workers),
        )

    @pytest.mark.parametrize("bad", [0, -1, True, "2", 1.5])
    def test_rejects_bad_counts(self, bad):
        with pytest.raises(
            ScenarioValidationError, match="decode_workers"
        ):
            self.spec(bad).validate()

    @pytest.mark.parametrize("good", [None, 1, 2, 8])
    def test_accepts_valid_counts(self, good):
        assert self.spec(good).validate() is not None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCliWorkers:
    def test_workers_on_non_mrt_scenario_rejected(self, capsys):
        assert (
            main(["scenario", "run", "lab-junos", "--workers", "2"]) == 2
        )
        err = capsys.readouterr().err
        assert "--workers only applies to mrt scenarios" in err

    def test_mrt_replay_workers_json_carries_shard_stats(
        self, spill_archive, capsys
    ):
        assert (
            main(
                [
                    "scenario",
                    "run",
                    "mrt-replay",
                    "--input",
                    spill_archive,
                    "--workers",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert [row["shard"] for row in payload["shard_stats"]] == [0, 1]
        assert payload["spec"]["mrt"]["decode_workers"] == 2

    def test_mrt_replay_workers_human_table(self, spill_archive, capsys):
        assert (
            main(
                [
                    "scenario",
                    "run",
                    "mrt-replay",
                    "--input",
                    spill_archive,
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        assert "Parallel decode shards" in capsys.readouterr().out
