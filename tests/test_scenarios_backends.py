"""Execution backends: selection, sharding, fault tolerance, resume."""

import json
import os

import pytest

from repro.scenarios import (
    BACKEND_NAMES,
    InternetSpec,
    MrtSpec,
    ProcessBackend,
    ScenarioSpec,
    SerialBackend,
    ShardedBackend,
    SweepFailureError,
    SweepManifest,
    SweepRunner,
    ThreadBackend,
    expand_seeds,
    make_backend,
    parse_shard,
    register,
    resume_sweep,
    run_sweep,
    get_scenario,
    shard_of,
    spec_hash,
    unregister,
)

TINY = InternetSpec(
    tier1_count=2,
    transit_count=3,
    stub_count=5,
    beacon_count=1,
    link_flaps=2,
    prefix_flaps=1,
    med_churn_events=1,
    community_churn_events=2,
    prepend_change_events=1,
    collector_session_resets=1,
)


def tiny_spec(seed: int = 5) -> ScenarioSpec:
    return ScenarioSpec(
        name="backend-tiny",
        kind="internet",
        seed=seed,
        internet=TINY,
        collectors=("update_counts", "duplicates"),
    )


def failing_spec(name: str = "doomed") -> ScenarioSpec:
    """A spec that validates but fails at run time (missing archive)."""
    return ScenarioSpec(
        name=name,
        kind="mrt",
        mrt=MrtSpec(path="/nonexistent/backend-test.mrt"),
        collectors=("update_counts",),
    )


class TestMakeBackend:
    def test_names_resolve(self):
        assert make_backend("serial").name == "serial"
        assert make_backend("threads").name == "threads"
        assert make_backend("processes").name == "processes"
        assert make_backend(None).name == "processes"

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("carrier-pigeon")

    def test_shard_wraps_any_backend(self):
        backend = make_backend("threads", shard=(1, 3))
        assert isinstance(backend, ShardedBackend)
        assert backend.name == "sharded"
        assert isinstance(backend.inner, ThreadBackend)

    def test_sharded_name_needs_shard(self):
        with pytest.raises(ValueError, match="sharded"):
            make_backend("sharded")
        backend = make_backend("sharded", shard=(0, 2))
        assert isinstance(backend.inner, ProcessBackend)

    def test_all_names_are_constructible(self, tmp_path):
        for name in BACKEND_NAMES:
            shard = (0, 1) if name == "sharded" else None
            queue_dir = str(tmp_path / "queue") if name == "queue" else None
            backend = make_backend(name, shard=shard, queue_dir=queue_dir)
            assert backend.name in BACKEND_NAMES

    def test_queue_name_needs_work_dir(self):
        with pytest.raises(ValueError, match="queue"):
            make_backend("queue")


class TestParseShard:
    def test_valid(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)

    @pytest.mark.parametrize(
        "text", ["", "4", "4/3", "-1/3", "a/b", "1/0", "1/-2"]
    )
    def test_invalid_rejected(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)


class TestShardPartition:
    def test_every_digest_owned_by_exactly_one_shard(self):
        digests = [
            spec_hash(spec)
            for spec in expand_seeds(tiny_spec(), range(20))
        ]
        for count in (1, 2, 3, 5):
            for digest in digests:
                owners = [
                    index
                    for index in range(count)
                    if ShardedBackend(index, count).owns(digest)
                ]
                assert owners == [shard_of(digest, count)]

    def test_ownership_is_order_free(self):
        # Keying on the digest (not list position) means reordering or
        # growing the sweep can never reassign a cell mid-campaign.
        spec = tiny_spec(3)
        assert shard_of(spec_hash(spec), 4) == shard_of(
            spec_hash(spec), 4
        )

    def test_bad_shard_arguments_rejected(self):
        with pytest.raises(ValueError):
            ShardedBackend(2, 2)
        with pytest.raises(ValueError):
            ShardedBackend(-1, 2)
        with pytest.raises(ValueError):
            ShardedBackend(0, 0)


class TestFaultTolerance:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_failing_cell_does_not_abort_the_sweep(self, backend):
        specs = [tiny_spec(1), failing_spec(), tiny_spec(2)]
        report = run_sweep(specs, workers=2, backend=backend)
        assert [result.name for result in report.results] == [
            "backend-tiny",
            "backend-tiny",
        ]
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.name == "doomed"
        assert failure.spec_hash == spec_hash(failing_spec())
        assert "cannot open mrt archive" in failure.traceback
        assert failure.attempts == 1

    def test_failure_context_names_the_spec(self):
        # Regression: worker exceptions used to surface as a bare pool
        # traceback with no hint of which spec died.  Now the failure
        # carries the spec's name and hash everywhere it is shown.
        report = run_sweep([failing_spec()], workers=1, backend="serial")
        failure = report.failures[0]
        described = failure.describe()
        assert "'doomed'" in described
        assert spec_hash(failing_spec()) in described
        with pytest.raises(SweepFailureError) as info:
            report.raise_failures()
        assert "'doomed'" in str(info.value)
        assert spec_hash(failing_spec()) in str(info.value)

    def test_registry_injected_failing_scenario(self):
        register("backend-test-doomed", lambda: failing_spec("doomed-reg"))
        try:
            specs = [get_scenario("backend-test-doomed"), tiny_spec(1)]
            report = run_sweep(specs, workers=2, backend="processes")
        finally:
            unregister("backend-test-doomed")
        assert len(report.results) == 1
        assert report.failures[0].name == "doomed-reg"

    @pytest.mark.parametrize("backend", ["serial", "processes"])
    def test_max_retries_counts_attempts(self, backend):
        report = run_sweep(
            [failing_spec()], workers=1, backend=backend, max_retries=2
        )
        assert report.failures[0].attempts == 3

    def test_retry_recovers_from_transient_failure(self, monkeypatch):
        import repro.scenarios.backends as backends_module

        real = backends_module.run_scenario_json
        calls = {"n": 0}

        def flaky(spec_json):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient worker wobble")
            return real(spec_json)

        monkeypatch.setattr(
            backends_module, "run_scenario_json", flaky
        )
        report = run_sweep(
            [tiny_spec(1)], workers=1, backend="serial", max_retries=1
        )
        assert calls["n"] == 2
        assert not report.failures
        assert len(report.results) == 1

    def test_dead_worker_becomes_a_failure_not_an_abort(
        self, monkeypatch
    ):
        # attempt_job never raises, so an exception out of
        # future.result() means the worker process itself died
        # (BrokenProcessPool after a segfault/OOM kill).  The
        # coordinator-side catch is shared by the thread and process
        # pools; simulate the death on the threads backend where the
        # poisoned function is visible to the pool.
        import repro.scenarios.backends as backends_module

        def dying_worker(args):
            raise RuntimeError("worker killed mid-cell")

        monkeypatch.setattr(
            backends_module, "attempt_job", dying_worker
        )
        specs = expand_seeds(tiny_spec(), (1, 2))
        report = run_sweep(specs, workers=2, backend="threads")
        assert len(report.failures) == 2
        for failure in report.failures:
            assert "worker died" in failure.error
            assert "worker killed mid-cell" in failure.error

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            SweepRunner(max_retries=-1)

    def test_failed_cells_are_not_cached(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = run_sweep(
            [failing_spec()], workers=1, backend="serial", cache_dir=cache
        )
        assert first.cache_misses == 1
        digest = spec_hash(failing_spec())
        from repro.scenarios.runner import CACHE_VERSION

        assert not os.path.exists(
            os.path.join(cache, f"{digest}.{CACHE_VERSION}.json")
        )
        again = run_sweep(
            [failing_spec()], workers=1, backend="serial", cache_dir=cache
        )
        assert again.cache_hits == 0
        assert again.cache_misses == 1


class TestShardedConvergence:
    def test_n_invocations_converge_to_the_serial_sweep(self, tmp_path):
        cache = str(tmp_path / "cache")
        specs = expand_seeds(tiny_spec(), (1, 2, 3, 4))
        baseline = run_sweep(specs, workers=1, backend="serial")
        skipped_total = 0
        for index in range(3):
            backend = ShardedBackend(index, 3, inner=SerialBackend())
            report = run_sweep(
                specs, workers=1, backend=backend, cache_dir=cache
            )
            skipped_total += report.skipped
        # Every cell computed exactly once across the three shards.
        final = run_sweep(
            specs, workers=1, backend="serial", cache_dir=cache
        )
        assert final.cache_hits == len(specs)
        assert final.cache_misses == 0
        assert final.by_name().keys() == baseline.by_name().keys()
        for name, result in baseline.by_name().items():
            assert final.by_name()[name].metrics == result.metrics
            assert final.by_name()[name].spec_hash == result.spec_hash

    def test_single_shard_reports_skipped_cells(self, tmp_path):
        specs = expand_seeds(tiny_spec(), (1, 2, 3, 4))
        digests = [spec_hash(spec) for spec in specs]
        index = shard_of(digests[0], 2)
        report = run_sweep(
            specs,
            workers=1,
            backend=ShardedBackend(index, 2, inner=SerialBackend()),
            cache_dir=str(tmp_path / "cache"),
        )
        owned = sum(
            1 for digest in digests if shard_of(digest, 2) == index
        )
        assert report.cache_misses == owned
        assert report.skipped == len(specs) - owned
        assert len(report.results) == owned


class TestManifestAndResume:
    def test_manifest_records_every_cell_as_done(self, tmp_path):
        cache = str(tmp_path / "cache")
        specs = expand_seeds(tiny_spec(), (1, 2))
        run_sweep(specs, workers=1, backend="serial", cache_dir=cache)
        manifest = SweepManifest.load(cache)
        assert set(manifest.states().values()) == {"done"}
        assert sorted(spec.name for spec in manifest.specs()) == [
            "backend-tiny@seed1",
            "backend-tiny@seed2",
        ]

    def test_manifest_records_failures_with_context(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_sweep(
            [failing_spec()], workers=1, backend="serial", cache_dir=cache
        )
        manifest = SweepManifest.load(cache)
        digest = spec_hash(failing_spec())
        assert manifest.states()[digest] == "failed"
        failures = manifest.failures()
        assert failures[0].name == "doomed"
        assert "cannot open mrt archive" in failures[0].traceback

    def test_resume_recomputes_only_missing_cells(self, tmp_path):
        cache = str(tmp_path / "cache")
        specs = expand_seeds(tiny_spec(), (1, 2, 3))
        first = run_sweep(specs, workers=1, backend="serial", cache_dir=cache)
        # Simulate a cell lost to a mid-write kill: its cache file is
        # gone but the manifest still knows the sweep's shape.
        from repro.scenarios.runner import CACHE_VERSION

        lost = os.path.join(
            cache, f"{spec_hash(specs[1])}.{CACHE_VERSION}.json"
        )
        os.remove(lost)
        resumed = resume_sweep(cache, workers=1, backend="serial")
        assert resumed.cache_hits == 2
        assert resumed.cache_misses == 1
        assert resumed.by_name().keys() == first.by_name().keys()
        for name, result in first.by_name().items():
            assert resumed.by_name()[name].metrics == result.metrics

    def test_resume_retries_failed_cells(self, tmp_path, monkeypatch):
        import repro.scenarios.backends as backends_module

        cache = str(tmp_path / "cache")
        real = backends_module.run_scenario_json

        def always_fail(spec_json):
            raise OSError("worker lost")

        monkeypatch.setattr(
            backends_module, "run_scenario_json", always_fail
        )
        broken = run_sweep(
            [tiny_spec(1)], workers=1, backend="serial", cache_dir=cache
        )
        assert len(broken.failures) == 1
        monkeypatch.setattr(backends_module, "run_scenario_json", real)
        resumed = resume_sweep(cache, workers=1, backend="serial")
        assert not resumed.failures
        assert len(resumed.results) == 1
        assert SweepManifest.load(cache).states() == {
            spec_hash(tiny_spec(1)): "done"
        }

    def test_concurrent_saves_merge_instead_of_clobbering(
        self, tmp_path
    ):
        # Two shard invocations hold independent in-memory manifests
        # loaded before either wrote; whoever saves last must keep the
        # other's progress (states only move forward).
        cache = str(tmp_path / "cache")
        specs = expand_seeds(tiny_spec(), (1, 2))
        digests = [spec_hash(spec) for spec in specs]
        shard_a = SweepManifest.load(cache)
        shard_a.record(specs, digests)
        shard_b = SweepManifest.load(cache)
        shard_b.record(specs, digests)
        shard_a.mark(digests[0], "done")
        shard_a.save()
        shard_b.mark(digests[1], "done")
        shard_b.save()  # last writer — must not demote A's cell
        merged = SweepManifest.load(cache)
        assert merged.states() == {
            digests[0]: "done",
            digests[1]: "done",
        }

    def test_maybe_save_throttles_but_save_is_unconditional(
        self, tmp_path
    ):
        cache = str(tmp_path / "cache")
        spec = tiny_spec()
        manifest = SweepManifest.load(cache)
        manifest.record([spec], [spec_hash(spec)])
        manifest.save()
        manifest.mark(spec_hash(spec), "done")
        manifest.maybe_save()  # inside the interval: skipped
        assert SweepManifest.load(cache).states() == {
            spec_hash(spec): "pending"
        }
        manifest.save()
        assert SweepManifest.load(cache).states() == {
            spec_hash(spec): "done"
        }

    def test_resume_without_manifest_fails_cleanly(self, tmp_path):
        with pytest.raises(ValueError, match="no resumable sweep"):
            resume_sweep(str(tmp_path))

    def test_corrupt_manifest_treated_as_empty(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        (cache / "sweep.json").write_text("{broken", encoding="utf-8")
        assert SweepManifest.load(str(cache)).cells == {}

    def test_manifest_is_valid_checkpointed_json(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_sweep(
            [tiny_spec(1)], workers=1, backend="serial", cache_dir=cache
        )
        from repro import durable

        payload = json.loads(
            durable.read_durable(os.path.join(cache, "sweep.json"))
        )
        assert payload["version"] == "v1"
        (cell,) = payload["cells"].values()
        assert cell["state"] == "done"
        assert cell["spec"]["name"] == "backend-tiny"
