"""Unit tests for repro.netbase.prefix."""

import pytest

from repro.netbase import Prefix, PrefixError


class TestParsing:
    def test_parse_ipv4(self):
        prefix = Prefix("84.205.64.0/24")
        assert prefix.version == 4
        assert prefix.length == 24
        assert prefix.network_address == "84.205.64.0"

    def test_parse_ipv6(self):
        prefix = Prefix("2001:db8::/32")
        assert prefix.version == 6
        assert prefix.length == 32

    def test_parse_rejects_missing_length(self):
        with pytest.raises(PrefixError):
            Prefix("10.0.0.0")

    def test_parse_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix("10.0.0.0/33")
        with pytest.raises(PrefixError):
            Prefix("2001:db8::/129")

    def test_parse_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix("10.0.0.1/24")

    def test_non_strict_masks_host_bits(self):
        prefix = Prefix("10.0.0.1/24", strict=False)
        assert str(prefix) == "10.0.0.0/24"

    def test_parse_rejects_garbage(self):
        with pytest.raises(PrefixError):
            Prefix("not-a-prefix/8")

    def test_parse_rejects_non_string(self):
        with pytest.raises(PrefixError):
            Prefix(1234)  # type: ignore[arg-type]

    def test_copy_constructor(self):
        original = Prefix("10.0.0.0/8")
        assert Prefix(original) == original

    def test_zero_length_prefix(self):
        default = Prefix("0.0.0.0/0")
        assert default.length == 0
        assert default.contains(Prefix("203.0.113.0/24"))


class TestFromInt:
    def test_roundtrip(self):
        prefix = Prefix.from_int(10 << 24, 8, 4)
        assert str(prefix) == "10.0.0.0/8"

    def test_rejects_bad_version(self):
        with pytest.raises(PrefixError):
            Prefix.from_int(0, 8, 5)

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix.from_int(1, 8, 4)

    def test_rejects_negative_network(self):
        with pytest.raises(PrefixError):
            Prefix.from_int(-1, 8, 4)


class TestContainment:
    def test_contains_more_specific(self):
        assert Prefix("10.0.0.0/8").contains(Prefix("10.1.0.0/16"))

    def test_contains_self(self):
        prefix = Prefix("10.0.0.0/8")
        assert prefix.contains(prefix)

    def test_does_not_contain_less_specific(self):
        assert not Prefix("10.1.0.0/16").contains(Prefix("10.0.0.0/8"))

    def test_does_not_contain_sibling(self):
        assert not Prefix("10.0.0.0/16").contains(Prefix("11.0.0.0/16"))

    def test_cross_version_never_contains(self):
        assert not Prefix("0.0.0.0/0").contains(Prefix("2001:db8::/32"))

    def test_overlaps_is_symmetric(self):
        big = Prefix("10.0.0.0/8")
        small = Prefix("10.2.3.0/24")
        assert big.overlaps(small)
        assert small.overlaps(big)
        assert not small.overlaps(Prefix("11.0.0.0/8"))


class TestDerivation:
    def test_supernet_default(self):
        assert str(Prefix("10.128.0.0/9").supernet()) == "10.0.0.0/8"

    def test_supernet_explicit(self):
        assert str(Prefix("10.2.3.0/24").supernet(8)) == "10.0.0.0/8"

    def test_supernet_rejects_longer(self):
        with pytest.raises(PrefixError):
            Prefix("10.0.0.0/8").supernet(16)

    def test_subnets(self):
        low, high = Prefix("10.0.0.0/8").subnets()
        assert str(low) == "10.0.0.0/9"
        assert str(high) == "10.128.0.0/9"

    def test_subnets_rejects_host_route(self):
        with pytest.raises(PrefixError):
            Prefix("10.0.0.1/32").subnets()

    def test_hosts_count(self):
        assert Prefix("10.0.0.0/24").hosts_count() == 256
        assert Prefix("10.0.0.0/32").hosts_count() == 1


class TestNLRI:
    def test_roundtrip_v4(self):
        prefix = Prefix("84.205.64.0/24")
        decoded, consumed = Prefix.from_nlri(prefix.to_nlri(), 4)
        assert decoded == prefix
        assert consumed == len(prefix.to_nlri())

    def test_roundtrip_v6(self):
        prefix = Prefix("2001:db8:42::/48")
        decoded, consumed = Prefix.from_nlri(prefix.to_nlri(), 6)
        assert decoded == prefix

    def test_nlri_length_is_minimal(self):
        # /8 needs exactly one network octet.
        assert len(Prefix("10.0.0.0/8").to_nlri()) == 2
        assert len(Prefix("10.0.0.0/9").to_nlri()) == 3

    def test_decode_rejects_truncated(self):
        with pytest.raises(PrefixError):
            Prefix.from_nlri(bytes([24, 84]), 4)

    def test_decode_rejects_empty(self):
        with pytest.raises(PrefixError):
            Prefix.from_nlri(b"", 4)

    def test_decode_rejects_overlong(self):
        with pytest.raises(PrefixError):
            Prefix.from_nlri(bytes([33, 1, 2, 3, 4, 5]), 4)

    def test_decode_masks_sloppy_trailing_bits(self):
        # 10.0.0.255/24 on the wire should decode as 10.0.0.0/24.
        data = bytes([24, 10, 0, 255])
        decoded, _ = Prefix.from_nlri(data, 4)
        assert str(decoded) == "10.0.255.0/24"


class TestOrdering:
    def test_sort_by_version_then_network(self):
        prefixes = [
            Prefix("2001:db8::/32"),
            Prefix("10.0.0.0/8"),
            Prefix("9.0.0.0/8"),
        ]
        ordered = sorted(prefixes)
        assert [p.version for p in ordered] == [4, 4, 6]
        assert str(ordered[0]) == "9.0.0.0/8"

    def test_equality_and_hash(self):
        first = Prefix("10.0.0.0/8")
        second = Prefix("10.0.0.0/8")
        assert first == second
        assert hash(first) == hash(second)
        assert first != Prefix("10.0.0.0/9")

    def test_repr_is_evaluable_form(self):
        assert repr(Prefix("10.0.0.0/8")) == "Prefix('10.0.0.0/8')"

    def test_iter_host_bits(self):
        bits = list(Prefix("128.0.0.0/2").iter_host_bits())
        assert bits == [1, 0]
