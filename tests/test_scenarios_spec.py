"""Spec validation: broken scenarios must fail upfront, loudly."""

import pytest

from repro.scenarios import (
    InternetSpec,
    LabSpec,
    ScenarioSpec,
    ScenarioValidationError,
)


def lab_spec(**overrides) -> ScenarioSpec:
    payload = {
        "name": "test-lab",
        "kind": "lab",
        "lab": LabSpec(),
        "collectors": ("lab_matrix",),
    }
    payload.update(overrides)
    return ScenarioSpec(**payload)


def internet_spec(**overrides) -> ScenarioSpec:
    payload = {
        "name": "test-internet",
        "kind": "internet",
        "internet": InternetSpec(),
        "collectors": ("update_counts",),
    }
    payload.update(overrides)
    return ScenarioSpec(**payload)


class TestHeaderValidation:
    def test_valid_specs_pass(self):
        assert lab_spec().validate() is not None
        assert internet_spec().validate() is not None

    def test_empty_name_rejected(self):
        with pytest.raises(ScenarioValidationError, match="name"):
            lab_spec(name="").validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioValidationError, match="kind"):
            ScenarioSpec(name="x", kind="quantum").validate()

    def test_negative_duration_rejected(self):
        with pytest.raises(
            ScenarioValidationError, match="duration must be positive"
        ):
            internet_spec(duration=-3600.0).validate()

    def test_zero_duration_rejected(self):
        with pytest.raises(ScenarioValidationError, match="duration"):
            internet_spec(duration=0.0).validate()

    def test_positive_duration_accepted(self):
        internet_spec(duration=3600.0).validate()

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ScenarioValidationError, match="seed"):
            lab_spec(seed="lucky").validate()


class TestCollectorValidation:
    def test_unknown_collector_rejected(self):
        with pytest.raises(
            ScenarioValidationError, match="unknown collector 'volume'"
        ):
            lab_spec(collectors=("volume",)).validate()

    def test_error_lists_known_collectors(self):
        with pytest.raises(ScenarioValidationError, match="table1"):
            lab_spec(collectors=("nope",)).validate()

    def test_empty_collectors_rejected(self):
        with pytest.raises(
            ScenarioValidationError, match="at least one collector"
        ):
            lab_spec(collectors=()).validate()

    def test_duplicate_collector_rejected(self):
        with pytest.raises(ScenarioValidationError, match="duplicate"):
            lab_spec(collectors=("lab_matrix", "lab_matrix")).validate()


class TestLabValidation:
    def test_unknown_vendor_rejected(self):
        with pytest.raises(
            ScenarioValidationError, match="unknown vendor 'nokia'"
        ):
            lab_spec(lab=LabSpec(vendors=("nokia",))).validate()

    def test_vendor_aliases_accepted(self):
        lab_spec(
            lab=LabSpec(vendors=("junos", "cisco", "bird2"))
        ).validate()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(
            ScenarioValidationError, match="unknown lab experiment"
        ):
            lab_spec(lab=LabSpec(experiments=("exp9",))).validate()

    def test_negative_mrai_rejected(self):
        with pytest.raises(ScenarioValidationError, match="mrai"):
            lab_spec(lab=LabSpec(mrai=-1.0)).validate()

    def test_internet_section_on_lab_rejected(self):
        with pytest.raises(
            ScenarioValidationError, match="must not carry an internet"
        ):
            lab_spec(internet=InternetSpec()).validate()


class TestInternetValidation:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ScenarioValidationError, match="scale"):
            internet_spec(
                internet=InternetSpec(scale="planetary")
            ).validate()

    def test_unknown_vendor_in_mix_rejected(self):
        with pytest.raises(
            ScenarioValidationError, match="unknown vendor 'quagga'"
        ):
            internet_spec(
                internet=InternetSpec(vendor_mix=(("quagga", 1.0),))
            ).validate()

    def test_nonpositive_mix_weight_rejected(self):
        with pytest.raises(ScenarioValidationError, match="weight"):
            internet_spec(
                internet=InternetSpec(vendor_mix=(("junos", 0.0),))
            ).validate()

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(
            ScenarioValidationError, match="tagger_fraction"
        ):
            internet_spec(
                internet=InternetSpec(tagger_fraction=1.5)
            ).validate()

    def test_practice_fractions_must_sum_below_one(self):
        with pytest.raises(ScenarioValidationError, match="sum"):
            internet_spec(
                internet=InternetSpec(
                    tagger_fraction=0.8,
                    cleaner_egress_fraction=0.2,
                    cleaner_ingress_fraction=0.2,
                )
            ).validate()

    def test_negative_event_count_rejected(self):
        with pytest.raises(ScenarioValidationError, match="link_flaps"):
            internet_spec(
                internet=InternetSpec(link_flaps=-1)
            ).validate()

    def test_zero_topology_count_rejected(self):
        with pytest.raises(ScenarioValidationError, match="stub_count"):
            internet_spec(
                internet=InternetSpec(stub_count=0)
            ).validate()

    def test_lab_section_on_internet_rejected(self):
        with pytest.raises(
            ScenarioValidationError, match="must not carry a lab"
        ):
            internet_spec(lab=LabSpec()).validate()

    def test_delivery_batching_accepts_bools_and_none(self):
        internet_spec(
            internet=InternetSpec(delivery_batching=True)
        ).validate()
        internet_spec(
            internet=InternetSpec(delivery_batching=False)
        ).validate()
        internet_spec(
            internet=InternetSpec(delivery_batching=None)
        ).validate()

    def test_delivery_batching_rejects_non_bool(self):
        with pytest.raises(
            ScenarioValidationError, match="delivery_batching"
        ):
            internet_spec(
                internet=InternetSpec(delivery_batching="yes")
            ).validate()


class TestErrorAggregation:
    def test_all_problems_reported_at_once(self):
        spec = ScenarioSpec(
            name="",
            kind="lab",
            duration=-1.0,
            collectors=("bogus",),
            lab=LabSpec(vendors=("nokia",), experiments=("exp9",)),
        )
        with pytest.raises(ScenarioValidationError) as excinfo:
            spec.validate()
        assert len(excinfo.value.errors) >= 5
        message = str(excinfo.value)
        for fragment in ("name", "duration", "bogus", "nokia", "exp9"):
            assert fragment in message
