"""Crash-consistent durable writes: framing, orphans, leases.

The invariants pinned here are what the chaos harness leans on: a
reader can never half-parse a torn write (the checksum frame makes
corruption loud), killed writers leave only recognizably-named
temporaries (the orphan sweep reclaims them), and claim liveness is a
filesystem mtime (so the lease survives wall-clock skew).
"""

import json
import os
import time

import pytest

from repro import durable


class TestFraming:
    def test_round_trip(self):
        framed = durable.frame('{"x": 1}')
        assert framed.startswith(durable.FRAME_HEADER)
        payload, was_framed = durable.unframe(framed)
        assert payload == '{"x": 1}'
        assert was_framed

    def test_legacy_unframed_passthrough(self):
        payload, was_framed = durable.unframe('{"old": true}')
        assert payload == '{"old": true}'
        assert not was_framed

    @pytest.mark.parametrize("keep", [0.1, 0.5, 0.9])
    def test_truncation_is_torn(self, keep):
        framed = durable.frame(json.dumps({"k": "v" * 50}))
        cut = framed[: int(len(framed) * keep)]
        if not cut.startswith(durable.FRAME_HEADER):
            return  # cut inside the header: reads as legacy, fine
        with pytest.raises(durable.TornWriteError):
            durable.unframe(cut)

    def test_truncation_exactly_at_payload_end_is_torn(self):
        # The nasty case a trailer-only scheme would miss: the file
        # ends exactly where the payload does, trailer gone — the
        # header's presence is what makes it detectable.
        payload = '{"x": 1}'
        cut = durable.FRAME_HEADER + payload
        with pytest.raises(durable.TornWriteError):
            durable.unframe(cut)

    def test_bit_flip_is_torn(self):
        framed = durable.frame('{"x": 1}')
        flipped = framed.replace('"x"', '"y"', 1)
        with pytest.raises(durable.TornWriteError):
            durable.unframe(flipped)

    def test_payload_containing_trailer_text_round_trips(self):
        # rpartition takes the *last* trailer — a payload that quotes
        # the trailer syntax must not confuse the parser.
        tricky = json.dumps({"doc": "\n#repro:crc32=deadbeef;len=3\n"})
        payload, was_framed = durable.unframe(durable.frame(tricky))
        assert payload == tricky and was_framed


class TestAtomicWrite:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "cell.json")
        durable.atomic_write(path, '{"x": 1}')
        assert durable.read_durable(path) == '{"x": 1}'
        # On-disk bytes are framed; no temporaries left behind.
        raw = open(path).read()
        assert raw.startswith(durable.FRAME_HEADER)
        assert [
            name
            for name in os.listdir(tmp_path)
            if durable.is_tmp_name(name)
        ] == []

    def test_overwrite_replaces(self, tmp_path):
        path = str(tmp_path / "cell.json")
        durable.atomic_write(path, "one")
        durable.atomic_write(path, "two")
        assert durable.read_durable(path) == "two"

    def test_unchecksummed_write_is_legacy_readable(self, tmp_path):
        path = str(tmp_path / "raw.json")
        durable.atomic_write(path, '{"x": 1}', checksum=False)
        assert open(path).read() == '{"x": 1}'
        assert durable.read_durable(path) == '{"x": 1}'

    def test_read_missing_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            durable.read_durable(str(tmp_path / "absent.json"))

    def test_torn_file_raises_on_read(self, tmp_path):
        path = str(tmp_path / "torn.json")
        framed = durable.frame('{"x": 1}')
        with open(path, "w") as handle:
            handle.write(framed[: len(framed) // 2])
        with pytest.raises(durable.TornWriteError):
            durable.read_durable(path)


class TestOrphanSweep:
    def test_tmp_names_carry_the_writer_host_and_pid(self, tmp_path):
        temporary = durable.tmp_path_for(str(tmp_path / "cell.json"))
        name = os.path.basename(temporary)
        assert durable.is_tmp_name(name)
        assert durable.tmp_owner_pid(name) == os.getpid()
        assert durable.tmp_writer_is_local(name)

    def test_legacy_hostless_tmp_name_parses_as_local(self):
        name = "cell.json.tmp.4242.7"
        assert durable.tmp_owner_pid(name) == 4242
        assert durable.tmp_writer_is_local(name)

    def test_dead_pid_tmp_is_swept(self, tmp_path):
        # pid 999999 exceeds kernel.pid_max defaults — dead by
        # construction, regardless of age.
        orphan = tmp_path / "cell.json.tmp.999999.0"
        orphan.write_text("partial")
        swept = durable.sweep_orphan_tmps(str(tmp_path))
        assert swept == [str(orphan)]
        assert not orphan.exists()

    def test_live_recent_tmp_is_kept(self, tmp_path):
        mine = tmp_path / f"cell.json.tmp.{os.getpid()}.0"
        mine.write_text("mid-write right now")
        assert durable.sweep_orphan_tmps(str(tmp_path)) == []
        assert mine.exists()

    def test_old_tmp_swept_even_with_live_pid(self, tmp_path):
        stale = tmp_path / f"cell.json.tmp.{os.getpid()}.1"
        stale.write_text("forgotten")
        old = os.stat(stale).st_mtime - 3600
        os.utime(stale, (old, old))
        swept = durable.sweep_orphan_tmps(
            str(tmp_path), max_age_seconds=300.0
        )
        assert swept == [str(stale)]

    def test_foreign_host_tmp_is_never_pid_probed(self, tmp_path):
        # The queue/cache dirs are shared across hosts; a remote
        # writer's pid is meaningless here.  Its fresh tmp must
        # survive a local sweep even when that pid is dead locally —
        # only age may reclaim it.
        foreign = tmp_path / "cell.json.tmp.peer-host.999999.0"
        foreign.write_text("remote writer mid-write")
        assert not durable.tmp_writer_is_local(foreign.name)
        assert durable.sweep_orphan_tmps(str(tmp_path)) == []
        assert foreign.exists()
        old = os.stat(foreign).st_mtime - 3600
        os.utime(foreign, (old, old))
        swept = durable.sweep_orphan_tmps(
            str(tmp_path), max_age_seconds=300.0
        )
        assert swept == [str(foreign)]
        assert not foreign.exists()

    def test_remove_false_only_reports(self, tmp_path):
        orphan = tmp_path / "cell.json.tmp.999999.0"
        orphan.write_text("partial")
        swept = durable.sweep_orphan_tmps(str(tmp_path), remove=False)
        assert swept == [str(orphan)]
        assert orphan.exists()

    def test_non_tmp_files_untouched(self, tmp_path):
        real = tmp_path / "cell.json"
        real.write_text("data")
        assert durable.sweep_orphan_tmps(str(tmp_path)) == []
        assert real.exists()

    def test_missing_directory_is_empty(self, tmp_path):
        assert durable.sweep_orphan_tmps(str(tmp_path / "nope")) == []


class TestFsNowAndLease:
    def test_fs_now_tracks_the_filesystem_clock(self, tmp_path):
        probe_time = durable.fs_now(str(tmp_path))
        marker = tmp_path / "witness"
        marker.write_text("")
        drift = abs(probe_time - os.stat(marker).st_mtime)
        assert drift < 5.0  # same filesystem, same clock

    def test_fs_now_unwritable_falls_back_to_wall(self, tmp_path):
        value = durable.fs_now(str(tmp_path / "missing"))
        assert abs(value - time.time()) < 5.0

    def test_lease_renews_mtime(self, tmp_path):
        claim = tmp_path / "claim.json"
        claim.write_text("{}")
        old = os.stat(claim).st_mtime - 1000
        os.utime(claim, (old, old))
        with durable.ClaimLease(str(claim), interval=0.05):
            time.sleep(0.3)
        age = durable.fs_now(str(tmp_path)) - os.stat(claim).st_mtime
        assert age < 10  # heartbeats brought it back to fresh

    def test_lease_starts_the_clock_at_construction(self, tmp_path):
        # The claim rename preserves the todo record's (possibly
        # ancient) mtime, and the first heartbeat is an interval away;
        # the constructor's touch is what keeps a just-claimed cell
        # from instantly looking stale to a peer's requeue sweep.
        claim = tmp_path / "claim.json"
        claim.write_text("{}")
        old = os.stat(claim).st_mtime - 1000
        os.utime(claim, (old, old))
        with durable.ClaimLease(str(claim), interval=60.0):
            age = durable.fs_now(str(tmp_path)) - os.stat(
                claim
            ).st_mtime
            assert age < 10  # fresh before any heartbeat fired

    def test_lease_survives_transient_utime_errors(
        self, monkeypatch, tmp_path
    ):
        # An NFS hiccup (EIO) must not kill the heartbeat — only a
        # vanished claim file (ENOENT) means the lease is over.
        claim = tmp_path / "claim.json"
        claim.write_text("{}")
        real_utime = os.utime
        failures = iter(range(3))

        def flaky(path, *args, **kwargs):
            if path == str(claim) and next(failures, None) is not None:
                raise OSError(5, "Input/output error", path)
            return real_utime(path, *args, **kwargs)

        lease = durable.ClaimLease(str(claim), interval=0.05)
        monkeypatch.setattr(durable.os, "utime", flaky)
        time.sleep(0.4)  # several heartbeats hit the flaky window
        assert lease._thread.is_alive()
        monkeypatch.undo()
        old = os.stat(claim).st_mtime - 1000
        os.utime(claim, (old, old))
        time.sleep(0.2)
        lease.stop()
        age = durable.fs_now(str(tmp_path)) - os.stat(claim).st_mtime
        assert age < 10  # heartbeats resumed after the hiccup

    def test_lease_stops_quietly_when_claim_vanishes(self, tmp_path):
        claim = tmp_path / "claim.json"
        claim.write_text("{}")
        lease = durable.ClaimLease(str(claim), interval=0.05)
        os.remove(claim)
        time.sleep(0.2)  # heartbeat hits the missing file and exits
        lease.stop()
        assert not lease._thread.is_alive()

    def test_lease_rejects_bad_interval(self, tmp_path):
        with pytest.raises(ValueError):
            durable.ClaimLease(str(tmp_path / "c"), interval=0.0)
