#!/bin/sh
# Seeded chaos harness: crash a sweep on purpose, demand convergence.
#
# Each run arms a seeded fault plan (kills, stalls, torn writes) over
# two concurrent queue-backend sweep invocations, lets the recovery
# machinery work (stale-claim requeue, `repro doctor --repair`, a
# fault-free convergence pass), and then asserts the endgame:
#
#   * `repro doctor` finds a clean tree (no debris survived repair);
#   * the final `sweep --json` is byte-identical to a fault-free
#     reference run (zero lost cells, zero divergent results);
#   * no cell's run journal shows two *overlapping* computes (zero
#     concurrent double-computes).  A serialized recompute is allowed
#     — that is recovery working: a torn write can destroy a finished
#     cell's artifacts, and the only fix is computing it again.
#
# Usage: scripts/chaos.sh [RUNS]   (default 20; CI smoke uses 3)
set -eu

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

RUNS="${1:-20}"
SCENARIO="topology-tiny"
SEEDS="1,2,3,4"

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

echo "== chaos: fault-free reference =="
python -m repro scenario sweep "$SCENARIO" --seeds "$SEEDS" \
    --backend serial --cache-dir "$SCRATCH/reference" --json \
    > "$SCRATCH/reference.json"

RUN=1
while [ "$RUN" -le "$RUNS" ]; do
    echo "== chaos: run $RUN/$RUNS (seed $RUN) =="
    CACHE="$SCRATCH/run-$RUN"
    PLAN="$SCRATCH/plan-$RUN.json"
    python - "$PLAN" "$RUN" <<'PLAN_EOF'
import json, sys
path, seed = sys.argv[1], int(sys.argv[2])
# A seeded mix of every injectable misfortune.  Counts are small so a
# run cannot wedge: the fire markers in the shared state dir spend the
# kill budget across *both* invocations, and the convergence pass runs
# with no plan armed at all.
rules = [
    {"site": "sweep.cell", "action": "kill",
     "probability": 0.3, "count": 2},
    {"site": "queue.claim", "action": "kill",
     "probability": 0.2, "count": 1},
    {"site": "durable.write", "action": "torn",
     "probability": 0.2, "keep": 0.5, "count": 2},
    {"site": "sweep.cell", "action": "stall",
     "probability": 0.3, "seconds": 0.2},
]
with open(path, "w") as handle:
    json.dump({"seed": seed, "rules": rules}, handle)
PLAN_EOF

    # Two concurrent invocations drain the shared queue under fire;
    # crashes (exit 86) and failed cells (exit 1) are the point.
    REPRO_FAULT_PLAN="$PLAN" python -m repro scenario sweep "$SCENARIO" \
        --seeds "$SEEDS" --backend queue --stale-claim 2 \
        --cache-dir "$CACHE" >/dev/null 2>&1 &
    PID_A=$!
    REPRO_FAULT_PLAN="$PLAN" python -m repro scenario sweep "$SCENARIO" \
        --seeds "$SEEDS" --backend queue --stale-claim 2 \
        --cache-dir "$CACHE" >/dev/null 2>&1 &
    PID_B=$!
    wait "$PID_A" || true
    wait "$PID_B" || true

    # Let any zombie claim's lease go silent past the 2s threshold,
    # then repair the debris and converge fault-free.
    sleep 2.5
    python -m repro doctor "$CACHE" --repair --lease 2 >/dev/null
    python -m repro scenario sweep "$SCENARIO" --seeds "$SEEDS" \
        --backend queue --stale-claim 2 --cache-dir "$CACHE" >/dev/null
    python -m repro doctor "$CACHE" --lease 2 >/dev/null

    # Byte-identical to the fault-free reference, and no concurrent
    # double-compute in any cell journal.
    python -m repro scenario sweep "$SCENARIO" --seeds "$SEEDS" \
        --backend serial --cache-dir "$CACHE" --json \
        > "$CACHE/final.json"
    cmp "$SCRATCH/reference.json" "$CACHE/final.json"
    python - "$CACHE" <<'CHECK_EOF'
import os, sys
from repro.obs.journal import journal_dir, read_journal
cache = sys.argv[1]
journals = sorted(os.listdir(journal_dir(cache)))
assert journals, "no cell journals written"
for name in journals:
    events = read_journal(os.path.join(journal_dir(cache), name))
    # Pair every finish with the latest preceding unmatched start,
    # then demand the compute intervals never overlap: a killed
    # attempt leaves a bare start (fine), a torn-away result forces a
    # *later* recompute (fine), but two invocations computing the
    # same cell at once is the exactly-once bug this harness exists
    # to catch.
    spans, open_starts = [], []
    for event in sorted(events, key=lambda e: e.get("ts", 0.0)):
        if event.get("event") == "start":
            open_starts.append(event["ts"])
        elif event.get("event") in ("finish", "fail"):
            assert open_starts, f"{name}: finish without start"
            spans.append((open_starts.pop(), event["ts"]))
    finishes = [e for e in events if e.get("event") == "finish"]
    assert finishes, f"{name}: no finish event: {events!r}"
    spans.sort()
    for (_, earlier_end), (later_start, _) in zip(spans, spans[1:]):
        assert later_start >= earlier_end, (
            f"{name}: overlapping computes (concurrent"
            f" double-compute): {spans!r}"
        )
CHECK_EOF
    rm -rf "$CACHE"
    RUN=$((RUN + 1))
done

echo "chaos OK ($RUNS runs)"
