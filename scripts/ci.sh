#!/bin/sh
# CI for the reproduction toolkit: tier-1 tests plus a scenario-engine
# smoke run.  Usage: scripts/ci.sh  (from the repository root)
set -eu

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier 1: test suite =="
python -m pytest -x -q

echo
echo "== smoke: scenario engine =="
python -m repro scenario list >/dev/null
python -m repro scenario run topology-tiny

echo
echo "== smoke: parallel sweep + cache =="
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT
python -m repro scenario sweep topology-tiny --seeds 1,2 --workers 2 \
    --cache-dir "$CACHE_DIR"
python -m repro scenario sweep topology-tiny --seeds 1,2 --workers 2 \
    --cache-dir "$CACHE_DIR"

echo
echo "== smoke: core benchmark harness =="
# Write to a scratch file so a smoke run never rewrites the tracked
# BENCH_core.json numbers.
python benchmarks/bench_core.py --quick --output "$CACHE_DIR/BENCH_core.json"

echo
echo "== smoke: streaming pipeline benchmark =="
# The bounded-memory and equivalence contracts are asserted on every
# run; the throughput floor is relaxed here because the smoke rung is
# a sub-second run on a shared box (the tracked BENCH_pipeline.json
# numbers come from the strict default of 0.85).
python benchmarks/bench_pipeline.py --quick --min-throughput-ratio 0.5 \
    --output "$CACHE_DIR/BENCH_pipeline.json"

echo
echo "== smoke: mrt-replay of a spilled archive =="
# Run the spilling scenario through the real CLI, pull the spill path
# out of the JSON result, and replay it through the same pipeline.
python -m repro scenario run internet-small-spill --json \
    > "$CACHE_DIR/spill-result.json"
SPILL_PATH="$(python -c '
import json, sys
result = json.load(open(sys.argv[1]))
print(result["spill_paths"]["rrc00"])
' "$CACHE_DIR/spill-result.json")"
echo "spilled archive: $SPILL_PATH"
python -m repro scenario run mrt-replay --input "$SPILL_PATH"
rm -f "$SPILL_PATH"

echo
echo "CI OK"
