#!/bin/sh
# CI for the reproduction toolkit: tier-1 tests plus a scenario-engine
# smoke run.  Usage: scripts/ci.sh  (from the repository root)
set -eu

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier 1: test suite =="
python -m pytest -x -q

echo
echo "== smoke: scenario engine =="
python -m repro scenario list >/dev/null
python -m repro scenario run topology-tiny

echo
echo "== smoke: parallel sweep + cache =="
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT
python -m repro scenario sweep topology-tiny --seeds 1,2 --workers 2 \
    --cache-dir "$CACHE_DIR"
python -m repro scenario sweep topology-tiny --seeds 1,2 --workers 2 \
    --cache-dir "$CACHE_DIR"

echo
echo "== smoke: core benchmark harness =="
# Write to a scratch file so a smoke run never rewrites the tracked
# BENCH_core.json numbers.
python benchmarks/bench_core.py --quick --output "$CACHE_DIR/BENCH_core.json"

echo
echo "CI OK"
