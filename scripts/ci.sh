#!/bin/sh
# CI for the reproduction toolkit: tier-1 tests plus a scenario-engine
# smoke run.  Usage: scripts/ci.sh  (from the repository root)
set -eu

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== static analysis =="
# The contract linter gates the tree before any test runs: determinism
# (DET001/DET002), hot-path instrumentation gating (OBS001), CLI stdout
# discipline (IO001), cache schema versioning (CACHE001), bounded
# memos (MEMO001) and atomic durable writes (DUR001).  Exit 1 here
# means a contract violation — fix it or
# add a reasoned `# repro: allow(CODE) reason` waiver, don't baseline.
python -m repro check src
# The shipped baseline must stay empty: all grandfathering happens as
# in-line reasoned waivers, never as silent bulk entries.
python -c '
import json
baseline = json.load(open(".repro-check-baseline.json"))
assert baseline["findings"] == [], (
    "the shipped baseline must stay empty; use reasoned in-line"
    " waivers instead: %r" % (baseline["findings"],)
)
'

echo
echo "== tier 1: test suite =="
python -m pytest -x -q

echo
echo "== smoke: scenario engine =="
python -m repro scenario list >/dev/null
python -m repro scenario run topology-tiny

echo
echo "== smoke: parallel sweep + cache =="
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT
python -m repro scenario sweep topology-tiny --seeds 1,2 --workers 2 \
    --cache-dir "$CACHE_DIR"
python -m repro scenario sweep topology-tiny --seeds 1,2 --workers 2 \
    --cache-dir "$CACHE_DIR"

echo
echo "== smoke: every execution backend =="
for BACKEND in serial threads processes; do
    python -m repro scenario sweep topology-tiny --seeds 1,2 --workers 2 \
        --backend "$BACKEND" --cache-dir "$CACHE_DIR/backend-$BACKEND"
done

echo
echo "== smoke: sharded sweep, killed cell, resume round trip =="
# Shard 0 of 2 computes only its slice of the 4-seed sweep; shard 1's
# cells stay pending in the shared manifest (as if that invocation was
# killed before it started).  Then simulate a cell lost to a mid-write
# kill by deleting one completed cache entry, and let --resume finish
# the whole sweep from the manifest alone.
SHARD_CACHE="$CACHE_DIR/sharded"
python -m repro scenario sweep topology-tiny --seeds 1,2,3,4 \
    --shard 0/2 --backend serial --cache-dir "$SHARD_CACHE"
FIRST_CELL="$(ls "$SHARD_CACHE"/*.json | grep -v sweep.json | head -n 1)"
rm -f "$FIRST_CELL"
python -m repro scenario sweep --resume --cache-dir "$SHARD_CACHE" \
    --workers 2
# A final serial pass must be served entirely from the shared cache —
# the N cooperating invocations converged to the full sweep.
python -m repro scenario sweep topology-tiny --seeds 1,2,3,4 \
    --backend serial --cache-dir "$SHARD_CACHE" \
    | tee "$CACHE_DIR/converged.txt"
grep -q "4 hit(s), 0 miss(es)" "$CACHE_DIR/converged.txt"

echo
echo "== smoke: sweep status view =="
# The human table goes to stderr; --json puts the machine payload on
# stdout, where it must parse and agree that every cell finished.
python -m repro scenario sweep --status --cache-dir "$SHARD_CACHE"
python -m repro scenario sweep --status --cache-dir "$SHARD_CACHE" \
    --json | python -c '
import json, sys
status = json.load(sys.stdin)
assert status["counts"]["done"] == status["counts"]["total"] == 4, status
'

echo
echo "== smoke: killed worker must not cascade =="
# A worker os._exits mid-cell (a kill rule in a REPRO_FAULT_PLAN; to
# the pool it looks like a segfault or OOM kill).  The fix under
# test: the sweep completes every sibling and reports exactly the
# killed cell as failed (exit 1) — one dead worker used to fail the
# whole batch.  A fault-free --resume then finishes the matrix.
KILL_CACHE="$CACHE_DIR/killed"
cat > "$CACHE_DIR/kill-plan.json" <<'EOF'
{"seed": 1,
 "rules": [{"site": "sweep.cell", "match": "topology-tiny@seed2",
            "action": "kill"}]}
EOF
! REPRO_FAULT_PLAN="$CACHE_DIR/kill-plan.json" \
    python -m repro scenario sweep topology-tiny --seeds 1,2,3 \
    --workers 2 --backend processes --cache-dir "$KILL_CACHE"
python -m repro scenario sweep --status --cache-dir "$KILL_CACHE" \
    --json | python -c '
import json, sys
status = json.load(sys.stdin)
counts = status["counts"]
assert counts["done"] == 2 and counts["failed"] == 1, counts
failed = [c for c in status["cells"] if c["state"] == "failed"]
assert [c["name"] for c in failed] == ["topology-tiny@seed2"], failed
'
python -m repro scenario sweep --resume --cache-dir "$KILL_CACHE" \
    --workers 2
python -m repro scenario sweep --status --cache-dir "$KILL_CACHE" \
    --json | python -c '
import json, sys
counts = json.load(sys.stdin)["counts"]
assert counts["done"] == counts["total"] == 3, counts
'

echo
echo "== smoke: cooperating queue invocations =="
# Two concurrent invocations drain one shared work dir (claims by
# atomic rename); each cell is computed exactly once, and a final
# serial pass over the shared cache must be all hits.
QUEUE_CACHE="$CACHE_DIR/queued"
python -m repro scenario sweep topology-tiny --seeds 1,2,3,4 \
    --backend queue --cache-dir "$QUEUE_CACHE" &
QUEUE_PID_A=$!
python -m repro scenario sweep topology-tiny --seeds 1,2,3,4 \
    --backend queue --cache-dir "$QUEUE_CACHE" &
QUEUE_PID_B=$!
wait "$QUEUE_PID_A"
wait "$QUEUE_PID_B"
python -m repro scenario sweep topology-tiny --seeds 1,2,3,4 \
    --backend serial --cache-dir "$QUEUE_CACHE" \
    | tee "$CACHE_DIR/queue-converged.txt"
grep -q "4 hit(s), 0 miss(es)" "$CACHE_DIR/queue-converged.txt"

echo
echo "== smoke: seeded chaos (kills, stalls, torn writes) =="
# Three seeded rounds of scripts/chaos.sh: concurrent queue sweeps
# under an armed fault plan must converge — doctor-clean tree,
# byte-identical results, exactly one finish per cell journal.  The
# full 20-seed battery is the standalone `scripts/chaos.sh`.
scripts/chaos.sh 3

echo
echo "== cross-backend determinism suite =="
python -m pytest tests/test_backend_determinism.py -q

echo
echo "== smoke: core benchmark harness =="
# Write to a scratch file so a smoke run never rewrites the tracked
# BENCH_core.json numbers.
python benchmarks/bench_core.py --quick --output "$CACHE_DIR/BENCH_core.json"

echo
echo "== smoke: streaming pipeline benchmark =="
# The bounded-memory and equivalence contracts are asserted on every
# run; the throughput floor is relaxed here because the smoke rung is
# a sub-second run on a shared box (the tracked BENCH_pipeline.json
# numbers come from the strict default of 0.85).
python benchmarks/bench_pipeline.py --quick --min-throughput-ratio 0.5 \
    --output "$CACHE_DIR/BENCH_pipeline.json"

echo
echo "== smoke: read-path benchmark (verify + baseline floor) =="
# Every bench_analysis run decodes the archive twice — memo caches on
# and off — and requires bit-identical fingerprints and classification
# counts; --workers 2 additionally requires the parallel sharded
# decode to fingerprint identically to the serial pass with zero
# fallbacks.  The floor asserts decode+classify is no worse than the
# recorded pre-overhaul baseline (the overhauled path runs at ~4x, so
# 1.0 leaves plenty of headroom for shared-box noise).
python benchmarks/bench_analysis.py --quick --min-throughput-ratio 1.0 \
    --workers 2 \
    --baseline BENCH_analysis.json \
    --output "$CACHE_DIR/BENCH_analysis.json"

echo
echo "== smoke: instrumentation overhead benchmark =="
# Metrics enabled vs disabled, interleaved best-of.  The tracked
# BENCH_obs.json numbers pin the strict 5% budget; the smoke rung
# relaxes it because a sub-second run on a shared box wobbles.
python benchmarks/bench_obs.py --quick --max-overhead 0.15 \
    --output "$CACHE_DIR/BENCH_obs.json"

echo
echo "== smoke: mrt-replay of a spilled archive =="
# Run the spilling scenario through the real CLI, pull the spill path
# out of the JSON result, and replay it through the same pipeline.
python -m repro scenario run internet-small-spill --json \
    > "$CACHE_DIR/spill-result.json"
SPILL_PATH="$(python -c '
import json, sys
result = json.load(open(sys.argv[1]))
print(result["spill_paths"]["rrc00"])
' "$CACHE_DIR/spill-result.json")"
echo "spilled archive: $SPILL_PATH"
python -m repro scenario run mrt-replay --input "$SPILL_PATH"
rm -f "$SPILL_PATH"

echo
echo "CI OK"
