"""The scenario engine: one entry point from spec to results.

:func:`run_scenario` is the single execution path every driver —
CLI, examples, benchmarks, the parallel sweep runner — goes through:

1. validate the spec upfront (:meth:`ScenarioSpec.validate`);
2. instantiate the workload: the §3 lab matrix
   (:class:`repro.simulator.experiments.LabTopology`), one synthetic
   internet day (:class:`repro.workloads.InternetModel`) or an
   on-disk MRT archive (the ``mrt`` kind — real data or a file a
   previous run spilled);
3. attach the spec's metric collectors through a
   :class:`CollectorProxy` and stream every event through them;
4. return a :class:`ScenarioResult` whose ``metrics`` are plain
   JSON-friendly data, keyed by collector name.

Since the streaming-pipeline refactor, internet scenarios feed the
metric collectors *live*: an :class:`ObservationStream` is attached as
a collector sink before the network is even built, so metrics
accumulate while the simulation runs instead of after it, collector
memory can stay bounded (``archive_policy=ring:N``/``mrt-spill``) and
two hooks become possible:

* ``early_stop`` — a callable ``(observation_count, proxy) -> bool``
  checked on every observation; returning True aborts the simulation
  (the partially-accumulated metrics are still returned, flagged by
  ``ScenarioResult.stopped_early``);
* ``snapshot_every`` — record a full metrics snapshot every N
  observations into ``ScenarioResult.snapshots``.

Results carry the spec and its stable hash, so a result is a complete,
reproducible record of what ran.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.netbase.memo import memo_stats, reset_memo_stats
from repro.obs import metrics as obs_metrics
from repro.obs.journal import RunJournal
from repro.pipeline.sinks import PipelineStop, SinkBase
from repro.pipeline.stream import ObservationStream
from repro.scenarios.collectors import (
    CollectorProxy,
    ScenarioContext,
    make_collectors,
)
from repro.scenarios.serialize import (
    result_to_json,
    spec_from_json,
    spec_hash,
)
from repro.scenarios.spec import (
    InternetSpec,
    LabSpec,
    MrtSpec,
    ScenarioSpec,
    ScenarioValidationError,
)

#: Signature of the early-stop hook: (observations so far, proxy).
EarlyStopHook = Callable[[int, CollectorProxy], bool]

#: Signature of the heartbeat hook: one JSON-friendly progress dict.
HeartbeatHook = Callable[[dict], None]

#: Default journal heartbeat cadence, in observations.
DEFAULT_HEARTBEAT_EVERY = 5000


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    spec: ScenarioSpec
    #: Stable hash of the spec (cache key / provenance).
    spec_hash: str
    #: Collector name -> that collector's metrics dict.
    metrics: "Dict[str, dict]" = field(default_factory=dict)
    #: Mid-run metric snapshots (``snapshot_every``), each a dict of
    #: ``{"observations": N, "metrics": {...}}``.
    snapshots: "List[dict]" = field(default_factory=list)
    #: True when an ``early_stop`` hook aborted the run.
    stopped_early: bool = False
    #: Collector name -> on-disk MRT archive path, for runs under
    #: ``archive_policy=mrt-spill`` (the files are flushed and closed,
    #: ready for ``mrt-replay --input``).
    spill_paths: "Dict[str, str]" = field(default_factory=dict)
    #: MRT-replay source bookkeeping (``records``, ``skipped_records``,
    #: ``error_records``, ``messages``, ``observations``) so
    #: tolerant-mode drops are visible in the result instead of silent.
    #: Empty for non-mrt scenario kinds.
    reader_stats: "Dict[str, int]" = field(default_factory=dict)
    #: Per-shard reader stats for runs that took the parallel decode
    #: path (``mrt.decode_workers``): one row per shard, in shard
    #: order, each the shard's ``reader_stats`` plus its ``shard``
    #: index.  Empty for serial runs and non-mrt kinds.
    shard_stats: "List[dict]" = field(default_factory=list)
    #: Instrumentation snapshot (phase wall times, counters, gauges,
    #: memo hit/miss/evict rates) — populated only when the metrics
    #: registry is enabled for the run, *always* empty in sweep worker
    #: payloads (wall times are volatile; the cross-backend determinism
    #: contract requires byte-identical worker output).
    metrics_report: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The scenario name."""
        return self.spec.name

    def metric(self, collector: str, key: str, default=None):
        """Convenience lookup: ``metrics[collector][key]``."""
        return self.metrics.get(collector, {}).get(key, default)


class _MetricsPump(SinkBase):
    """Terminal sink of a live run: proxy fan-out + engine hooks."""

    def __init__(
        self,
        proxy: CollectorProxy,
        *,
        early_stop: "Optional[EarlyStopHook]" = None,
        snapshot_every: "Optional[int]" = None,
        journal: "Optional[RunJournal]" = None,
        heartbeat_every: "Optional[int]" = None,
        on_heartbeat: "Optional[HeartbeatHook]" = None,
    ):
        self.proxy = proxy
        self.snapshots: "List[dict]" = []
        self._early_stop = early_stop
        self._snapshot_every = snapshot_every
        self._journal = journal
        self._on_heartbeat = on_heartbeat
        # Heartbeats only make sense with somewhere to deliver them.
        if journal is None and on_heartbeat is None:
            heartbeat_every = None
        elif heartbeat_every is None:
            heartbeat_every = DEFAULT_HEARTBEAT_EVERY
        self._heartbeat_every = heartbeat_every
        self._started = time.perf_counter()

    @property
    def passive(self) -> bool:
        """True when :meth:`push` does nothing beyond proxy fan-out.

        The sharded MRT decode bypasses the pump entirely (workers
        feed fresh sinks; the coordinator merges states), so it may
        only engage when no per-observation hook — early stop,
        snapshots, journal heartbeats — would be silently skipped.
        """
        return (
            self._early_stop is None
            and not self._snapshot_every
            and self._journal is None
            and self._on_heartbeat is None
        )

    def _heartbeat(self, count: int) -> None:
        from repro.obs.journal import peak_rss_kb

        elapsed = time.perf_counter() - self._started
        payload = {
            "observations": count,
            "elapsed_seconds": elapsed,
            "rate_per_second": count / elapsed if elapsed > 0 else 0.0,
            "peak_rss_kb": peak_rss_kb(),
        }
        if self._journal is not None:
            self._journal.write("heartbeat", **payload)
        if self._on_heartbeat is not None:
            self._on_heartbeat(payload)

    def push(self, observation) -> None:
        proxy = self.proxy
        proxy.observe(observation)
        count = proxy.observed
        if (
            self._snapshot_every
            and count % self._snapshot_every == 0
        ):
            self.snapshots.append(
                {"observations": count, "metrics": proxy.snapshot()}
            )
        if (
            self._heartbeat_every
            and count % self._heartbeat_every == 0
        ):
            self._heartbeat(count)
        if self._early_stop is not None and self._early_stop(count, proxy):
            raise PipelineStop(
                f"early_stop hook fired after {count} observations"
            )


def run_scenario(
    spec: ScenarioSpec,
    *,
    early_stop: "Optional[EarlyStopHook]" = None,
    snapshot_every: "Optional[int]" = None,
    journal: "Optional[RunJournal]" = None,
    heartbeat_every: "Optional[int]" = None,
    on_heartbeat: "Optional[HeartbeatHook]" = None,
) -> ScenarioResult:
    """Validate and execute one scenario.

    ``early_stop``/``snapshot_every`` apply to the streaming kinds
    (internet, mrt); lab scenarios deliver one event per experiment
    cell and ignore them.  A *journal* receives heartbeat lines every
    *heartbeat_every* observations (and *on_heartbeat*, if given, the
    same payloads in-process).

    When the metrics registry is enabled
    (:func:`repro.obs.set_metrics_enabled`), the run starts from a
    clean registry and memo-counter slate and the result carries a
    ``metrics_report`` describing exactly this run.
    """
    spec.validate()
    instrumented = obs_metrics.metrics_enabled()
    if instrumented:
        # One report == one run: never blend in a previous run's state.
        obs_metrics.reset_metrics()
        reset_memo_stats()
    with obs_metrics.phase("scenario.setup"):
        proxy = make_collectors(spec.collectors)
        pump = _MetricsPump(
            proxy,
            early_stop=early_stop,
            snapshot_every=snapshot_every,
            journal=journal,
            heartbeat_every=heartbeat_every,
            on_heartbeat=on_heartbeat,
        )
    stopped = False
    spill_paths: "Dict[str, str]" = {}
    reader_stats: "Dict[str, int]" = {}
    shard_stats: "List[dict]" = []
    if spec.kind == "lab":
        _run_lab(spec, proxy)
    elif spec.kind == "mrt":
        stopped = _run_mrt(spec, proxy, pump, reader_stats, shard_stats)
    else:
        stopped = _run_internet(spec, proxy, pump, spill_paths)
    with obs_metrics.phase("scenario.analyze"):
        metrics = proxy.finish()
    report: dict = {}
    if instrumented:
        registry = obs_metrics.registry()
        registry.count("scenario.observations", proxy.observed)
        if reader_stats:
            replay_seconds = registry.timer_seconds("phase.mrt.replay")
            if replay_seconds > 0:
                registry.gauge(
                    "mrt.records_per_second",
                    reader_stats.get("records", 0) / replay_seconds,
                )
        report = {
            "phases": registry.phase_seconds(),
            "memo": memo_stats(),
        }
        report.update(registry.report())
    return ScenarioResult(
        spec=spec,
        spec_hash=spec_hash(spec),
        metrics=metrics,
        snapshots=pump.snapshots,
        stopped_early=stopped,
        spill_paths=spill_paths,
        reader_stats=reader_stats,
        shard_stats=shard_stats,
        metrics_report=report,
    )


def run_scenario_json(
    spec_json: str, journal_path: "Optional[str]" = None
) -> str:
    """Worker entry point for the execution backends: JSON in, JSON out.

    Every backend — inline, thread pool, process pool — funnels sweep
    cells through this one function, so the spec/result JSON text is
    the *entire* contract between coordinator and worker.  That keeps
    the multiprocessing surface to two strings and turns determinism
    into something checkable: identical spec text must yield
    byte-identical result text wherever it ran (the cross-backend
    determinism suite asserts exactly that).

    Two consequences for observability:

    * the returned JSON never carries a ``metrics_report`` — wall
      times are volatile, and a worker's payload must not depend on
      whether the coordinator happened to enable instrumentation;
    * progress goes out-of-band instead, as heartbeat lines appended
      to *journal_path* (the sweep runner points this at the cell's
      journal next to the cache manifest).
    """
    spec = spec_from_json(spec_json)
    journal: "Optional[RunJournal]" = None
    if journal_path is not None:
        journal = RunJournal(journal_path)
        journal.write("start", name=spec.name)
    try:
        result = run_scenario(spec, journal=journal)
    except BaseException as exc:
        if journal is not None:
            journal.write("fail", error=str(exc))
            journal.close()
        raise
    result.metrics_report = {}
    payload = result_to_json(result)
    if journal is not None:
        journal.write("finish", stopped_early=result.stopped_early)
        journal.close()
    return payload


# ----------------------------------------------------------------------
# lab scenarios
# ----------------------------------------------------------------------
def _run_lab(spec: ScenarioSpec, proxy: CollectorProxy) -> None:
    from repro.simulator.experiments import run_experiment
    from repro.vendors.profiles import profile_by_name

    lab = spec.lab or LabSpec()
    proxy.start(ScenarioContext(spec))
    with obs_metrics.phase("lab.run"):
        for experiment in lab.experiments:
            for vendor_name in lab.vendors:
                result = run_experiment(
                    experiment,
                    profile_by_name(vendor_name),
                    mrai=lab.mrai,
                )
                proxy.observe_lab(result)
                obs_metrics.count("lab.experiments")


# ----------------------------------------------------------------------
# internet scenarios (live-sink streaming)
# ----------------------------------------------------------------------
def _run_internet(
    spec: ScenarioSpec,
    proxy: CollectorProxy,
    pump: _MetricsPump,
    spill_paths: "Dict[str, str]",
) -> bool:
    from repro.workloads import InternetModel

    config = internet_config_from_spec(spec)
    model = InternetModel(config)
    context = ScenarioContext(spec)
    proxy.start(context)
    # The observation stream is attached before build(), so the
    # collectors' warm-up traffic reaches the metric collectors in
    # exactly archive order — metric-for-metric identical to the old
    # post-run batch iteration (per-(session, prefix) event order is
    # the same either way; see tests/test_pipeline.py).
    model.attach_collector_sink(ObservationStream(pump))
    stopped = False
    try:
        with obs_metrics.phase("internet.build"):
            model.build()
            model.schedule_day()
        with obs_metrics.phase("internet.run"):
            model.run_day()
    except PipelineStop:
        stopped = True
    day = model.simulated_day()
    if obs_metrics.metrics_enabled():
        # Post-run reads of counters the event loop keeps anyway —
        # the hot path itself stays untouched.
        queue = model.network.queue
        messages = day.total_collected_messages()
        obs_metrics.gauge("sim.events_processed", queue.processed)
        obs_metrics.gauge("sim.peak_pending_events", queue.peak_pending)
        obs_metrics.gauge("sim.collected_messages", messages)
        if queue.processed:
            # Batching effectiveness: archived messages per dispatched
            # event — higher means delivery batching is doing its job.
            obs_metrics.gauge(
                "sim.messages_per_event", messages / queue.processed
            )
    # Flush and close the archives: under mrt-spill the buffered tail
    # must reach disk before anyone replays the file, and the result
    # carries the paths so the round trip works from the CLI.
    for collector in day.collectors():
        collector.close()
        if collector.spill_path is not None:
            spill_paths[collector.name] = collector.spill_path
    context.beacon_prefixes.update(day.beacon_prefixes)
    context.day = day
    return stopped


def internet_config_from_spec(spec: ScenarioSpec):
    """Materialize an :class:`InternetConfig` from an internet spec.

    The spec's ``scale`` picks the base configuration; only explicitly
    overridden fields are applied on top, and the scenario ``seed``
    always drives the day's randomness.  The topology seed stays pinned
    to the base scale unless ``topology_seed`` overrides it, so N-seed
    sweeps rerun the *same* internet under different event randomness.
    """
    from repro.vendors.profiles import profile_by_name
    from repro.workloads import InternetConfig

    section = spec.internet or InternetSpec()
    if section.scale == "small":
        config = InternetConfig.small()
    else:
        config = InternetConfig.mar20()
    config.seed = spec.seed
    if spec.duration is not None:
        config.day_seconds = float(spec.duration)
    topology = config.topology
    if section.topology_seed is not None:
        topology.seed = section.topology_seed
    for label in ("tier1_count", "transit_count", "stub_count"):
        value = getattr(section, label)
        if value is not None:
            setattr(topology, label, value)
    if section.vendor_mix is not None:
        total = sum(weight for _, weight in section.vendor_mix)
        config.vendor_mix = tuple(
            (profile_by_name(name), weight / total)
            for name, weight in section.vendor_mix
        )
    if section.collector_names is not None:
        config.collector_names = tuple(section.collector_names)
    passthrough = (
        "tagger_fraction",
        "cleaner_egress_fraction",
        "cleaner_ingress_fraction",
        "scrub_internal_fraction",
        "collector_peer_fraction",
        "collector_peer_clean_fraction",
        "include_route_server",
        "include_bogons",
        "beacon_count",
        "link_flaps",
        "prefix_flaps",
        "med_churn_events",
        "community_churn_events",
        "prepend_change_events",
        "collector_session_resets",
        "mrai",
        "delivery_batching",
        "archive_policy",
    )
    for label in passthrough:
        value = getattr(section, label)
        if value is not None:
            setattr(config, label, value)
    return config


# ----------------------------------------------------------------------
# mrt-replay scenarios (on-disk archives as a first-class source)
# ----------------------------------------------------------------------
def _run_mrt(
    spec: ScenarioSpec,
    proxy: CollectorProxy,
    pump: _MetricsPump,
    reader_stats: "Dict[str, int]",
    shard_stats: "List[dict]",
) -> bool:
    from repro.pipeline.stream import replay_mrt

    section = spec.mrt or MrtSpec()
    if not section.path:
        raise ScenarioValidationError(
            spec.name,
            [
                "mrt.path is required to run an mrt scenario"
                " (e.g. repro scenario run mrt-replay --input FILE)"
            ],
        )
    proxy.start(ScenarioContext(spec))
    try:
        handle = open(section.path, "rb")
    except OSError as exc:
        raise ScenarioValidationError(
            spec.name, [f"cannot open mrt archive {section.path!r}: {exc}"]
        ) from None
    workers = section.decode_workers
    if workers is not None and pump.passive and proxy.supports_merge:
        # Sharded parallel decode.  Workers feed fresh per-shard sinks
        # and the proxy merges their states, so the pump is bypassed —
        # legal exactly because it is passive.  Damage, a dying pool or
        # a failing shard degrade to the serial loop *inside*
        # replay_mrt (fallback counter ticked), feeding this same
        # proxy, so either way the collectors end up byte-identical.
        handle.close()
        with obs_metrics.phase("mrt.replay"):
            proxy.observed = replay_mrt(
                section.path,
                proxy,
                collector=section.collector,
                tolerant=section.tolerant,
                stats=reader_stats,
                workers=workers,
                shard_stats=shard_stats,
            )
        return False
    stopped = False
    with handle:
        try:
            with obs_metrics.phase("mrt.replay"):
                replay_mrt(
                    handle,
                    pump,
                    collector=section.collector,
                    tolerant=section.tolerant,
                    stats=reader_stats,
                )
        except PipelineStop:
            stopped = True
    return stopped
