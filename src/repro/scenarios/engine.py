"""The scenario engine: one entry point from spec to results.

:func:`run_scenario` is the single execution path every driver —
CLI, examples, benchmarks, the parallel sweep runner — goes through:

1. validate the spec upfront (:meth:`ScenarioSpec.validate`);
2. instantiate the workload: the §3 lab matrix
   (:class:`repro.simulator.experiments.LabTopology`) or one synthetic
   internet day (:class:`repro.workloads.InternetModel`);
3. attach the spec's metric collectors through a
   :class:`CollectorProxy` and stream every event through them;
4. return a :class:`ScenarioResult` whose ``metrics`` are plain
   JSON-friendly data, keyed by collector name.

Results carry the spec and its stable hash, so a result is a complete,
reproducible record of what ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.scenarios.collectors import (
    CollectorProxy,
    ScenarioContext,
    make_collectors,
)
from repro.scenarios.serialize import spec_hash
from repro.scenarios.spec import InternetSpec, LabSpec, ScenarioSpec


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    spec: ScenarioSpec
    #: Stable hash of the spec (cache key / provenance).
    spec_hash: str
    #: Collector name -> that collector's metrics dict.
    metrics: "Dict[str, dict]" = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The scenario name."""
        return self.spec.name

    def metric(self, collector: str, key: str, default=None):
        """Convenience lookup: ``metrics[collector][key]``."""
        return self.metrics.get(collector, {}).get(key, default)


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Validate and execute one scenario."""
    spec.validate()
    proxy = make_collectors(spec.collectors)
    if spec.kind == "lab":
        _run_lab(spec, proxy)
    else:
        _run_internet(spec, proxy)
    return ScenarioResult(
        spec=spec, spec_hash=spec_hash(spec), metrics=proxy.finish()
    )


# ----------------------------------------------------------------------
# lab scenarios
# ----------------------------------------------------------------------
def _run_lab(spec: ScenarioSpec, proxy: CollectorProxy) -> None:
    from repro.simulator.experiments import run_experiment
    from repro.vendors.profiles import profile_by_name

    lab = spec.lab or LabSpec()
    proxy.start(ScenarioContext(spec))
    for experiment in lab.experiments:
        for vendor_name in lab.vendors:
            result = run_experiment(
                experiment,
                profile_by_name(vendor_name),
                mrai=lab.mrai,
            )
            proxy.observe_lab(result)


# ----------------------------------------------------------------------
# internet scenarios
# ----------------------------------------------------------------------
def _run_internet(spec: ScenarioSpec, proxy: CollectorProxy) -> None:
    from repro.analysis import observations_from_collector
    from repro.workloads import InternetModel

    config = internet_config_from_spec(spec)
    day = InternetModel(config).run()
    observations = []
    for collector in day.collectors():
        observations.extend(observations_from_collector(collector))
    observations.sort(key=lambda obs: obs.timestamp)
    proxy.start(
        ScenarioContext(
            spec, beacon_prefixes=set(day.beacon_prefixes), day=day
        )
    )
    for observation in observations:
        proxy.observe(observation)


def internet_config_from_spec(spec: ScenarioSpec):
    """Materialize an :class:`InternetConfig` from an internet spec.

    The spec's ``scale`` picks the base configuration; only explicitly
    overridden fields are applied on top, and the scenario ``seed``
    always drives the day's randomness.  The topology seed stays pinned
    to the base scale unless ``topology_seed`` overrides it, so N-seed
    sweeps rerun the *same* internet under different event randomness.
    """
    from repro.vendors.profiles import profile_by_name
    from repro.workloads import InternetConfig

    section = spec.internet or InternetSpec()
    if section.scale == "small":
        config = InternetConfig.small()
    else:
        config = InternetConfig.mar20()
    config.seed = spec.seed
    if spec.duration is not None:
        config.day_seconds = float(spec.duration)
    topology = config.topology
    if section.topology_seed is not None:
        topology.seed = section.topology_seed
    for label in ("tier1_count", "transit_count", "stub_count"):
        value = getattr(section, label)
        if value is not None:
            setattr(topology, label, value)
    if section.vendor_mix is not None:
        total = sum(weight for _, weight in section.vendor_mix)
        config.vendor_mix = tuple(
            (profile_by_name(name), weight / total)
            for name, weight in section.vendor_mix
        )
    passthrough = (
        "tagger_fraction",
        "cleaner_egress_fraction",
        "cleaner_ingress_fraction",
        "scrub_internal_fraction",
        "collector_peer_fraction",
        "collector_peer_clean_fraction",
        "include_route_server",
        "include_bogons",
        "beacon_count",
        "link_flaps",
        "prefix_flaps",
        "med_churn_events",
        "community_churn_events",
        "prepend_change_events",
        "collector_session_resets",
        "mrai",
        "delivery_batching",
    )
    for label in passthrough:
        value = getattr(section, label)
        if value is not None:
            setattr(config, label, value)
    return config
