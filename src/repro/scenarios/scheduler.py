"""Fault-tolerant pool scheduling for sweep cells.

The pool backends used to push every job into one executor and hope:
a single abruptly-dead worker (OOM kill, segfault, ``os._exit``)
breaks the whole ``ProcessPoolExecutor``, so every remaining future
raised ``BrokenProcessPool`` and a one-cell accident turned a long
sweep into a mostly-failed manifest.  :class:`PoolScheduler` replaces
that submit/collect loop with generations of pools:

* **Crash containment** — when the pool breaks, the jobs that never
  produced a real worker reply are resubmitted into a fresh pool,
  uncharged: only the cell that actually killed the pool should
  consume an attempt.  The rebuild budget (:attr:`SchedulerConfig.
  pool_rebuilds`) bounds how often that happens; once it is spent the
  remaining jobs run **isolated** — one single-worker pool per job —
  which exactly identifies the killer (its private pool breaks, no
  siblings involved) and lets every innocent cell finish.
* **Per-cell timeouts** — a cell observed running longer than
  ``cell_timeout`` wall seconds is charged an attempt and reaped.  On
  process pools the stuck worker is actually killed (the only way to
  stop a busy process); thread pools can only abandon the future.  A
  timed-out cell retries in the next pool generation until its
  attempt budget is spent, then lands as a ``timeout:`` failure.
* **Speculative re-dispatch** — opt-in: when lanes sit idle and a
  running cell exceeds the straggler threshold (elapsed >
  ``straggler_factor`` x the median wall of at least
  ``min_straggler_samples`` cells finished this run), the cell is
  duplicated onto a free lane and the first finisher wins.  Safe
  because payloads are deterministic and the cache write is
  idempotent by digest; the twin runs without a journal so the cell's
  JSONL trail has a single writer.

Scheduling decisions are timed with ``time.monotonic``; the only wall
clock read is the per-cell ``started_at``/``finished_at`` stamp that
feeds the manifest, mirroring what ``attempt_job`` reports from
healthy workers.
"""

from __future__ import annotations

import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro import faults
from repro.obs import metrics as obs_metrics
from repro.scenarios import backends as backends_module
from repro.scenarios.backends import (
    JobOutcome,
    OutcomeHook,
    SweepJob,
    backoff_delay,
    _outcome,
)

#: Default worker-side exponential-backoff base between retries of a
#: failing cell (seconds); doubles per attempt, see
#: :func:`repro.scenarios.backends.backoff_delay`.
DEFAULT_RETRY_BACKOFF = 0.1

#: Default number of times a broken pool is rebuilt wholesale before
#: the scheduler falls back to isolating each remaining job in its own
#: single-worker pool.
DEFAULT_POOL_REBUILDS = 1

#: Straggler threshold: elapsed > factor x median finished wall.
DEFAULT_STRAGGLER_FACTOR = 2.0

#: Minimum finished cells before straggler math is trusted at all.
DEFAULT_MIN_STRAGGLER_SAMPLES = 3


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduling knobs shared by the pool backends and the runner.

    Everything here shapes *when and where* cells execute, never what
    they compute — the determinism harness pins that no knob changes a
    payload byte.
    """

    #: Wall-clock seconds a cell may be observed running before it is
    #: reaped and charged an attempt.  ``None`` disables timeouts.
    cell_timeout: "Optional[float]" = None
    #: Base of the worker-side exponential retry backoff (seconds).
    retry_backoff: float = DEFAULT_RETRY_BACKOFF
    #: Whole-pool rebuilds allowed before isolation mode.
    pool_rebuilds: int = DEFAULT_POOL_REBUILDS
    #: Duplicate straggler cells onto idle lanes (first finisher wins).
    speculate: bool = False
    #: Elapsed-over-median factor defining a straggler.
    straggler_factor: float = DEFAULT_STRAGGLER_FACTOR
    #: Finished-cell sample floor below which no straggler is declared.
    min_straggler_samples: int = DEFAULT_MIN_STRAGGLER_SAMPLES
    #: Coordinator poll granularity (seconds) — bounds timeout and
    #: speculation reaction latency, not any result.
    poll_interval: float = 0.05

    def validate(self) -> None:
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(
                f"cell_timeout must be > 0, got {self.cell_timeout!r}"
            )
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff!r}"
            )
        if self.pool_rebuilds < 0:
            raise ValueError(
                f"pool_rebuilds must be >= 0, got {self.pool_rebuilds!r}"
            )
        if self.straggler_factor <= 0:
            raise ValueError(
                f"straggler_factor must be > 0,"
                f" got {self.straggler_factor!r}"
            )
        if self.min_straggler_samples < 1:
            raise ValueError(
                f"min_straggler_samples must be >= 1,"
                f" got {self.min_straggler_samples!r}"
            )
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be > 0, got {self.poll_interval!r}"
            )


def _median(values: "List[float]") -> "Optional[float]":
    if not values:
        return None
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


class PoolScheduler:
    """Drives one batch of jobs through generations of executor pools.

    ``make_pool(workers)`` builds a fresh executor; ``reapable`` says
    whether its stuck workers can actually be killed (process pools)
    or only abandoned (thread pools).  Outcomes are emitted via
    ``on_outcome`` from the coordinating thread as they resolve, and
    :meth:`run` returns them in original job order.
    """

    def __init__(
        self,
        *,
        make_pool: "Callable[[int], object]",
        reapable: bool,
        workers: int,
        max_retries: int = 0,
        on_outcome: "Optional[OutcomeHook]" = None,
        config: "Optional[SchedulerConfig]" = None,
    ):
        self.make_pool = make_pool
        self.reapable = reapable
        self.workers = max(1, workers)
        self.max_retries = max_retries
        self.on_outcome = on_outcome
        self.config = config or SchedulerConfig()
        self.config.validate()
        self.outcomes: "List[JobOutcome]" = []
        #: digest -> attempts charged by the coordinator (timeouts and
        #: identified crashes); worker-reported attempts add on top.
        self.charged: "Dict[str, int]" = {}

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def run(self, jobs: "Sequence[SweepJob]") -> "List[JobOutcome]":
        remaining = list(jobs)
        rebuilds_left = self.config.pool_rebuilds
        while remaining:
            remaining, crashed = self._run_generation(remaining)
            if not remaining:
                break
            if crashed:
                if rebuilds_left > 0:
                    # An unidentified worker death broke the pool:
                    # rebuild and resubmit every job that never got a
                    # real reply, charging nobody — the killer is in
                    # there somewhere, but so are its innocent
                    # siblings.
                    rebuilds_left -= 1
                    obs_metrics.count("sweep.pool_rebuilds")
                else:
                    # Budget spent: a deterministic crasher would
                    # rebuild forever.  Isolation identifies it
                    # exactly and still completes every sibling.
                    self._run_isolated(remaining)
                    remaining = []
        order = {job.digest: index for index, job in enumerate(jobs)}
        self.outcomes.sort(key=lambda outcome: order[outcome.job.digest])
        return self.outcomes

    # ------------------------------------------------------------------
    # one pool generation
    # ------------------------------------------------------------------
    def _run_generation(self, jobs):
        """Run *jobs* in one fresh pool.

        Returns ``(survivors, crashed)``: the jobs that still need a
        pool generation (unreplied after a crash, or timeout retries
        with budget left), and whether the pool broke *unexpectedly*
        (a deliberate timeout reap is not a crash and costs no rebuild
        budget).
        """
        config = self.config
        lanes = min(self.workers, len(jobs))
        pool = self.make_pool(lanes)
        job_of: "Dict[object, SweepJob]" = {}
        unresolved: "Dict[str, SweepJob]" = {
            job.digest: job for job in jobs
        }
        retrying: "Set[str]" = set()
        active: "Set[object]" = set()
        running_since: "Dict[object, float]" = {}
        started_wall: "Dict[str, float]" = {}
        speculated: "Set[str]" = set()
        finished_walls: "List[float]" = []
        crashed = False
        reaped = False
        abandoned = False
        try:
            try:
                for job in jobs:
                    future = self._submit(pool, job)
                    job_of[future] = job
                    active.add(future)
            except BrokenExecutor:
                # The pool can break while we are still submitting (a
                # very fast crasher): everything is a survivor.
                crashed = True
            while not crashed and active and unresolved:
                done, _ = wait(
                    active,
                    timeout=config.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    active.discard(future)
                    running_since.pop(future, None)
                    job = job_of[future]
                    if job.digest not in unresolved:
                        # Speculation loser, or the twin of a cell the
                        # timeout already charged — either way the cell
                        # is settled.
                        continue
                    try:
                        reply = future.result()
                    except BrokenExecutor:
                        crashed = True
                        break
                    except Exception as exc:  # noqa: BLE001
                        # attempt_job never raises, so this worker died
                        # in a way that did *not* break the pool (e.g.
                        # a thread raising through a monkeypatched
                        # entry point).  Final failure, no resubmit.
                        del unresolved[job.digest]
                        self._emit_worker_death(
                            job, exc, started_wall.get(job.digest)
                        )
                        continue
                    del unresolved[job.digest]
                    outcome = self._emit_reply(job, reply)
                    if outcome.wall_seconds is not None:
                        finished_walls.append(outcome.wall_seconds)
                if crashed:
                    break
                now = time.monotonic()
                for future in active:
                    if future not in running_since and future.running():
                        running_since[future] = now
                        # Wall stamp of the cell's observed start, for
                        # the manifest/status view — never in a payload.
                        started_wall.setdefault(
                            job_of[future].digest,
                            time.time(),  # repro: allow(DET002) manifest stamp
                        )
                if config.cell_timeout is not None:
                    charged_any = self._charge_timeouts(
                        now=now,
                        active=active,
                        running_since=running_since,
                        job_of=job_of,
                        unresolved=unresolved,
                        retrying=retrying,
                        started_wall=started_wall,
                    )
                    if charged_any and self.reapable:
                        reaped = True
                        break
                    if charged_any:
                        # Threads cannot be reaped; their expired
                        # futures were dropped from ``active`` and are
                        # left to finish into the void.
                        abandoned = True
                if config.speculate and unresolved:
                    if not self._maybe_speculate(
                        pool=pool,
                        lanes=lanes,
                        now=now,
                        active=active,
                        running_since=running_since,
                        job_of=job_of,
                        unresolved=unresolved,
                        speculated=speculated,
                        finished_walls=finished_walls,
                    ):
                        crashed = True
                        break
        finally:
            if crashed or reaped or abandoned or active:
                # Deliberate reap, cleanup after a crash, or in-flight
                # leftovers (abandoned thread futures, speculation
                # losers): kill what can be killed and do not block on
                # the rest — every settled cell is already emitted.
                self._reap_pool(pool)
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)
        survivors = [
            job
            for job in jobs
            if job.digest in unresolved or job.digest in retrying
        ]
        return survivors, crashed

    def _submit(self, pool, job: SweepJob, *, journal: bool = True):
        remaining_retries = max(
            0, self.max_retries - self.charged.get(job.digest, 0)
        )
        journal_path = job.journal_path if journal else None
        # Coordinator-side injection: a kill here takes down the whole
        # invocation with the cell still unsubmitted.
        faults.faultpoint("sched.submit", name=job.name)
        # Late-bound through the module so tests that monkeypatch
        # backends.attempt_job reach every backend, pools included.
        return pool.submit(
            backends_module.attempt_job,
            (
                job.name, job.digest, job.spec_json, remaining_retries,
                journal_path, self.config.retry_backoff,
            ),
        )

    def _charge_timeouts(
        self,
        *,
        now,
        active,
        running_since,
        job_of,
        unresolved,
        retrying,
        started_wall,
    ) -> bool:
        """Charge cells observed running past the timeout.

        Returns True when anything was charged.  On process pools the
        caller then kills the workers and ends the generation,
        resubmitting the innocent in-flight cells uncharged; thread
        pools only abandon the expired futures.
        """
        timeout = self.config.cell_timeout
        expired = [
            future
            for future, since in running_since.items()
            if future in active and now - since > timeout
        ]
        charged_any = False
        for future in expired:
            job = job_of[future]
            digest = job.digest
            if digest not in unresolved:
                continue  # its twin already resolved or was charged
            del unresolved[digest]
            charged_any = True
            obs_metrics.count("sweep.cell_timeouts")
            self.charged[digest] = self.charged.get(digest, 0) + 1
            if self.charged[digest] > self.max_retries:
                self._emit_timeout_failure(job, started_wall.get(digest))
            else:
                retrying.add(digest)
            if not self.reapable:
                # Can't kill a thread: forget the future and let the
                # stuck callable finish into the void (its late reply
                # is ignored because the digest is settled).
                active.discard(future)
        return charged_any

    def _maybe_speculate(
        self,
        *,
        pool,
        lanes,
        now,
        active,
        running_since,
        job_of,
        unresolved,
        speculated,
        finished_walls,
    ) -> bool:
        """Duplicate stragglers onto idle lanes; False if the pool broke."""
        config = self.config
        if len(active) >= lanes:
            return True  # no idle lane to speculate on
        if len(finished_walls) < config.min_straggler_samples:
            return True
        median = _median(finished_walls)
        if median is None or median <= 0:
            return True
        threshold = config.straggler_factor * median
        for future, since in list(running_since.items()):
            if len(active) >= lanes:
                break
            if future not in active:
                continue
            digest = job_of[future].digest
            if digest not in unresolved or digest in speculated:
                continue
            if now - since <= threshold:
                continue
            # The twin runs journal-less so the cell's JSONL trail
            # keeps a single writer; first finisher wins, the loser's
            # reply is dropped at collection time.
            try:
                twin = self._submit(pool, job_of[future], journal=False)
            except BrokenExecutor:
                return False
            job_of[twin] = job_of[future]
            active.add(twin)
            speculated.add(digest)
            obs_metrics.count("sweep.speculated")
        return True

    # ------------------------------------------------------------------
    # isolation mode — one single-worker pool per job
    # ------------------------------------------------------------------
    def _run_isolated(self, jobs) -> None:
        obs_metrics.count("sweep.isolated_cells", len(jobs))
        for job in jobs:
            self._run_one_isolated(job)

    def _run_one_isolated(self, job: SweepJob) -> None:
        """Run one job to a final outcome in private pools.

        A private pool makes crash attribution exact: if it breaks,
        *this* cell killed it, so the attempt charge lands on the
        right digest and the retry budget bounds a deterministic
        crasher.
        """
        config = self.config
        digest = job.digest
        while True:
            pool = self.make_pool(1)
            broke = False
            timed_out = False
            reply = None
            died: "Optional[BaseException]" = None
            # repro: allow(DET002) wall stamp of the isolated attempt's start for the manifest/status view; never in a payload
            observed_start = time.time()
            try:
                try:
                    future = self._submit(pool, job)
                    reply = future.result(timeout=config.cell_timeout)
                except FuturesTimeoutError:
                    timed_out = True
                except BrokenExecutor:
                    broke = True
                except Exception as exc:  # noqa: BLE001
                    died = exc
            finally:
                if broke or timed_out:
                    self._reap_pool(pool)
                    pool.shutdown(wait=False, cancel_futures=True)
                else:
                    pool.shutdown(wait=True)
            if reply is not None:
                self._emit_reply(job, reply)
                return
            if died is not None:
                self._emit_worker_death(job, died, observed_start)
                return
            if timed_out:
                obs_metrics.count("sweep.cell_timeouts")
            self.charged[digest] = self.charged.get(digest, 0) + 1
            if self.charged[digest] > self.max_retries:
                if timed_out:
                    self._emit_timeout_failure(job, observed_start)
                else:
                    self._emit_worker_death(job, None, observed_start)
                return
            delay = backoff_delay(
                self.charged[digest], config.retry_backoff
            )
            if delay > 0:
                time.sleep(delay)

    # ------------------------------------------------------------------
    # outcome emission
    # ------------------------------------------------------------------
    def _emit(self, outcome: JobOutcome) -> JobOutcome:
        self.outcomes.append(outcome)
        if self.on_outcome is not None:
            self.on_outcome(outcome)
        return outcome

    def _emit_reply(self, job: SweepJob, reply) -> JobOutcome:
        # A kill here dies with the reply computed but not yet folded
        # into the cache/manifest — resume must recompute the cell.
        faults.faultpoint("sched.reply", name=job.name)
        charged = self.charged.get(job.digest, 0)
        if charged:
            # Reaped/crashed attempts were observed here, not in the
            # worker; fold them into the reported attempt count.
            reply = list(reply)
            reply[4] = int(reply[4]) + charged
        return self._emit(_outcome(job, reply))

    def _emit_worker_death(
        self,
        job: SweepJob,
        exc: "Optional[BaseException]",
        observed_start: "Optional[float]",
    ) -> JobOutcome:
        attempts = self.charged.get(job.digest, 0) + 1
        if exc is None:
            error = (
                "worker died: the worker process exited abruptly"
                " (segfault, OOM kill or os._exit) on every allowed"
                " attempt"
            )
            traceback_text = ""
        else:
            error = f"worker died: {type(exc).__name__}: {exc}"
            traceback_text = "".join(
                traceback_module.format_exception(
                    type(exc), exc, exc.__traceback__
                )
            )
        reply = (
            job.digest, None, error, traceback_text, attempts,
            observed_start,
            # repro: allow(DET002) failure finish stamp for the manifest/status view; never in a payload
            time.time() if observed_start is not None else None,
        )
        return self._emit(_outcome(job, reply))

    def _emit_timeout_failure(
        self, job: SweepJob, observed_start: "Optional[float]"
    ) -> JobOutcome:
        attempts = self.charged.get(job.digest, 0)
        error = (
            f"timeout: cell exceeded --cell-timeout"
            f" ({self.config.cell_timeout:g}s wall) on every allowed"
            f" attempt"
        )
        reply = (
            job.digest, None, error, "", max(1, attempts),
            observed_start,
            # repro: allow(DET002) failure finish stamp for the manifest/status view; never in a payload
            time.time() if observed_start is not None else None,
        )
        return self._emit(_outcome(job, reply))

    # ------------------------------------------------------------------
    # pool reaping
    # ------------------------------------------------------------------
    @staticmethod
    def _reap_pool(pool) -> None:
        """Kill a process pool's workers; a no-op for thread pools."""
        faults.faultpoint("sched.reap")
        processes = getattr(pool, "_processes", None)
        if not processes:
            return
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 — already-dead worker
                pass
