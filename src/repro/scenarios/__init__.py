"""Declarative, validated, parallel experiment orchestration.

Every result in this repository — the §3 lab matrix, the Table 1/2
measurement day, the ablation what-ifs — used to be a hand-rolled
driver script wiring :class:`Network` / :class:`InternetModel` /
analysis code together.  This package replaces those drivers with one
declarative contract and one engine:

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, a typed,
  stdlib-only description of one experiment (topology params, vendor
  mix, community practices, event schedule, damping/MRAI knobs,
  collectors, seed, duration) with strict upfront validation;
* :mod:`repro.scenarios.registry` — a named catalog
  (``@scenario`` decorator) pre-seeded with the paper's matrix plus
  what-ifs: mixed-vendor internets, scrubbing sweeps, beacon-density
  sweeps and a topology-scale ladder;
* :mod:`repro.scenarios.engine` — ``run_scenario(spec)``, the single
  execution path from spec to :class:`ScenarioResult`;
* :mod:`repro.scenarios.collectors` — pluggable metric collectors
  fanned out through a :class:`CollectorProxy` (update counts,
  community prevalence, duplicate rates, Table 1/2, damping replay,
  lab matrix);
* :mod:`repro.scenarios.backends` — pluggable sweep execution
  backends (``serial`` / ``threads`` / ``processes`` / ``sharded`` /
  ``queue``) behind one :class:`ExecutionBackend` interface;
* :mod:`repro.scenarios.scheduler` — fault-tolerant pool scheduling
  for the executor backends: crash containment with pool rebuilds and
  isolation, per-cell wall-clock timeouts, deterministic retry
  backoff and speculative re-dispatch of stragglers;
* :mod:`repro.scenarios.runner` — a fault-tolerant, resumable sweep
  runner with per-spec result caching keyed on a stable spec hash
  and an on-disk ``sweep.json`` manifest, so N-seed sweeps use every
  core, re-runs are free, failed cells are reported instead of
  aborting, and killed sweeps resume where they stopped;
* :mod:`repro.scenarios.serialize` — spec/result JSON round-trip for
  reproducible, shareable run recipes.

Quick use::

    from repro.scenarios import get_scenario, run_scenario
    result = run_scenario(get_scenario("internet-small"))
    print(result.metrics["table2"]["full_shares"])

or from the command line::

    repro scenario list
    repro scenario run internet-small
    repro scenario sweep internet-small --seeds 1,2,3 --workers 4
"""

from repro.scenarios.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    DEFAULT_STALE_CLAIM_SECONDS,
    JobFailure,
    JobOutcome,
    ProcessBackend,
    QueueBackend,
    SerialBackend,
    ShardedBackend,
    SweepJob,
    ThreadBackend,
    backoff_delay,
    make_backend,
    parse_shard,
    shard_of,
)
from repro.scenarios.scheduler import PoolScheduler, SchedulerConfig
from repro.scenarios.collectors import (
    CollectorProxy,
    MetricCollector,
    ScenarioContext,
    collector,
    known_collector_names,
    make_collectors,
)
from repro.scenarios.engine import (
    ScenarioResult,
    internet_config_from_spec,
    run_scenario,
    run_scenario_json,
)
from repro.scenarios.registry import (
    UnknownScenarioError,
    all_scenarios,
    get_scenario,
    register,
    scenario,
    scenario_names,
    unregister,
)
from repro.scenarios.runner import (
    SweepFailureError,
    SweepManifest,
    SweepReport,
    SweepRunner,
    expand_seeds,
    resume_sweep,
    run_sweep,
)
from repro.scenarios.serialize import (
    failure_from_dict,
    failure_to_dict,
    result_from_json,
    result_to_json,
    spec_from_dict,
    spec_from_json,
    spec_hash,
    spec_to_dict,
    spec_to_json,
)
from repro.scenarios.spec import (
    InternetSpec,
    LabSpec,
    MrtSpec,
    ScenarioSpec,
    ScenarioValidationError,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "JobFailure",
    "DEFAULT_STALE_CLAIM_SECONDS",
    "JobOutcome",
    "PoolScheduler",
    "ProcessBackend",
    "QueueBackend",
    "SchedulerConfig",
    "SerialBackend",
    "ShardedBackend",
    "SweepJob",
    "ThreadBackend",
    "backoff_delay",
    "make_backend",
    "parse_shard",
    "shard_of",
    "CollectorProxy",
    "MetricCollector",
    "ScenarioContext",
    "collector",
    "known_collector_names",
    "make_collectors",
    "ScenarioResult",
    "internet_config_from_spec",
    "run_scenario",
    "run_scenario_json",
    "UnknownScenarioError",
    "all_scenarios",
    "get_scenario",
    "register",
    "scenario",
    "scenario_names",
    "unregister",
    "SweepFailureError",
    "SweepManifest",
    "SweepReport",
    "SweepRunner",
    "expand_seeds",
    "resume_sweep",
    "run_sweep",
    "failure_from_dict",
    "failure_to_dict",
    "result_from_json",
    "result_to_json",
    "spec_from_dict",
    "spec_from_json",
    "spec_hash",
    "spec_to_dict",
    "spec_to_json",
    "InternetSpec",
    "LabSpec",
    "MrtSpec",
    "ScenarioSpec",
    "ScenarioValidationError",
]
