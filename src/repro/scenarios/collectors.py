"""Pluggable metric collectors for the scenario engine.

Mirrors the ``CollectorProxy`` shape of simulation frameworks like
Icarus: the engine owns one :class:`CollectorProxy` that fans every
event out to the collectors the spec named, and each collector distils
its own slice of the run into a plain JSON-friendly ``dict``.  Keeping
results as plain data is what makes the parallel runner's caching and
cross-process determinism checks trivial.

Two event streams exist:

* internet scenarios feed per-prefix :class:`Observation` objects (the
  same stream the analysis layer consumes);
* lab scenarios feed one :class:`ExperimentResult` per
  experiment × vendor cell.

A collector implements whichever hooks it cares about; unused hooks
are no-ops, so a `"table2"` collector silently collects nothing on a
lab run instead of crashing it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

from repro.analysis.classify import (
    TYPE_ORDER,
    AnnouncementType,
    TypeCounts,
    UpdateClassifier,
)
from repro.analysis.observations import Observation
from repro.analysis.tables import build_table2


class ScenarioContext:
    """Run-scoped facts collectors may need (beacons, spec, day).

    With live-sink streaming the context is created *before* the
    simulation is built, so fields that only exist later (beacon
    prefixes, the finished day) start empty and are filled in by the
    engine as the run progresses.  Collectors that need them should
    keep the context reference and read at finish time.
    """

    def __init__(self, spec, *, beacon_prefixes=None, day=None):
        self.spec = spec
        self.beacon_prefixes = set(beacon_prefixes or ())
        #: The :class:`SimulatedDay` for internet runs, else ``None``.
        self.day = day


class MetricCollector:
    """Base collector: subclass and override the hooks you need."""

    #: Registry key; subclasses must set it.
    name: str = ""

    #: Collectors that can export their state as JSON data and fold in
    #: other instances' exports set this True; the parallel MRT decode
    #: path only engages when every requested collector supports it.
    #: A mergeable collector must guarantee shard-merge == serial given
    #: that every (session, prefix) stream lives wholly in one shard.
    supports_merge = False

    def start(self, context: ScenarioContext) -> None:
        """Called once before any event is delivered."""

    def observe(self, observation: Observation) -> None:
        """One per-prefix collector observation (internet runs)."""

    def observe_lab(self, result) -> None:
        """One lab :class:`ExperimentResult` (lab runs)."""

    def finish(self) -> dict:
        """Return this collector's metrics as a JSON-friendly dict."""
        return {}

    def snapshot(self) -> dict:
        """Metrics so far, without implying the run has ended.

        Defaults to :meth:`finish` — every built-in collector's finish
        is a pure aggregation over accumulated state, safe to call
        repeatedly.  Override when finish has one-shot side effects.
        """
        return self.finish()

    def export_state(self) -> dict:
        """Mergeable state as JSON data (``supports_merge`` only)."""
        raise NotImplementedError(
            f"collector {self.name!r} does not support sharded merge"
        )

    def merge_state(self, state: dict) -> None:
        """Fold one shard's exported state in (``supports_merge`` only)."""
        raise NotImplementedError(
            f"collector {self.name!r} does not support sharded merge"
        )


class CollectorProxy:
    """Fans events out to every attached collector.

    Usable directly as a pipeline sink: :meth:`push` is
    :meth:`observe`, so the engine can terminate a live observation
    stream with the proxy itself.
    """

    #: Sharded-decode job protocol tag: workers rebuild the proxy from
    #: the collector names (see :mod:`repro.pipeline.parallel`).
    shard_sink_kind = "collectors"

    def __init__(self, collectors: "Iterable[MetricCollector]"):
        self.collectors: "List[MetricCollector]" = list(collectors)
        #: Observations delivered so far (mid-run progress indicator).
        self.observed = 0

    def start(self, context: ScenarioContext) -> None:
        for collector in self.collectors:
            collector.start(context)

    def observe(self, observation: Observation) -> None:
        self.observed += 1
        for collector in self.collectors:
            collector.observe(observation)

    def observe_lab(self, result) -> None:
        for collector in self.collectors:
            collector.observe_lab(result)

    def finish(self) -> "Dict[str, dict]":
        return {
            collector.name: collector.finish()
            for collector in self.collectors
        }

    def snapshot(self) -> "Dict[str, dict]":
        """Every collector's mid-run metrics, keyed like finish()."""
        return {
            collector.name: collector.snapshot()
            for collector in self.collectors
        }

    # pipeline sink protocol -------------------------------------------
    def push(self, observation: Observation) -> None:
        self.observe(observation)

    def close(self) -> None:
        """Sink hook; the engine calls finish() explicitly."""

    # sharded-decode merge protocol ------------------------------------
    @property
    def supports_merge(self) -> bool:
        """True when every attached collector can merge shard state."""
        return all(
            collector.supports_merge for collector in self.collectors
        )

    def export_state(self) -> dict:
        return {
            collector.name: collector.export_state()
            for collector in self.collectors
        }

    def merge_state(self, state: dict) -> None:
        for collector in self.collectors:
            collector.merge_state(state[collector.name])


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_COLLECTORS: "Dict[str, Type[MetricCollector]]" = {}


def collector(cls: "Type[MetricCollector]") -> "Type[MetricCollector]":
    """Class decorator registering a collector under its ``name``."""
    if not cls.name:
        raise ValueError(f"collector {cls.__name__} must set a name")
    if cls.name in _COLLECTORS:
        raise ValueError(f"duplicate collector name: {cls.name!r}")
    _COLLECTORS[cls.name] = cls
    return cls


def known_collector_names() -> "List[str]":
    """All registered collector names, sorted."""
    return sorted(_COLLECTORS)


def make_collectors(names: "Iterable[str]") -> CollectorProxy:
    """Instantiate a proxy for the named collectors (spec order)."""
    instances = []
    for name in names:
        try:
            instances.append(_COLLECTORS[name]())
        except KeyError:
            raise KeyError(
                f"unknown collector {name!r}; known:"
                f" {', '.join(known_collector_names())}"
            ) from None
    return CollectorProxy(instances)


# ----------------------------------------------------------------------
# built-in collectors
# ----------------------------------------------------------------------
@collector
class UpdateCountsCollector(MetricCollector):
    """Announcement/withdrawal volume plus the §5 type break-down."""

    name = "update_counts"
    supports_merge = True

    def __init__(self):
        self._classifier = UpdateClassifier()
        self._observations = 0

    def observe(self, observation: Observation) -> None:
        self._observations += 1
        self._classifier.observe(observation)

    def finish(self) -> dict:
        counts = self._classifier.counts
        return {
            "observations": self._observations,
            "announcements": counts.announcements_total,
            "withdrawals": counts.withdrawals,
            "types": {
                kind.value: counts.counts[kind] for kind in TYPE_ORDER
            },
        }

    def export_state(self) -> dict:
        return {
            "observations": self._observations,
            "classifier": self._classifier.export_state(),
        }

    def merge_state(self, state: dict) -> None:
        self._observations += int(state["observations"])
        self._classifier.merge_state(state["classifier"])


@collector
class CommunityPrevalenceCollector(MetricCollector):
    """How widespread communities are in the collected feed."""

    name = "community_prevalence"
    supports_merge = True

    def __init__(self):
        self._announcements = 0
        self._with_communities = 0
        self._unique_16bit = set()

    def observe(self, observation: Observation) -> None:
        if not observation.is_announcement:
            return
        self._announcements += 1
        if observation.communities.is_empty():
            return
        self._with_communities += 1
        for community in observation.communities.classic:
            self._unique_16bit.add(community.value)

    def finish(self) -> dict:
        share = (
            self._with_communities / self._announcements
            if self._announcements
            else 0.0
        )
        return {
            "announcements": self._announcements,
            "with_communities": self._with_communities,
            "community_share": share,
            "unique_16bit_communities": len(self._unique_16bit),
        }

    def export_state(self) -> dict:
        return {
            "announcements": self._announcements,
            "with_communities": self._with_communities,
            "unique_16bit": sorted(self._unique_16bit),
        }

    def merge_state(self, state: dict) -> None:
        self._announcements += int(state["announcements"])
        self._with_communities += int(state["with_communities"])
        self._unique_16bit.update(state["unique_16bit"])


@collector
class DuplicatesCollector(MetricCollector):
    """Duplicate (`nn`) and community-only (`nc`) announcement rates —
    the paper's headline spurious-update metric."""

    name = "duplicates"
    supports_merge = True

    def __init__(self):
        self._classifier = UpdateClassifier()

    def observe(self, observation: Observation) -> None:
        self._classifier.observe(observation)

    def finish(self) -> dict:
        counts = self._classifier.counts
        total = counts.classified_total
        nn = counts.counts[AnnouncementType.NN]
        nc = counts.counts[AnnouncementType.NC]
        return {
            "classified": total,
            "nn": nn,
            "nc": nc,
            "nn_share": nn / total if total else 0.0,
            "nc_share": nc / total if total else 0.0,
            "spurious_share": (nn + nc) / total if total else 0.0,
        }

    def export_state(self) -> dict:
        return {"classifier": self._classifier.export_state()}

    def merge_state(self, state: dict) -> None:
        self._classifier.merge_state(state["classifier"])


def _canonical_path(path) -> tuple:
    """A hashable, JSON-friendly form with ASPath's equality semantics.

    One tuple per segment: ``(segment kind, member ASNs...)`` — members
    sorted and deduplicated for set segments (whose equality is by
    frozenset), kept in wire order for sequences.  Equal paths map to
    equal tuples and distinct paths to distinct tuples, so counting
    unique canonical forms counts unique paths — including across
    decode shards, where the objects themselves cannot travel.
    """
    return tuple(
        (int(segment.kind),)
        + tuple(
            sorted({int(asn) for asn in segment.asns})
            if segment.is_set
            else (int(asn) for asn in segment.asns)
        )
        for segment in path.segments
    )


@collector
class Table1Collector(MetricCollector):
    """The paper's Table 1 dataset overview.

    Accumulates incrementally in the canonical exportable forms
    (prefix strings, session tuples, canonical path tuples) instead of
    buffering every observation, so memory tracks the number of
    *distinct* entities rather than feed length — and a shard's whole
    state serializes for the parallel-decode merge.
    """

    name = "table1"
    supports_merge = True

    def __init__(self):
        self._v4: set = set()
        self._v6: set = set()
        self._ases: set = set()
        self._sessions: set = set()
        self._peers: set = set()
        self._paths: set = set()
        self._communities_16bit: set = set()
        self._announcements = 0
        self._with_communities = 0
        self._withdrawals = 0
        # Decode interning repeats the same ASPath objects for the
        # overwhelming majority of announcements; memoizing their
        # canonical form keeps this collector O(1) per observation.
        self._canonical_memo: dict = {}

    def observe(self, observation: Observation) -> None:
        session = observation.session
        self._sessions.add(
            (session.collector, int(session.peer_asn), session.peer_address)
        )
        self._peers.add(int(session.peer_asn))
        prefix = observation.prefix
        if prefix.version == 4:
            self._v4.add(str(prefix))
        else:
            self._v6.add(str(prefix))
        if observation.is_withdrawal:
            self._withdrawals += 1
            return
        self._announcements += 1
        path = observation.as_path
        if path is not None:
            canonical = self._canonical_memo.get(path)
            if canonical is None:
                canonical = _canonical_path(path)
                self._canonical_memo[path] = canonical
            if canonical not in self._paths:
                self._paths.add(canonical)
                self._ases.update(int(asn) for asn in path.asns())
        if not observation.communities.is_empty():
            self._with_communities += 1
            for community in observation.communities.classic:
                self._communities_16bit.add(community.value)

    def finish(self) -> dict:
        announcements = self._announcements
        share = (
            self._with_communities / announcements if announcements else 0.0
        )
        return {
            "ipv4_prefixes": len(self._v4),
            "ipv6_prefixes": len(self._v6),
            "ases": len(self._ases),
            "sessions": len(self._sessions),
            "peers": len(self._peers),
            "announcements": announcements,
            "with_communities": self._with_communities,
            "unique_16bit_communities": len(self._communities_16bit),
            "unique_as_paths": len(self._paths),
            "withdrawals": self._withdrawals,
            "community_share": share,
        }

    def export_state(self) -> dict:
        return {
            "v4": sorted(self._v4),
            "v6": sorted(self._v6),
            "ases": sorted(self._ases),
            "sessions": sorted(list(item) for item in self._sessions),
            "peers": sorted(self._peers),
            "paths": sorted(
                [list(segment) for segment in path] for path in self._paths
            ),
            "communities_16bit": sorted(self._communities_16bit),
            "announcements": self._announcements,
            "with_communities": self._with_communities,
            "withdrawals": self._withdrawals,
        }

    def merge_state(self, state: dict) -> None:
        self._v4.update(state["v4"])
        self._v6.update(state["v6"])
        self._ases.update(state["ases"])
        self._sessions.update(tuple(item) for item in state["sessions"])
        self._peers.update(state["peers"])
        self._paths.update(
            tuple(tuple(segment) for segment in path)
            for path in state["paths"]
        )
        self._communities_16bit.update(state["communities_16bit"])
        self._announcements += int(state["announcements"])
        self._with_communities += int(state["with_communities"])
        self._withdrawals += int(state["withdrawals"])


@collector
class Table2Collector(MetricCollector):
    """The paper's Table 2 announcement-type shares (full + beacons)."""

    name = "table2"
    #: Mergeable for MRT replays: no simulation means no beacon
    #: schedule, so the beacon subset is vacuously empty and only the
    #: full-feed counts need to travel (export classifies the shard's
    #: buffered observations; the per-stream state stays shard-local).
    supports_merge = True

    def __init__(self):
        self._observations: "List[Observation]" = []
        self._context: "Optional[ScenarioContext]" = None
        self._merged: "Optional[TypeCounts]" = None

    def start(self, context: ScenarioContext) -> None:
        # Keep the reference, not a copy: under live streaming the
        # engine fills in beacon prefixes only once the simulation has
        # scheduled them, which is after start() fires.
        self._context = context

    def observe(self, observation: Observation) -> None:
        self._observations.append(observation)

    def finish(self) -> dict:
        if self._merged is not None:
            # Merged shard counts: same output as a serial beacon-free
            # run, where empty beacons make the subset column None.
            return {
                "full_shares": {
                    kind.value: self._merged.share(kind)
                    for kind in TYPE_ORDER
                },
                "beacon_shares": None,
                "classified": self._merged.classified_total,
            }
        beacons = (
            set(self._context.beacon_prefixes)
            if self._context is not None
            else set()
        )
        table = build_table2(
            self._observations, beacons if beacons else None
        )
        full = {
            kind.value: table.full.share(kind) for kind in TYPE_ORDER
        }
        beacon = (
            {kind.value: table.beacon.share(kind) for kind in TYPE_ORDER}
            if table.beacon is not None
            else None
        )
        return {
            "full_shares": full,
            "beacon_shares": beacon,
            "classified": table.full.classified_total,
        }

    def export_state(self) -> dict:
        classifier = UpdateClassifier()
        for observation in self._observations:
            classifier.observe(observation)
        return {"full": classifier.counts.to_dict()}

    def merge_state(self, state: dict) -> None:
        if self._merged is None:
            self._merged = TypeCounts()
        self._merged.merge(TypeCounts.from_dict(state["full"]))


@collector
class DampingReplayCollector(MetricCollector):
    """What an RFC 2439 damper at the collector edge would withhold.

    Replays the feed through a per-session :class:`RouteDamper` exactly
    like the A5 ablation: type changes accrue penalty, and every
    announcement landing inside a suppression window counts as damped.
    """

    name = "damping"

    def __init__(self):
        from repro.simulator.damping import RouteDamper

        self._damper = RouteDamper()
        self._classifier = UpdateClassifier()
        self._passed = {kind: 0 for kind in AnnouncementType}
        self._suppressed = {kind: 0 for kind in AnnouncementType}

    def observe(self, observation: Observation) -> None:
        key = str(observation.session)
        announcement_type = self._classifier.observe(observation)
        if observation.is_withdrawal:
            self._damper.penalize(
                key,
                observation.prefix,
                observation.timestamp,
                is_withdrawal=True,
            )
            return
        if announcement_type is None:
            return
        if announcement_type != AnnouncementType.NN:
            self._damper.penalize(
                key,
                observation.prefix,
                observation.timestamp,
                is_withdrawal=False,
            )
        if self._damper.is_suppressed(
            key, observation.prefix, observation.timestamp
        ):
            self._suppressed[announcement_type] += 1
        else:
            self._passed[announcement_type] += 1

    def finish(self) -> dict:
        total = sum(self._passed.values()) + sum(
            self._suppressed.values()
        )
        damped = sum(self._suppressed.values())
        return {
            "announcements": total,
            "damped": damped,
            "damped_share": damped / total if total else 0.0,
            "damped_by_type": {
                kind.value: self._suppressed[kind] for kind in TYPE_ORDER
            },
            "suppress_events": self._damper.suppressions,
            "releases": self._damper.releases,
        }


@collector
class LabMatrixCollector(MetricCollector):
    """The §3 behavior matrix: one row per experiment × vendor."""

    name = "lab_matrix"

    def __init__(self):
        self._rows: "List[List[str]]" = []
        self._cells: "List[dict]" = []

    def observe_lab(self, result) -> None:
        self._rows.append(list(result.summary_row()))
        self._cells.append(
            {
                "experiment": result.experiment,
                "vendor": result.vendor,
                "update_sent_y1_to_x1": result.update_sent_y1_to_x1,
                "update_reached_collector": result.update_reached_collector,
                "collector_saw_community_change": (
                    result.collector_saw_community_change
                ),
                "collector_saw_duplicate": result.collector_saw_duplicate,
                "collector_messages": len(result.collector_messages),
            }
        )

    def finish(self) -> dict:
        return {
            "headers": ["exp", "vendor", "Y1->X1", "collector", "behavior"],
            "rows": self._rows,
            "cells": self._cells,
            "duplicates_at_collector": sum(
                1 for cell in self._cells if cell["collector_saw_duplicate"]
            ),
        }
