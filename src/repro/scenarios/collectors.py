"""Pluggable metric collectors for the scenario engine.

Mirrors the ``CollectorProxy`` shape of simulation frameworks like
Icarus: the engine owns one :class:`CollectorProxy` that fans every
event out to the collectors the spec named, and each collector distils
its own slice of the run into a plain JSON-friendly ``dict``.  Keeping
results as plain data is what makes the parallel runner's caching and
cross-process determinism checks trivial.

Two event streams exist:

* internet scenarios feed per-prefix :class:`Observation` objects (the
  same stream the analysis layer consumes);
* lab scenarios feed one :class:`ExperimentResult` per
  experiment × vendor cell.

A collector implements whichever hooks it cares about; unused hooks
are no-ops, so a `"table2"` collector silently collects nothing on a
lab run instead of crashing it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

from repro.analysis.classify import (
    TYPE_ORDER,
    AnnouncementType,
    UpdateClassifier,
)
from repro.analysis.observations import Observation
from repro.analysis.tables import build_table1, build_table2


class ScenarioContext:
    """Run-scoped facts collectors may need (beacons, spec, day).

    With live-sink streaming the context is created *before* the
    simulation is built, so fields that only exist later (beacon
    prefixes, the finished day) start empty and are filled in by the
    engine as the run progresses.  Collectors that need them should
    keep the context reference and read at finish time.
    """

    def __init__(self, spec, *, beacon_prefixes=None, day=None):
        self.spec = spec
        self.beacon_prefixes = set(beacon_prefixes or ())
        #: The :class:`SimulatedDay` for internet runs, else ``None``.
        self.day = day


class MetricCollector:
    """Base collector: subclass and override the hooks you need."""

    #: Registry key; subclasses must set it.
    name: str = ""

    def start(self, context: ScenarioContext) -> None:
        """Called once before any event is delivered."""

    def observe(self, observation: Observation) -> None:
        """One per-prefix collector observation (internet runs)."""

    def observe_lab(self, result) -> None:
        """One lab :class:`ExperimentResult` (lab runs)."""

    def finish(self) -> dict:
        """Return this collector's metrics as a JSON-friendly dict."""
        return {}

    def snapshot(self) -> dict:
        """Metrics so far, without implying the run has ended.

        Defaults to :meth:`finish` — every built-in collector's finish
        is a pure aggregation over accumulated state, safe to call
        repeatedly.  Override when finish has one-shot side effects.
        """
        return self.finish()


class CollectorProxy:
    """Fans events out to every attached collector.

    Usable directly as a pipeline sink: :meth:`push` is
    :meth:`observe`, so the engine can terminate a live observation
    stream with the proxy itself.
    """

    def __init__(self, collectors: "Iterable[MetricCollector]"):
        self.collectors: "List[MetricCollector]" = list(collectors)
        #: Observations delivered so far (mid-run progress indicator).
        self.observed = 0

    def start(self, context: ScenarioContext) -> None:
        for collector in self.collectors:
            collector.start(context)

    def observe(self, observation: Observation) -> None:
        self.observed += 1
        for collector in self.collectors:
            collector.observe(observation)

    def observe_lab(self, result) -> None:
        for collector in self.collectors:
            collector.observe_lab(result)

    def finish(self) -> "Dict[str, dict]":
        return {
            collector.name: collector.finish()
            for collector in self.collectors
        }

    def snapshot(self) -> "Dict[str, dict]":
        """Every collector's mid-run metrics, keyed like finish()."""
        return {
            collector.name: collector.snapshot()
            for collector in self.collectors
        }

    # pipeline sink protocol -------------------------------------------
    def push(self, observation: Observation) -> None:
        self.observe(observation)

    def close(self) -> None:
        """Sink hook; the engine calls finish() explicitly."""


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_COLLECTORS: "Dict[str, Type[MetricCollector]]" = {}


def collector(cls: "Type[MetricCollector]") -> "Type[MetricCollector]":
    """Class decorator registering a collector under its ``name``."""
    if not cls.name:
        raise ValueError(f"collector {cls.__name__} must set a name")
    if cls.name in _COLLECTORS:
        raise ValueError(f"duplicate collector name: {cls.name!r}")
    _COLLECTORS[cls.name] = cls
    return cls


def known_collector_names() -> "List[str]":
    """All registered collector names, sorted."""
    return sorted(_COLLECTORS)


def make_collectors(names: "Iterable[str]") -> CollectorProxy:
    """Instantiate a proxy for the named collectors (spec order)."""
    instances = []
    for name in names:
        try:
            instances.append(_COLLECTORS[name]())
        except KeyError:
            raise KeyError(
                f"unknown collector {name!r}; known:"
                f" {', '.join(known_collector_names())}"
            ) from None
    return CollectorProxy(instances)


# ----------------------------------------------------------------------
# built-in collectors
# ----------------------------------------------------------------------
@collector
class UpdateCountsCollector(MetricCollector):
    """Announcement/withdrawal volume plus the §5 type break-down."""

    name = "update_counts"

    def __init__(self):
        self._classifier = UpdateClassifier()
        self._observations = 0

    def observe(self, observation: Observation) -> None:
        self._observations += 1
        self._classifier.observe(observation)

    def finish(self) -> dict:
        counts = self._classifier.counts
        return {
            "observations": self._observations,
            "announcements": counts.announcements_total,
            "withdrawals": counts.withdrawals,
            "types": {
                kind.value: counts.counts[kind] for kind in TYPE_ORDER
            },
        }


@collector
class CommunityPrevalenceCollector(MetricCollector):
    """How widespread communities are in the collected feed."""

    name = "community_prevalence"

    def __init__(self):
        self._announcements = 0
        self._with_communities = 0
        self._unique_16bit = set()

    def observe(self, observation: Observation) -> None:
        if not observation.is_announcement:
            return
        self._announcements += 1
        if observation.communities.is_empty():
            return
        self._with_communities += 1
        for community in observation.communities.classic:
            self._unique_16bit.add(community.value)

    def finish(self) -> dict:
        share = (
            self._with_communities / self._announcements
            if self._announcements
            else 0.0
        )
        return {
            "announcements": self._announcements,
            "with_communities": self._with_communities,
            "community_share": share,
            "unique_16bit_communities": len(self._unique_16bit),
        }


@collector
class DuplicatesCollector(MetricCollector):
    """Duplicate (`nn`) and community-only (`nc`) announcement rates —
    the paper's headline spurious-update metric."""

    name = "duplicates"

    def __init__(self):
        self._classifier = UpdateClassifier()

    def observe(self, observation: Observation) -> None:
        self._classifier.observe(observation)

    def finish(self) -> dict:
        counts = self._classifier.counts
        total = counts.classified_total
        nn = counts.counts[AnnouncementType.NN]
        nc = counts.counts[AnnouncementType.NC]
        return {
            "classified": total,
            "nn": nn,
            "nc": nc,
            "nn_share": nn / total if total else 0.0,
            "nc_share": nc / total if total else 0.0,
            "spurious_share": (nn + nc) / total if total else 0.0,
        }


@collector
class Table1Collector(MetricCollector):
    """The paper's Table 1 dataset overview."""

    name = "table1"

    def __init__(self):
        self._observations: "List[Observation]" = []

    def observe(self, observation: Observation) -> None:
        self._observations.append(observation)

    def finish(self) -> dict:
        table = build_table1(self._observations)
        return {
            "ipv4_prefixes": table.ipv4_prefixes,
            "ipv6_prefixes": table.ipv6_prefixes,
            "ases": table.ases,
            "sessions": table.sessions,
            "peers": table.peers,
            "announcements": table.announcements,
            "with_communities": table.with_communities,
            "unique_16bit_communities": table.unique_16bit_communities,
            "unique_as_paths": table.unique_as_paths,
            "withdrawals": table.withdrawals,
            "community_share": table.community_share,
        }


@collector
class Table2Collector(MetricCollector):
    """The paper's Table 2 announcement-type shares (full + beacons)."""

    name = "table2"

    def __init__(self):
        self._observations: "List[Observation]" = []
        self._context: "Optional[ScenarioContext]" = None

    def start(self, context: ScenarioContext) -> None:
        # Keep the reference, not a copy: under live streaming the
        # engine fills in beacon prefixes only once the simulation has
        # scheduled them, which is after start() fires.
        self._context = context

    def observe(self, observation: Observation) -> None:
        self._observations.append(observation)

    def finish(self) -> dict:
        beacons = (
            set(self._context.beacon_prefixes)
            if self._context is not None
            else set()
        )
        table = build_table2(
            self._observations, beacons if beacons else None
        )
        full = {
            kind.value: table.full.share(kind) for kind in TYPE_ORDER
        }
        beacon = (
            {kind.value: table.beacon.share(kind) for kind in TYPE_ORDER}
            if table.beacon is not None
            else None
        )
        return {
            "full_shares": full,
            "beacon_shares": beacon,
            "classified": table.full.classified_total,
        }


@collector
class DampingReplayCollector(MetricCollector):
    """What an RFC 2439 damper at the collector edge would withhold.

    Replays the feed through a per-session :class:`RouteDamper` exactly
    like the A5 ablation: type changes accrue penalty, and every
    announcement landing inside a suppression window counts as damped.
    """

    name = "damping"

    def __init__(self):
        from repro.simulator.damping import RouteDamper

        self._damper = RouteDamper()
        self._classifier = UpdateClassifier()
        self._passed = {kind: 0 for kind in AnnouncementType}
        self._suppressed = {kind: 0 for kind in AnnouncementType}

    def observe(self, observation: Observation) -> None:
        key = str(observation.session)
        announcement_type = self._classifier.observe(observation)
        if observation.is_withdrawal:
            self._damper.penalize(
                key,
                observation.prefix,
                observation.timestamp,
                is_withdrawal=True,
            )
            return
        if announcement_type is None:
            return
        if announcement_type != AnnouncementType.NN:
            self._damper.penalize(
                key,
                observation.prefix,
                observation.timestamp,
                is_withdrawal=False,
            )
        if self._damper.is_suppressed(
            key, observation.prefix, observation.timestamp
        ):
            self._suppressed[announcement_type] += 1
        else:
            self._passed[announcement_type] += 1

    def finish(self) -> dict:
        total = sum(self._passed.values()) + sum(
            self._suppressed.values()
        )
        damped = sum(self._suppressed.values())
        return {
            "announcements": total,
            "damped": damped,
            "damped_share": damped / total if total else 0.0,
            "damped_by_type": {
                kind.value: self._suppressed[kind] for kind in TYPE_ORDER
            },
            "suppress_events": self._damper.suppressions,
            "releases": self._damper.releases,
        }


@collector
class LabMatrixCollector(MetricCollector):
    """The §3 behavior matrix: one row per experiment × vendor."""

    name = "lab_matrix"

    def __init__(self):
        self._rows: "List[List[str]]" = []
        self._cells: "List[dict]" = []

    def observe_lab(self, result) -> None:
        self._rows.append(list(result.summary_row()))
        self._cells.append(
            {
                "experiment": result.experiment,
                "vendor": result.vendor,
                "update_sent_y1_to_x1": result.update_sent_y1_to_x1,
                "update_reached_collector": result.update_reached_collector,
                "collector_saw_community_change": (
                    result.collector_saw_community_change
                ),
                "collector_saw_duplicate": result.collector_saw_duplicate,
                "collector_messages": len(result.collector_messages),
            }
        )

    def finish(self) -> dict:
        return {
            "headers": ["exp", "vendor", "Y1->X1", "collector", "behavior"],
            "rows": self._rows,
            "cells": self._cells,
            "duplicates_at_collector": sum(
                1 for cell in self._cells if cell["collector_saw_duplicate"]
            ),
        }
