"""Parallel sweep runner with per-spec result caching.

A sweep is just a list of specs — typically one scenario expanded over
N seeds (:func:`expand_seeds`) or several registry entries.  The runner
farms misses out to a process pool (simulations are pure Python and
CPU-bound, so threads would serialize on the GIL) and keys a JSON
result cache on the stable spec hash, so re-running a sweep is free and
adding one seed only computes one new cell.

Worker processes exchange nothing but JSON strings: the parent sends a
serialized spec, the child returns a serialized result.  That keeps the
multiprocessing surface tiny and doubles as a cross-process
determinism check — identical specs must produce byte-identical
payloads no matter which worker ran them.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.scenarios.engine import ScenarioResult, run_scenario
from repro.scenarios.serialize import (
    result_from_json,
    result_to_json,
    spec_from_json,
    spec_hash,
    spec_to_json,
)
from repro.scenarios.spec import ScenarioSpec


#: Cache-entry format/behavior version.  Bump whenever simulation or
#: collector output changes for an unchanged spec, so persistent
#: ``--cache-dir`` trees from older toolkit versions are recomputed
#: instead of silently served as current numbers.
CACHE_VERSION = "v1"


def expand_seeds(
    spec: ScenarioSpec, seeds: "Iterable[int]"
) -> "List[ScenarioSpec]":
    """One spec variant per seed, named ``<name>@seed<seed>``."""
    return [
        replace(spec, name=f"{spec.name}@seed{seed}", seed=seed)
        for seed in seeds
    ]


def _run_spec_json(spec_json: str) -> str:
    """Process-pool entry point: JSON spec in, JSON result out."""
    return result_to_json(run_scenario(spec_from_json(spec_json)))


@dataclass
class SweepReport:
    """Results plus bookkeeping for one sweep invocation."""

    results: "List[ScenarioResult]"
    workers: int
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    cache_dir: "Optional[str]" = None

    def by_name(self) -> "Dict[str, ScenarioResult]":
        """Results keyed by scenario name."""
        return {result.name: result for result in self.results}


class SweepRunner:
    """Runs spec batches, in parallel, through the result cache."""

    def __init__(
        self,
        *,
        workers: "Optional[int]" = None,
        cache_dir: "Optional[str]" = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers or (os.cpu_count() or 1)
        self.cache_dir = cache_dir

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def _cache_path(self, digest: str) -> "Optional[str]":
        if self.cache_dir is None:
            return None
        return os.path.join(
            self.cache_dir, f"{digest}.{CACHE_VERSION}.json"
        )

    def _cache_load(self, digest: str) -> "Optional[ScenarioResult]":
        path = self._cache_path(digest)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return result_from_json(handle.read())
        except (OSError, ValueError, KeyError):
            return None  # corrupt entry: recompute and overwrite

    def _cache_store(self, digest: str, payload: str) -> None:
        path = self._cache_path(digest)
        if path is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        temporary = f"{path}.tmp.{os.getpid()}"
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(temporary, path)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, specs: "Sequence[ScenarioSpec]") -> SweepReport:
        """Run every spec; cached cells are served without simulating."""
        started = time.perf_counter()
        for spec in specs:
            spec.validate()
        digests = [spec_hash(spec) for spec in specs]
        slots: "List[Optional[ScenarioResult]]" = [None] * len(specs)
        report = SweepReport(
            results=[], workers=self.workers, cache_dir=self.cache_dir
        )

        pending: "List[int]" = []
        computed: "Dict[str, ScenarioResult]" = {}
        for index, digest in enumerate(digests):
            cached = self._cache_load(digest)
            if cached is not None:
                slots[index] = cached
                report.cache_hits += 1
            else:
                pending.append(index)

        unique_pending: "Dict[str, int]" = {}
        for index in pending:
            unique_pending.setdefault(digests[index], index)
        report.cache_misses = len(unique_pending)

        payloads = {
            digest: spec_to_json(specs[index], indent=None)
            for digest, index in unique_pending.items()
        }
        outputs = self._execute(list(payloads.items()))
        for digest, result_json in outputs.items():
            self._cache_store(digest, result_json)
            computed[digest] = result_from_json(result_json)
        for index in pending:
            slots[index] = computed[digests[index]]
        report.results = [slot for slot in slots if slot is not None]
        report.elapsed_seconds = time.perf_counter() - started
        return report

    def _execute(
        self, jobs: "List[tuple[str, str]]"
    ) -> "Dict[str, str]":
        """Run (digest, spec JSON) jobs; return digest -> result JSON."""
        if not jobs:
            return {}
        if self.workers == 1 or len(jobs) == 1:
            return {
                digest: _run_spec_json(spec_json)
                for digest, spec_json in jobs
            }
        outputs: "Dict[str, str]" = {}
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(jobs))
        ) as pool:
            futures = {
                digest: pool.submit(_run_spec_json, spec_json)
                for digest, spec_json in jobs
            }
            for digest, future in futures.items():
                outputs[digest] = future.result()
        return outputs


def run_sweep(
    specs: "Sequence[ScenarioSpec]",
    *,
    workers: "Optional[int]" = None,
    cache_dir: "Optional[str]" = None,
) -> SweepReport:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(workers=workers, cache_dir=cache_dir).run(specs)
