"""Fault-tolerant, resumable sweep runner over pluggable backends.

A sweep is just a list of specs — typically one scenario expanded over
N seeds (:func:`expand_seeds`) or several registry entries.  The
runner keys a JSON result cache on the stable spec hash, farms the
misses out to an :class:`~repro.scenarios.backends.ExecutionBackend`
(serial / threads / processes / sharded — see
:mod:`repro.scenarios.backends`), and reports what happened in a
:class:`SweepReport`.

Three properties make large campaigns survivable:

* **Fault tolerance** — a crashing cell no longer kills the sweep.
  Each spec is retried up to ``max_retries`` times; a cell that keeps
  failing lands in :attr:`SweepReport.failures` with its spec name,
  hash and full traceback while every other cell completes.
* **Resumability** — with a ``cache_dir``, the runner checkpoints a
  ``sweep.json`` manifest recording every cell's spec, hash and
  completion state, updated as each outcome arrives.  A killed sweep
  (Ctrl-C, OOM, a dead machine) resumes with
  :func:`resume_sweep`/``repro scenario sweep --resume`` and
  recomputes only the missing or failed cells.
* **Sharding** — a :class:`~repro.scenarios.backends.ShardedBackend`
  makes N independent invocations over a shared ``cache_dir``
  converge to the same results as one serial run, because cell
  ownership is a pure function of the spec hash and completed cells
  meet in the cache.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro import durable
from repro.obs.journal import cell_journal_path, journal_dir
from repro.scenarios.backends import (
    ExecutionBackend,
    JobFailure,
    JobOutcome,
    OutcomeHook,
    SweepJob,
    make_backend,
)
from repro.scenarios.engine import ScenarioResult, run_scenario_json
from repro.scenarios.scheduler import SchedulerConfig
from repro.scenarios.serialize import (
    failure_from_dict,
    failure_to_dict,
    result_from_json,
    spec_from_dict,
    spec_hash,
    spec_to_dict,
    spec_to_json,
)
from repro.scenarios.spec import ScenarioSpec


#: Cache-entry format/behavior version.  Bump whenever simulation or
#: collector output changes for an unchanged spec, so persistent
#: ``--cache-dir`` trees from older toolkit versions are recomputed
#: instead of silently served as current numbers.
#: v2: mrt-replay results gained ``reader_stats``; a v1 entry would
#: replay byte-different from a fresh computation.
#: v3: results gained ``shard_stats`` (parallel sharded decode) and
#: ``MrtSpec`` gained ``decode_workers``; entries written by a v2
#: toolkit would replay byte-different for sharded runs.
CACHE_VERSION = "v3"

#: Static fingerprint of the serialized result schema — the payload
#: keys of ``result_to_dict``/``failure_to_dict`` plus the
#: ``ScenarioResult``/``SweepReport`` field sets — recorded here so
#: the contract linter (``repro check``, CACHE001) fails whenever the
#: schema moves without anyone looking at these two constants
#: together.  When that check fires: decide whether replayed bytes
#: change, bump :data:`CACHE_VERSION` if they do, and paste the
#: computed value from the finding message here.
CACHE_SCHEMA_FINGERPRINT = "b4ee7e79478f"

#: Manifest filename inside the cache dir, and its schema version.
#: Note: per-cell ``attempts``/``started_at``/``finished_at`` keys were
#: added without a version bump — they are purely additive, readers
#: ``.get`` them, and old manifests must keep resuming as-is.
MANIFEST_NAME = "sweep.json"
MANIFEST_VERSION = "v1"

#: Additive per-cell bookkeeping keys carried by the manifest.
_TIMING_KEYS = ("attempts", "started_at", "finished_at")


def expand_seeds(
    spec: ScenarioSpec, seeds: "Iterable[int]"
) -> "List[ScenarioSpec]":
    """One spec variant per seed, named ``<name>@seed<seed>``."""
    return [
        replace(spec, name=f"{spec.name}@seed{seed}", seed=seed)
        for seed in seeds
    ]


#: Backwards-compatible alias: the pool entry point moved to the
#: engine layer so every backend shares one worker function.
_run_spec_json = run_scenario_json


class SweepFailureError(RuntimeError):
    """Raised by :meth:`SweepReport.raise_failures`; lists every cell."""

    def __init__(self, failures: "Sequence[JobFailure]"):
        self.failures = list(failures)
        details = "\n".join(
            f"  - {failure.describe()}" for failure in self.failures
        )
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed:\n{details}"
        )


@dataclass
class SweepReport:
    """Results plus bookkeeping for one sweep invocation."""

    results: "List[ScenarioResult]"
    workers: int
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    cache_dir: "Optional[str]" = None
    #: Name of the execution backend that ran the misses.
    backend: str = "processes"
    #: Cells that kept failing after every retry (the sweep still
    #: completed every other cell).
    failures: "List[JobFailure]" = field(default_factory=list)
    #: Cells owned by other shards of a sharded sweep — not computed
    #: here, expected to arrive in the shared cache from cooperating
    #: invocations.
    skipped: int = 0
    #: digest -> worker-measured wall seconds, for cells computed this
    #: invocation (cache hits cost no wall time and are absent).
    cell_wall_seconds: "Dict[str, float]" = field(default_factory=dict)
    #: digest -> attempts the worker made (retried cells show > 1).
    cell_attempts: "Dict[str, int]" = field(default_factory=dict)

    def by_name(self) -> "Dict[str, ScenarioResult]":
        """Results keyed by scenario name."""
        return {result.name: result for result in self.results}

    def total_cell_seconds(self) -> float:
        """Summed worker wall time across computed cells.

        Compare against :attr:`elapsed_seconds` to see parallel
        speedup: with N busy workers the ratio approaches N.
        """
        return sum(self.cell_wall_seconds.values())

    def cell_seconds_percentile(self, fraction: float) -> "Optional[float]":
        """Nearest-rank percentile of per-cell wall times.

        ``fraction`` is in [0, 1]; e.g. ``0.5`` for the median cell,
        ``1.0`` for the slowest.  ``None`` when nothing was computed.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"fraction must be in [0, 1], got {fraction!r}"
            )
        values = sorted(self.cell_wall_seconds.values())
        if not values:
            return None
        rank = min(len(values) - 1, int(fraction * len(values)))
        return values[rank]

    def retried_cells(self) -> int:
        """How many computed cells needed more than one attempt."""
        return sum(
            1 for attempts in self.cell_attempts.values() if attempts > 1
        )

    def raise_failures(self) -> None:
        """Raise :class:`SweepFailureError` if any cell failed.

        Fault tolerance is the default — callers that need the old
        all-or-nothing behavior opt back in with one call.
        """
        if self.failures:
            raise SweepFailureError(self.failures)


class SweepManifest:
    """The on-disk record that makes sweeps resumable.

    One JSON file (``sweep.json``) per cache dir, mapping each cell's
    spec hash to its spec payload and completion state (``pending`` /
    ``done`` / ``failed`` + error context).  The runner checkpoints it
    as every outcome arrives, so after a kill the manifest plus the
    per-cell cache files are enough to reconstruct and finish the
    sweep — :func:`resume_sweep` re-derives the spec list from the
    manifest alone, no CLI arguments to repeat.

    Cells accumulate across invocations sharing the cache dir (that is
    what lets shards cooperate); states only ever move forward
    (``pending`` -> ``failed`` -> ``done``), never back — including
    across *concurrent* invocations: :meth:`save` re-reads the on-disk
    manifest and merges before replacing it, so two shards
    checkpointing into the same file cannot erase each other's
    progress.

    Manifest state is a convenience layer over the per-cell cache
    files, not the source of truth: a cell whose state was lost to a
    kill but whose cache file survived is simply served as a hit on
    resume.  That is what makes throttled checkpointing
    (:meth:`maybe_save`) safe.
    """

    #: Ordered worst-to-best; merges keep the further-along state.
    _STATE_RANK = {"pending": 0, "failed": 1, "done": 2}

    def __init__(self, cache_dir: str):
        self.cache_dir = cache_dir
        self.path = os.path.join(cache_dir, MANIFEST_NAME)
        #: digest -> {"name", "spec", "state", ["failure"]}
        self.cells: "Dict[str, dict]" = {}
        self._last_save = 0.0

    @classmethod
    def load(cls, cache_dir: str) -> "SweepManifest":
        """Read the manifest; a missing/corrupt file is an empty one."""
        manifest = cls(cache_dir)
        try:
            data = json.loads(durable.read_durable(manifest.path))
        except (OSError, ValueError):
            # Missing, torn (TornWriteError is a ValueError) or
            # unparseable: the per-cell cache files are the source of
            # truth, so an empty manifest just means resume re-derives
            # state from them instead of the convenience layer.
            return manifest
        if (
            not isinstance(data, dict)
            or data.get("version") != MANIFEST_VERSION
            or not isinstance(data.get("cells"), dict)
        ):
            return manifest
        for digest, cell in data["cells"].items():
            if isinstance(cell, dict) and isinstance(cell.get("spec"), dict):
                manifest.cells[str(digest)] = cell
        return manifest

    def _merge_disk_state(self) -> None:
        """Fold a concurrent invocation's progress into our cells.

        Another shard may have checkpointed since we loaded; whoever
        writes last must not demote the other's ``done``/``failed``
        marks back to what we saw at load time.
        """
        on_disk = SweepManifest.load(self.cache_dir)
        rank = self._STATE_RANK
        for digest, cell in on_disk.cells.items():
            ours = self.cells.get(digest)
            if ours is None:
                self.cells[digest] = cell
                continue
            theirs_rank = rank.get(cell.get("state", "pending"), 0)
            if theirs_rank > rank.get(ours.get("state", "pending"), 0):
                ours["state"] = cell["state"]
                if "failure" in cell:
                    ours["failure"] = cell["failure"]
                elif cell["state"] == "done":
                    ours.pop("failure", None)
                for key in _TIMING_KEYS:
                    if key in cell:
                        if key == "attempts" and key in ours:
                            # Attempts accumulate per invocation;
                            # merging takes the larger running total
                            # rather than double-adding.
                            ours[key] = max(ours[key], cell[key])
                        else:
                            ours[key] = cell[key]
            else:
                # Equal or behind on state: still adopt timing we lack
                # (another shard computed the cell; we only cached it).
                for key in _TIMING_KEYS:
                    if key in cell and key not in ours:
                        ours[key] = cell[key]

    def save(self) -> None:
        """Atomically checkpoint the manifest to disk (merge-safe)."""
        os.makedirs(self.cache_dir, exist_ok=True)
        self._merge_disk_state()
        payload = json.dumps(
            {"version": MANIFEST_VERSION, "cells": self.cells},
            indent=2,
            sort_keys=True,
        )
        durable.atomic_write(self.path, payload)
        self._last_save = time.monotonic()

    def maybe_save(self, min_interval: float = 0.5) -> None:
        """Checkpoint, but at most every *min_interval* seconds.

        Large sweeps would otherwise rewrite the whole manifest once
        per cell (O(cells^2) total work).  Skipping a checkpoint risks
        nothing: completed cells live in their own cache files, so a
        kill inside the interval costs a stale manifest *state*, never
        a recomputation — resume serves those cells as cache hits.
        """
        if time.monotonic() - self._last_save >= min_interval:
            self.save()

    def record(
        self, specs: "Sequence[ScenarioSpec]", digests: "Sequence[str]"
    ) -> None:
        """Merge this invocation's cells in, without demoting states."""
        for spec, digest in zip(specs, digests):
            if digest not in self.cells:
                self.cells[digest] = {
                    "name": spec.name,
                    "spec": spec_to_dict(spec),
                    "state": "pending",
                }

    def mark(
        self,
        digest: str,
        state: str,
        failure: "Optional[JobFailure]" = None,
        *,
        attempts: "Optional[int]" = None,
        started_at: "Optional[float]" = None,
        finished_at: "Optional[float]" = None,
    ) -> None:
        """Advance a cell's state, optionally recording execution
        bookkeeping (attempt count and worker-measured wall-clock
        bounds).  Old manifests without these keys load fine — they
        are additive and every reader uses ``.get``."""
        cell = self.cells.get(digest)
        if cell is None:
            return
        cell["state"] = state
        if failure is not None:
            cell["failure"] = failure_to_dict(failure)
        else:
            cell.pop("failure", None)
        if attempts is not None:
            # Accumulate, don't overwrite: a resumed cell's new
            # attempts add to what earlier invocations already burned,
            # so retry accounting across --resume stays truthful (the
            # old behavior reset a thrice-failed cell to attempts=1
            # when the resume finally succeeded).
            cell["attempts"] = (
                int(cell.get("attempts", 0) or 0) + attempts
            )
        if started_at is not None:
            cell["started_at"] = started_at
        if finished_at is not None:
            cell["finished_at"] = finished_at

    def specs(self) -> "List[ScenarioSpec]":
        """Every recorded cell's spec, in stable (name, hash) order."""
        ordered = sorted(
            self.cells.items(),
            key=lambda item: (item[1].get("name", ""), item[0]),
        )
        return [spec_from_dict(cell["spec"]) for _, cell in ordered]

    def states(self) -> "Dict[str, str]":
        """digest -> state, for tests and status displays."""
        return {
            digest: cell.get("state", "pending")
            for digest, cell in self.cells.items()
        }

    def failures(self) -> "List[JobFailure]":
        """The recorded failures, name-ordered."""
        return [
            failure_from_dict(cell["failure"])
            for _, cell in sorted(self.cells.items())
            if cell.get("state") == "failed" and "failure" in cell
        ]


class SweepRunner:
    """Runs spec batches through the cache and a pluggable backend."""

    def __init__(
        self,
        *,
        workers: "Optional[int]" = None,
        cache_dir: "Optional[str]" = None,
        backend: "ExecutionBackend | str | None" = None,
        max_retries: int = 0,
        on_outcome: "Optional[OutcomeHook]" = None,
        cell_timeout: "Optional[float]" = None,
        retry_backoff: "Optional[float]" = None,
        pool_rebuilds: "Optional[int]" = None,
        speculate: bool = False,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {max_retries!r}"
            )
        self.workers = workers or (os.cpu_count() or 1)
        self.cache_dir = cache_dir
        self.backend = make_backend(backend)
        self.max_retries = max_retries
        #: Scheduling knobs handed to the backend wholesale — pool
        #: backends honor all of them, serial/queue apply the backoff.
        defaults = SchedulerConfig()
        self.scheduling = SchedulerConfig(
            cell_timeout=cell_timeout,
            retry_backoff=(
                defaults.retry_backoff
                if retry_backoff is None
                else retry_backoff
            ),
            pool_rebuilds=(
                defaults.pool_rebuilds
                if pool_rebuilds is None
                else pool_rebuilds
            ),
            speculate=speculate,
        )
        self.scheduling.validate()
        #: Observer fired per computed cell, after the cache/manifest
        #: checkpoint — the CLI's ``--progress`` stream hangs off it.
        self.on_outcome = on_outcome

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def _cache_path(self, digest: str) -> "Optional[str]":
        if self.cache_dir is None:
            return None
        return os.path.join(
            self.cache_dir, f"{digest}.{CACHE_VERSION}.json"
        )

    def _cache_load(self, digest: str) -> "Optional[ScenarioResult]":
        path = self._cache_path(digest)
        if path is None or not os.path.exists(path):
            return None
        try:
            return result_from_json(durable.read_durable(path))
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt/truncated/wrong-schema entry (torn frames raise
            # TornWriteError, a ValueError): treat as a miss —
            # recompute and overwrite, never serve it stale.
            return None

    def _cache_store(self, digest: str, payload: str) -> None:
        path = self._cache_path(digest)
        if path is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        durable.atomic_write(path, payload)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, specs: "Sequence[ScenarioSpec]") -> SweepReport:
        """Run every spec; cached cells are served without simulating."""
        started = time.perf_counter()
        for spec in specs:
            spec.validate()
        digests = [spec_hash(spec) for spec in specs]
        slots: "List[Optional[ScenarioResult]]" = [None] * len(specs)
        report = SweepReport(
            results=[],
            workers=self.workers,
            cache_dir=self.cache_dir,
            backend=self.backend.name,
        )

        manifest: "Optional[SweepManifest]" = None
        if self.cache_dir is not None:
            # Writers killed mid-atomic-write leave .tmp.<pid> files;
            # sweep the dead ones so the cache dir cannot silt up.
            durable.sweep_orphan_tmps(self.cache_dir)
            manifest = SweepManifest.load(self.cache_dir)
            manifest.record(specs, digests)

        pending: "List[int]" = []
        for index, digest in enumerate(digests):
            cached = self._cache_load(digest)
            if cached is not None:
                slots[index] = cached
                report.cache_hits += 1
                if manifest is not None:
                    manifest.mark(digest, "done")
            else:
                pending.append(index)
        if manifest is not None:
            manifest.save()

        unique_pending: "Dict[str, int]" = {}
        for index in pending:
            unique_pending.setdefault(digests[index], index)
        journals = self.cache_dir is not None
        if journals and unique_pending:
            os.makedirs(journal_dir(self.cache_dir), exist_ok=True)
        jobs = [
            SweepJob(
                digest=digest,
                name=specs[index].name,
                spec_json=spec_to_json(specs[index], indent=None),
                journal_path=(
                    cell_journal_path(self.cache_dir, digest)
                    if journals
                    else None
                ),
            )
            for digest, index in unique_pending.items()
        ]

        computed: "Dict[str, ScenarioResult]" = {}

        def checkpoint(outcome: JobOutcome) -> None:
            # Runs on the coordinating thread as each cell finishes,
            # so a killed sweep keeps everything that completed (the
            # cache file per cell is the durable record; the manifest
            # checkpoint is throttled on top of it).
            digest = outcome.job.digest
            report.cell_attempts[digest] = outcome.attempts
            if outcome.wall_seconds is not None:
                report.cell_wall_seconds[digest] = outcome.wall_seconds
            timing = dict(
                attempts=outcome.attempts,
                started_at=outcome.started_at,
                finished_at=outcome.finished_at,
            )
            if outcome.ok:
                self._cache_store(digest, outcome.result_json)
                computed[digest] = result_from_json(outcome.result_json)
                if manifest is not None:
                    manifest.mark(digest, "done", **timing)
            else:
                report.failures.append(outcome.failure)
                if manifest is not None:
                    manifest.mark(digest, "failed", outcome.failure, **timing)
            if manifest is not None:
                manifest.maybe_save()
            if self.on_outcome is not None:
                self.on_outcome(outcome)

        outcomes = self.backend.run_jobs(
            jobs,
            workers=self.workers,
            max_retries=self.max_retries,
            on_outcome=checkpoint,
            scheduling=self.scheduling,
        )
        if manifest is not None:
            manifest.save()
        report.cache_misses = len(outcomes)
        report.skipped = len(jobs) - len(outcomes)
        for index in pending:
            slots[index] = computed.get(digests[index])
        report.results = [slot for slot in slots if slot is not None]
        report.elapsed_seconds = time.perf_counter() - started
        return report


def run_sweep(
    specs: "Sequence[ScenarioSpec]",
    *,
    workers: "Optional[int]" = None,
    cache_dir: "Optional[str]" = None,
    backend: "ExecutionBackend | str | None" = None,
    max_retries: int = 0,
    on_outcome: "Optional[OutcomeHook]" = None,
    cell_timeout: "Optional[float]" = None,
    retry_backoff: "Optional[float]" = None,
    pool_rebuilds: "Optional[int]" = None,
    speculate: bool = False,
) -> SweepReport:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        workers=workers,
        cache_dir=cache_dir,
        backend=backend,
        max_retries=max_retries,
        on_outcome=on_outcome,
        cell_timeout=cell_timeout,
        retry_backoff=retry_backoff,
        pool_rebuilds=pool_rebuilds,
        speculate=speculate,
    ).run(specs)


def resume_sweep(
    cache_dir: str,
    *,
    workers: "Optional[int]" = None,
    backend: "ExecutionBackend | str | None" = None,
    max_retries: int = 0,
    on_outcome: "Optional[OutcomeHook]" = None,
    cell_timeout: "Optional[float]" = None,
    retry_backoff: "Optional[float]" = None,
    pool_rebuilds: "Optional[int]" = None,
    speculate: bool = False,
) -> SweepReport:
    """Finish a sweep recorded in *cache_dir*'s manifest.

    Re-derives the full spec list from ``sweep.json`` — no need to
    repeat the original scenario name, seeds or shard arguments — and
    runs it: ``done`` cells are cache hits, ``pending``/``failed``
    cells (and cells whose cache file was lost mid-write) are the only
    ones recomputed.  The returned report therefore converges to what
    one uninterrupted run would have produced.
    """
    manifest = SweepManifest.load(cache_dir)
    if not manifest.cells:
        raise ValueError(
            f"no resumable sweep: {os.path.join(cache_dir, MANIFEST_NAME)}"
            " is missing or empty"
        )
    return SweepRunner(
        workers=workers,
        cache_dir=cache_dir,
        backend=backend,
        max_retries=max_retries,
        on_outcome=on_outcome,
        cell_timeout=cell_timeout,
        retry_backoff=retry_backoff,
        pool_rebuilds=pool_rebuilds,
        speculate=speculate,
    ).run(manifest.specs())
