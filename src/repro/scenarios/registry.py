"""Named-scenario registry.

Scenarios register by decorating a zero-argument factory with
:func:`scenario`; the factory returns a validated
:class:`ScenarioSpec`.  Factories (not spec instances) are stored so a
lookup always hands out a fresh, immutable spec and import order never
matters.

The built-in catalog covers the paper's matrix — the §3 lab
experiments and the *d_mar20*-style measurement day — plus the
what-ifs the ROADMAP asks for: mixed-vendor internets, community
scrubbing sweeps, beacon-density sweeps and a topology-scale ladder.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.scenarios.spec import (
    InternetSpec,
    LabSpec,
    MrtSpec,
    ScenarioSpec,
)

_FACTORIES: "Dict[str, Callable[[], ScenarioSpec]]" = {}

#: Collector stack for internet scenarios (the paper's result set).
INTERNET_COLLECTORS = (
    "update_counts",
    "community_prevalence",
    "duplicates",
    "table1",
    "table2",
)


class UnknownScenarioError(KeyError):
    """Raised when looking up a name nobody registered."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(
            f"unknown scenario {name!r}; run 'repro scenario list' or use"
            f" one of: {', '.join(scenario_names())}"
        )


def scenario(
    factory: "Callable[[], ScenarioSpec]",
) -> "Callable[[], ScenarioSpec]":
    """Register a scenario factory under the name of the spec it builds."""
    spec = factory()
    if spec.name in _FACTORIES:
        raise ValueError(f"duplicate scenario name: {spec.name!r}")
    spec.validate()
    _FACTORIES[spec.name] = factory
    return factory


def register(name: str, factory: "Callable[[], ScenarioSpec]") -> None:
    """Imperative registration (for tests and ad-hoc catalogs)."""
    if name in _FACTORIES:
        raise ValueError(f"duplicate scenario name: {name!r}")
    _FACTORIES[name] = factory


def unregister(name: str) -> None:
    """Remove a registration (test cleanup)."""
    _FACTORIES.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    """A fresh validated spec for *name*."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise UnknownScenarioError(name) from None
    return factory().validate()


def scenario_names() -> "List[str]":
    """All registered names, sorted."""
    return sorted(_FACTORIES)


def all_scenarios() -> "List[ScenarioSpec]":
    """Fresh specs for the whole catalog, name-ordered."""
    return [get_scenario(name) for name in scenario_names()]


# ----------------------------------------------------------------------
# built-in catalog: the paper's matrix
# ----------------------------------------------------------------------
@scenario
def lab_baseline() -> ScenarioSpec:
    return ScenarioSpec(
        name="lab-baseline",
        kind="lab",
        description=(
            "§3 behavior matrix: Exp1-Exp4 across all five tested"
            " router implementations"
        ),
        lab=LabSpec(),
        collectors=("lab_matrix",),
    )


@scenario
def lab_junos() -> ScenarioSpec:
    return ScenarioSpec(
        name="lab-junos",
        kind="lab",
        description=(
            "§3 matrix restricted to Junos, the only implementation"
            " that deduplicates against Adj-RIB-Out"
        ),
        lab=LabSpec(vendors=("junos",)),
        collectors=("lab_matrix",),
    )


@scenario
def lab_mrai_paced() -> ScenarioSpec:
    return ScenarioSpec(
        name="lab-mrai-paced",
        kind="lab",
        description=(
            "what-if: the lab matrix with a 30s MRAI on every session"
            " (the paper runs unpaced)"
        ),
        lab=LabSpec(mrai=30.0),
        collectors=("lab_matrix",),
    )


@scenario
def internet_small() -> ScenarioSpec:
    return ScenarioSpec(
        name="internet-small",
        kind="internet",
        description=(
            "test-sized synthetic internet day (tens of ASes);"
            " reproduces the seed Table 1/2 numbers"
        ),
        seed=7,
        internet=InternetSpec(scale="small"),
        collectors=INTERNET_COLLECTORS,
    )


@scenario
def internet_mar20() -> ScenarioSpec:
    return ScenarioSpec(
        name="internet-mar20",
        kind="internet",
        description=(
            "the calibrated d_mar20-like measurement day (medium"
            " scale, slow: minutes)"
        ),
        seed=424242,
        internet=InternetSpec(scale="mar20", topology_seed=20200315),
        collectors=INTERNET_COLLECTORS,
    )


# ----------------------------------------------------------------------
# what-ifs: vendor mixes
# ----------------------------------------------------------------------
@scenario
def internet_all_cisco() -> ScenarioSpec:
    return ScenarioSpec(
        name="internet-all-cisco",
        kind="internet",
        description=(
            "what-if: every router runs a non-deduplicating stack"
            " (upper bound on nn duplicates)"
        ),
        seed=7,
        internet=InternetSpec(vendor_mix=(("cisco", 1.0),)),
        collectors=INTERNET_COLLECTORS,
    )


@scenario
def internet_all_junos() -> ScenarioSpec:
    return ScenarioSpec(
        name="internet-all-junos",
        kind="internet",
        description=(
            "what-if: an all-Junos internet (fleet-wide duplicate"
            " suppression, lower bound on nn)"
        ),
        seed=7,
        internet=InternetSpec(vendor_mix=(("junos", 1.0),)),
        collectors=INTERNET_COLLECTORS,
    )


@scenario
def internet_vendor_even() -> ScenarioSpec:
    return ScenarioSpec(
        name="internet-vendor-even",
        kind="internet",
        description=(
            "what-if: all five implementations deployed in equal"
            " shares"
        ),
        seed=7,
        internet=InternetSpec(
            vendor_mix=(
                ("cisco", 1.0),
                ("ios-xr", 1.0),
                ("junos", 1.0),
                ("bird", 1.0),
                ("bird2", 1.0),
            )
        ),
        collectors=INTERNET_COLLECTORS,
    )


# ----------------------------------------------------------------------
# what-ifs: community hygiene sweeps
# ----------------------------------------------------------------------
@scenario
def scrub_none() -> ScenarioSpec:
    return ScenarioSpec(
        name="scrub-none",
        kind="internet",
        description=(
            "scrubbing sweep, low end: nobody scrubs internal tags,"
            " nobody cleans at ingress/egress"
        ),
        seed=7,
        internet=InternetSpec(
            scrub_internal_fraction=0.0,
            cleaner_egress_fraction=0.0,
            cleaner_ingress_fraction=0.0,
            tagger_fraction=0.9,
        ),
        collectors=INTERNET_COLLECTORS,
    )


@scenario
def scrub_heavy() -> ScenarioSpec:
    return ScenarioSpec(
        name="scrub-heavy",
        kind="internet",
        description=(
            "scrubbing sweep, high end: universal internal-tag"
            " scrubbing and widespread egress cleaning (nn factory)"
        ),
        seed=7,
        internet=InternetSpec(
            scrub_internal_fraction=1.0,
            cleaner_egress_fraction=0.45,
            cleaner_ingress_fraction=0.05,
            tagger_fraction=0.5,
        ),
        collectors=INTERNET_COLLECTORS,
    )


@scenario
def ingress_cleaning_internet() -> ScenarioSpec:
    return ScenarioSpec(
        name="ingress-cleaning-internet",
        kind="internet",
        description=(
            "the paper's recommendation at scale: cleaners filter on"
            " ingress instead of egress"
        ),
        seed=7,
        internet=InternetSpec(
            tagger_fraction=0.80,
            cleaner_egress_fraction=0.0,
            cleaner_ingress_fraction=0.18,
        ),
        collectors=INTERNET_COLLECTORS,
    )


# ----------------------------------------------------------------------
# what-ifs: beacon density and damping
# ----------------------------------------------------------------------
@scenario
def beacons_dense() -> ScenarioSpec:
    return ScenarioSpec(
        name="beacons-dense",
        kind="internet",
        description=(
            "beacon-density sweep: triple the beacon prefixes on the"
            " small internet"
        ),
        seed=7,
        internet=InternetSpec(beacon_count=6),
        collectors=INTERNET_COLLECTORS,
    )


@scenario
def damping_replay() -> ScenarioSpec:
    return ScenarioSpec(
        name="damping-replay",
        kind="internet",
        description=(
            "what-if: RFC 2439 route-flap damping replayed over the"
            " collector feed (the A5 ablation as a scenario)"
        ),
        seed=7,
        internet=InternetSpec(),
        collectors=("update_counts", "duplicates", "damping"),
    )


# ----------------------------------------------------------------------
# mrt-replay: on-disk archives through the live analysis path
# ----------------------------------------------------------------------
@scenario
def mrt_replay() -> ScenarioSpec:
    return ScenarioSpec(
        name="mrt-replay",
        kind="mrt",
        description=(
            "replay an MRT update archive (real RouteViews/RIS data or"
            " a simulator-spilled file) through the observation +"
            " classification pipeline; needs --input FILE"
        ),
        mrt=MrtSpec(),
        collectors=INTERNET_COLLECTORS,
    )


@scenario
def mrt_replay_strict() -> ScenarioSpec:
    return ScenarioSpec(
        name="mrt-replay-strict",
        kind="mrt",
        description=(
            "mrt-replay that fails on damaged records instead of"
            " dropping them (integrity checking for simulator-spilled"
            " archives); needs --input FILE"
        ),
        mrt=MrtSpec(tolerant=False),
        collectors=INTERNET_COLLECTORS,
    )


@scenario
def internet_small_spill() -> ScenarioSpec:
    return ScenarioSpec(
        name="internet-small-spill",
        kind="internet",
        description=(
            "the small internet day with a single collector spilling"
            " its archive to disk (bounded memory; pairs with"
            " mrt-replay for the round-trip check)"
        ),
        seed=7,
        internet=InternetSpec(
            scale="small",
            archive_policy="mrt-spill",
            collector_names=("rrc00",),
        ),
        collectors=INTERNET_COLLECTORS,
    )


# ----------------------------------------------------------------------
# topology-scale ladder
# ----------------------------------------------------------------------
@scenario
def topology_tiny() -> ScenarioSpec:
    return ScenarioSpec(
        name="topology-tiny",
        kind="internet",
        description="scale ladder rung 1: a handful of ASes (CI smoke)",
        seed=7,
        internet=InternetSpec(
            tier1_count=2,
            transit_count=3,
            stub_count=6,
            beacon_count=1,
            link_flaps=3,
            prefix_flaps=2,
            med_churn_events=3,
            community_churn_events=4,
            prepend_change_events=1,
            collector_session_resets=2,
        ),
        collectors=INTERNET_COLLECTORS,
    )


@scenario
def topology_medium() -> ScenarioSpec:
    return ScenarioSpec(
        name="topology-medium",
        kind="internet",
        description="scale ladder rung 2: ~40 ASes",
        seed=7,
        internet=InternetSpec(
            tier1_count=3, transit_count=8, stub_count=30
        ),
        collectors=INTERNET_COLLECTORS,
    )


@scenario
def topology_large() -> ScenarioSpec:
    return ScenarioSpec(
        name="topology-large",
        kind="internet",
        description="scale ladder rung 3: ~120 ASes (slow)",
        seed=7,
        internet=InternetSpec(
            tier1_count=4, transit_count=18, stub_count=100
        ),
        collectors=INTERNET_COLLECTORS,
    )
