"""Pluggable sweep execution backends.

The sweep runner used to be welded to one ``ProcessPoolExecutor``.
This module turns "how do the cells of a sweep actually execute" into
a small strategy interface, :class:`ExecutionBackend`, with four
implementations:

``serial``
    One cell at a time, in this process.  Zero moving parts: plain
    stack traces, ``pdb`` works, profilers see everything.  The
    reference implementation the determinism suite measures the other
    backends against.

``threads``
    A ``ThreadPoolExecutor``.  Simulations are pure-Python CPU-bound
    work, so threads buy nothing for the classic kinds — but ``mrt``
    replay cells spend their time in file I/O and future remote
    sources will spend it on sockets, and those overlap fine under
    the GIL.

``processes``
    A ``ProcessPoolExecutor`` — the original behavior, refactored
    onto the interface.  The right default for CPU-bound sweeps.

``sharded``
    A deterministic partitioner wrapped around any inner backend.
    Shard ``i`` of ``n`` owns a cell iff
    ``shard_of(digest, n) == i``; everything else is left untouched
    for the other ``n - 1`` invocations.  Because ownership is a pure
    function of the spec hash, independent invocations — separate
    shells, cron jobs, machines over a shared filesystem — cooperate
    through the shared spec-hash cache without ever talking to each
    other.

``queue``
    A shared work directory instead of a pre-agreed partition: every
    invocation enqueues the sweep's cells as job files, then claims
    them one at a time by atomic rename.  N invocations pointed at
    the same directory — separate shells, machines over NFS — drain
    the matrix dynamically, each cell computed exactly once, with no
    coordinator process.  The first rung of the remote backend.

The two pool backends do not drive their executors directly: they
hand the batch to :class:`repro.scenarios.scheduler.PoolScheduler`,
which contains worker crashes (one dead worker no longer fails the
whole batch), enforces per-cell wall-clock timeouts, and can
speculatively re-dispatch straggler cells.

Every backend speaks the same job protocol: a :class:`SweepJob` is
``(digest, name, spec JSON)``, an outcome is either a result JSON
payload or a :class:`JobFailure` carrying the spec's name, hash and
full traceback.  Workers never raise into the coordinator — a
crashing cell becomes data, not a dead sweep — and every error is
wrapped with enough context to know *which* spec failed.

Backends must invoke the optional ``on_outcome`` callback from the
coordinating thread (the one that called :meth:`run_jobs`), so the
runner can checkpoint caches and manifests without locking.
"""

from __future__ import annotations

import json
import os
import time
import traceback as traceback_module
from abc import ABC, abstractmethod
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import durable, faults
from repro.obs import metrics as obs_metrics
from repro.scenarios.engine import run_scenario_json

#: Names accepted by :func:`make_backend` (``sharded`` additionally
#: needs a ``shard=(index, count)``; ``queue`` needs a ``queue_dir``).
BACKEND_NAMES = ("serial", "threads", "processes", "sharded", "queue")

#: Ceiling on any single retry-backoff sleep, seconds.
BACKOFF_CAP = 30.0

#: Default claim-staleness threshold, seconds.  Armed by default: the
#: mtime lease (:class:`repro.durable.ClaimLease`) renews a live
#: claimant's claim every ``stale/8`` seconds and staleness is judged
#: against the *filesystem's* clock (:func:`repro.durable.fs_now`),
#: so neither a long cell nor host clock skew can make a live claim
#: look stale — only an actually-dead claimant can.
DEFAULT_STALE_CLAIM_SECONDS = 300.0


def backoff_delay(
    attempt: int, base: float, cap: float = BACKOFF_CAP
) -> float:
    """Deterministic exponential backoff: ``base * 2**(attempt-1)``.

    ``attempt`` counts the failures so far (1 after the first), so the
    schedule for ``base=0.1`` is 0.1s, 0.2s, 0.4s, ... capped at
    *cap*.  Pure — no jitter — because two runs of the same sweep must
    make the same scheduling decisions; the sleeps only pace retries,
    they never reach a result payload.
    """
    if base <= 0 or attempt < 1:
        return 0.0
    return min(cap, base * (2.0 ** (attempt - 1)))


@dataclass(frozen=True)
class SweepJob:
    """One sweep cell as the backends see it: pure strings.

    Backends exchange nothing but JSON text with their workers, which
    keeps the multiprocessing surface tiny and doubles as the
    cross-process determinism contract — identical specs must produce
    byte-identical payloads no matter which backend or worker ran
    them.
    """

    digest: str
    name: str
    spec_json: str
    #: Where the worker should append its JSONL run journal (start,
    #: heartbeat, finish/fail lines) — ``None`` disables journaling.
    #: The path is part of the job, not the payload: journals are
    #: out-of-band observability and never touch the result JSON.
    journal_path: "Optional[str]" = None


@dataclass(frozen=True)
class JobFailure:
    """A sweep cell that kept failing after every allowed retry."""

    name: str
    spec_hash: str
    #: One-line ``ExceptionType: message`` summary.
    error: str
    #: The full traceback text of the final attempt.
    traceback: str
    #: Total attempts made (1 + retries).
    attempts: int

    def describe(self) -> str:
        """Human-oriented one-liner with the spec context attached."""
        return (
            f"scenario {self.name!r} [spec {self.spec_hash}] failed"
            f" after {self.attempts} attempt(s): {self.error}"
        )


@dataclass(frozen=True)
class JobOutcome:
    """What became of one executed job: a payload or a failure."""

    job: SweepJob
    result_json: "Optional[str]" = None
    failure: "Optional[JobFailure]" = None
    #: Total attempts the worker made for this cell (1 + retries).
    attempts: int = 1
    #: Wall-clock bounds of the cell's execution, measured *in the
    #: worker* — so wall time excludes pool queue wait.  ``None`` when
    #: the worker died before reporting.
    started_at: "Optional[float]" = None
    finished_at: "Optional[float]" = None

    @property
    def ok(self) -> bool:
        return self.result_json is not None

    @property
    def wall_seconds(self) -> "Optional[float]":
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


#: Signature of the per-outcome checkpoint hook.
OutcomeHook = Callable[[JobOutcome], None]


def attempt_job(
    args: "Tuple[str, str, str, int, Optional[str]]",
) -> "Tuple[str, Optional[str], Optional[str], Optional[str], int, float, float]":
    """Worker entry point shared by every backend.

    Takes ``(name, digest, spec_json, max_retries, journal_path[,
    retry_backoff])`` and returns ``(digest, result_json, error,
    traceback, attempts, started_at, finished_at)`` — plain picklable
    tuples in both directions so the same function runs inline, on a
    thread or in a pool process.  The trailing ``retry_backoff`` is
    optional so older call sites (and journal replays of them) keep
    working.  Exceptions never propagate: they are retried up to
    ``max_retries`` times — sleeping :func:`backoff_delay` between
    attempts instead of hammering a transient resource failure in a
    tight loop — and then reported as data, so one broken cell cannot
    take down a pool (the old behavior was a bare ``future.result()``
    traceback with no hint of which spec died).

    The wall-clock bounds are measured here in the worker, so the
    manifest's per-cell wall time covers actual execution (including
    retries and backoff sleeps) and never the time the job sat queued
    behind a busy pool.
    """
    name, digest, spec_json, max_retries, journal_path, *extra = args
    retry_backoff = float(extra[0]) if extra else 0.0
    # repro: allow(DET002) wall-clock stamps feed the manifest/status view only; result payloads never carry them (the determinism harness pins this)
    started_at = time.time()
    attempts = 0
    while True:
        attempts += 1
        try:
            # The chaos harness's main worker-side injection point:
            # kill here looks like a segfault/OOM to the pool, stall
            # like a hung worker, error like a flaky cell the retry
            # budget should absorb.
            faults.faultpoint("sweep.cell", name=name)
            if journal_path is None:
                payload = run_scenario_json(spec_json)
            else:
                payload = run_scenario_json(spec_json, journal_path)
            return (
                digest, payload, None, None, attempts,
                # repro: allow(DET002) finish stamp for the manifest/status view; not part of the result payload
                started_at, time.time(),
            )
        except Exception as exc:  # noqa: BLE001 — reported, not hidden
            if attempts > max_retries:
                summary = f"{type(exc).__name__}: {exc}"
                return (
                    digest,
                    None,
                    summary,
                    traceback_module.format_exc(),
                    attempts,
                    started_at,
                    # repro: allow(DET002) failure finish stamp for the manifest/status view; not part of any result payload
                    time.time(),
                )
            delay = backoff_delay(attempts, retry_backoff)
            if delay > 0:
                time.sleep(delay)


def _outcome(job: SweepJob, reply) -> JobOutcome:
    """Fold a worker reply tuple back into a :class:`JobOutcome`."""
    (
        _, result_json, error, traceback_text, attempts,
        started_at, finished_at,
    ) = reply
    if result_json is not None:
        return JobOutcome(
            job=job,
            result_json=result_json,
            attempts=attempts,
            started_at=started_at,
            finished_at=finished_at,
        )
    return JobOutcome(
        job=job,
        failure=JobFailure(
            name=job.name,
            spec_hash=job.digest,
            error=error or "unknown error",
            traceback=traceback_text or "",
            attempts=attempts,
        ),
        attempts=attempts,
        started_at=started_at,
        finished_at=finished_at,
    )


class ExecutionBackend(ABC):
    """Strategy interface: how a batch of sweep jobs executes."""

    #: Registry/CLI name; subclasses must set it.
    name: str = ""

    @abstractmethod
    def run_jobs(
        self,
        jobs: "Sequence[SweepJob]",
        *,
        workers: int = 1,
        max_retries: int = 0,
        on_outcome: "Optional[OutcomeHook]" = None,
        scheduling=None,
    ) -> "List[JobOutcome]":
        """Execute *jobs* and return one outcome per executed job.

        A sharding backend may execute fewer jobs than it was given;
        jobs it does not own simply have no outcome.  ``on_outcome``
        fires once per outcome, from the coordinating thread, as soon
        as that outcome is known — the runner uses it to checkpoint
        the cache and manifest so a killed sweep loses at most the
        cells that were mid-flight.  ``scheduling`` is an optional
        :class:`repro.scenarios.scheduler.SchedulerConfig`; backends
        honor the knobs they can (pools: timeouts, rebuild budget,
        speculation; serial and queue: the retry backoff) and ignore
        the rest.
        """

    def map_json(
        self,
        task: "Callable[[str], str]",
        payloads: "Sequence[str]",
        *,
        workers: int = 1,
    ) -> "List[str]":
        """Apply a JSON-string task to every payload, in payload order.

        The light sibling of :meth:`run_jobs` for the parallel MRT
        decode: same strings-only contract (*task* must be a picklable
        module-level function taking and returning JSON text), but no
        retry/outcome machinery — callers that fan decode shards out
        handle failure by falling back to serial, so a raising worker
        simply propagates.  The base implementation is the in-process
        serial loop; pool backends override it.
        """
        return [task(payload) for payload in payloads]


class SerialBackend(ExecutionBackend):
    """In-process, one cell at a time — the debugging backend."""

    name = "serial"

    def run_jobs(
        self, jobs, *, workers=1, max_retries=0, on_outcome=None,
        scheduling=None,
    ):
        retry_backoff = (
            scheduling.retry_backoff if scheduling is not None else 0.0
        )
        outcomes: "List[JobOutcome]" = []
        for job in jobs:
            reply = attempt_job(
                (
                    job.name, job.digest, job.spec_json, max_retries,
                    job.journal_path, retry_backoff,
                )
            )
            outcome = _outcome(job, reply)
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
        return outcomes


class _PoolBackend(ExecutionBackend):
    """Shared scheduling front end for the two executor-pool backends.

    Execution is delegated to
    :class:`repro.scenarios.scheduler.PoolScheduler`, which contains
    worker crashes (one dead worker used to break the whole executor
    and fail every in-flight and queued cell as ``worker died`` with
    ``attempts=1``), enforces per-cell timeouts and can speculate on
    stragglers.  Outcomes come back in original job order.
    """

    #: Whether a stuck worker can actually be killed (processes) or
    #: only abandoned (threads).
    reapable = False

    def _make_pool(self, workers: int):
        raise NotImplementedError

    def run_jobs(
        self, jobs, *, workers=1, max_retries=0, on_outcome=None,
        scheduling=None,
    ):
        if not jobs:
            return []
        # Imported here, not at module top: the scheduler imports this
        # module for the job protocol.
        from repro.scenarios.scheduler import PoolScheduler, SchedulerConfig

        config = scheduling or SchedulerConfig(retry_backoff=0.0)
        if (
            (workers == 1 or len(jobs) == 1)
            and config.cell_timeout is None
            and not config.speculate
        ):
            # One lane with no scheduling to do is just the serial
            # loop; skip the pool overhead (and, for processes, the
            # fork) entirely.  The determinism suite pins that this
            # shortcut changes no payload byte.
            return SerialBackend().run_jobs(
                jobs, max_retries=max_retries, on_outcome=on_outcome,
                scheduling=scheduling,
            )
        scheduler = PoolScheduler(
            make_pool=self._make_pool,
            reapable=self.reapable,
            workers=min(workers, len(jobs)),
            max_retries=max_retries,
            on_outcome=on_outcome,
            config=config,
        )
        return scheduler.run(jobs)

    def map_json(self, task, payloads, *, workers=1):
        if workers <= 1 or len(payloads) <= 1:
            # Mirror run_jobs' one-lane shortcut: skip the pool (and
            # for processes, the fork) when it cannot buy parallelism.
            return [task(payload) for payload in payloads]
        with self._make_pool(min(workers, len(payloads))) as pool:
            # Executor.map preserves payload order, so replies line up
            # with their shards no matter which worker finished first.
            return list(pool.map(task, payloads))


class ThreadBackend(_PoolBackend):
    """Thread pool — for I/O-bound cells (mrt replay, remote feeds)."""

    name = "threads"
    reapable = False

    def _make_pool(self, workers: int):
        return ThreadPoolExecutor(max_workers=workers)


class ProcessBackend(_PoolBackend):
    """Process pool — the CPU-bound default (the original behavior)."""

    name = "processes"
    reapable = True

    def _make_pool(self, workers: int):
        return ProcessPoolExecutor(max_workers=workers)


def shard_of(digest: str, shard_count: int) -> int:
    """Which shard owns a spec hash.  Pure, stable, order-free.

    Keying on the digest (not the position in the spec list) means
    ownership survives reordering, deduplication and sweep growth —
    two invocations never compute the same cell twice, and no cell is
    orphaned, as long as they agree on ``shard_count``.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count!r}")
    return int(digest[:8], 16) % shard_count


class ShardedBackend(ExecutionBackend):
    """Deterministic partition of a sweep across cooperating runs."""

    name = "sharded"

    def __init__(
        self,
        shard_index: int,
        shard_count: int,
        inner: "Optional[ExecutionBackend]" = None,
    ):
        if shard_count < 1:
            raise ValueError(
                f"shard count must be >= 1, got {shard_count!r}"
            )
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                f"shard index must be in [0, {shard_count}),"
                f" got {shard_index!r}"
            )
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.inner = inner if inner is not None else ProcessBackend()

    def owns(self, digest: str) -> bool:
        """True when this shard is responsible for *digest*."""
        return shard_of(digest, self.shard_count) == self.shard_index

    def run_jobs(
        self, jobs, *, workers=1, max_retries=0, on_outcome=None,
        scheduling=None,
    ):
        owned = [job for job in jobs if job.digest and self.owns(job.digest)]
        return self.inner.run_jobs(
            owned,
            workers=workers,
            max_retries=max_retries,
            on_outcome=on_outcome,
            scheduling=scheduling,
        )

    def map_json(self, task, payloads, *, workers=1):
        # Decode shards are not sweep cells: the partition is already
        # decided by the shard plan, so delegate execution untouched.
        return self.inner.map_json(task, payloads, workers=workers)


class QueueBackend(ExecutionBackend):
    """A shared work directory as the job queue — the remote rung.

    Layout under ``work_dir``::

        todo/<digest>.json     enqueued cell, waiting for a claimant
        claimed/<digest>.json  renamed out of todo/ by its executor
        done/<digest>.json     the executor's reply record
        seen/<digest>.<gen>    exclusive-creation enqueue markers

    Exactly-once execution rests on two filesystem primitives that
    are atomic on POSIX (and over NFS):

    * **Claiming is ``os.rename``** — of two invocations racing for
      ``todo/x.json``, exactly one rename succeeds; the loser gets
      ``FileNotFoundError`` and moves on.
    * **Enqueueing is ``O_CREAT | O_EXCL``** on a generation-numbered
      ``seen/`` marker — of two invocations discovering the same cell
      (or re-enqueueing the same failed attempt), exactly one creates
      the marker and writes the todo file, so a cell claimed and
      executed in the gap cannot be re-queued by a slow peer.

    A cell another invocation already finished is *adopted*: its
    ``done/`` record is folded into this invocation's outcomes (and
    thereby the shared cache/manifest) without recomputation.  Cells
    still claimed by a live peer are left to it — like a sharded
    invocation, this one simply reports them as skipped; the peers
    converge through the shared cache.

    Stale-claim requeue ships **armed** (``stale_claim_seconds``
    defaults to :data:`DEFAULT_STALE_CLAIM_SECONDS`; pass ``None`` to
    disable): while a cell executes, a :class:`repro.durable.
    ClaimLease` heartbeat renews the claim file's mtime, and staleness
    is judged against the shared filesystem's own clock
    (:func:`repro.durable.fs_now`), never this host's wall time — so
    multi-host clock skew cannot requeue a live claim, and a
    hard-killed claimant's cell is recovered automatically instead of
    stranding until manual intervention.

    Cells execute inline (``attempt_job`` in this process), so
    per-invocation parallelism comes from running N invocations, not
    from ``workers``.
    """

    name = "queue"

    _KINDS = ("todo", "claimed", "done", "seen")

    def __init__(
        self,
        work_dir: str,
        *,
        stale_claim_seconds: "Optional[float]" = DEFAULT_STALE_CLAIM_SECONDS,
    ):
        if not work_dir:
            raise ValueError("queue backend needs a work_dir")
        if stale_claim_seconds is not None and stale_claim_seconds <= 0:
            raise ValueError(
                f"stale_claim_seconds must be > 0,"
                f" got {stale_claim_seconds!r}"
            )
        self.work_dir = str(work_dir)
        self.stale_claim_seconds = stale_claim_seconds

    # -- paths ---------------------------------------------------------
    def _dir(self, kind: str) -> str:
        return os.path.join(self.work_dir, kind)

    def _path(self, kind: str, digest: str) -> str:
        return os.path.join(self._dir(kind), f"{digest}.json")

    def _ensure_dirs(self) -> None:
        for kind in self._KINDS:
            directory = self._dir(kind)
            os.makedirs(directory, exist_ok=True)
            # Writers killed mid-atomic-write leave .tmp.<pid> files
            # behind; sweep the dead ones so they cannot accumulate.
            durable.sweep_orphan_tmps(directory)

    # -- done records --------------------------------------------------
    def _read_done(self, digest: str) -> "Optional[dict]":
        try:
            record = json.loads(
                durable.read_durable(self._path("done", digest))
            )
        except (OSError, ValueError):
            # Missing is normal; torn/corrupt reads as absent here and
            # is surfaced (and quarantined) by `repro doctor`.
            return None
        return record if isinstance(record, dict) else None

    def _write_done(
        self, digest: str, generation: int, reply
    ) -> None:
        record = {
            "digest": digest,
            "generation": generation,
            "result_json": reply[1],
            "error": reply[2],
            "traceback": reply[3],
            "attempts": reply[4],
            "started_at": reply[5],
            "finished_at": reply[6],
        }
        faults.faultpoint("queue.done", name=digest)
        durable.atomic_write(
            self._path("done", digest), json.dumps(record, sort_keys=True)
        )

    @staticmethod
    def _done_ok(record: dict) -> bool:
        return record.get("result_json") is not None

    # -- enqueue / claim -----------------------------------------------
    def _enqueue(self, job: SweepJob) -> None:
        digest = job.digest
        done_record = self._read_done(digest)
        if done_record is not None and self._done_ok(done_record):
            return  # success on disk: adopted later, never recomputed
        generation = (
            int(done_record.get("generation", 0)) + 1
            if done_record is not None
            else 0
        )
        marker = os.path.join(
            self._dir("seen"), f"{digest}.{generation}"
        )
        try:
            handle = os.open(
                marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            # A peer (or an earlier run) already enqueued this
            # generation; whatever happened to it since — claimed,
            # executing, done — re-queueing would double-compute.
            return
        os.close(handle)
        payload = {
            "digest": digest,
            "name": job.name,
            "spec_json": job.spec_json,
            "journal_path": job.journal_path,
            "generation": generation,
        }
        # The marker→todo gap: a kill here leaves a dangling seen
        # marker with no todo file — the crash window doctor's
        # dangling-seen repair exists for.
        faults.faultpoint("queue.enqueue.todo", name=digest)
        durable.atomic_write(
            self._path("todo", digest),
            json.dumps(payload, sort_keys=True),
        )

    def _claim(self, digest: str) -> "Optional[int]":
        """Try to claim a todo cell; returns its generation or None."""
        todo, claimed = (
            self._path("todo", digest), self._path("claimed", digest)
        )
        try:
            os.rename(todo, claimed)
        except OSError:
            return None  # a peer won the rename (or it was never there)
        # The rename preserved the todo record's mtime — which may be
        # arbitrarily old (queued backlog, a previous requeue).  The
        # lease age must start at *claim* time, or a peer's stale
        # sweep would requeue this live claim before the heartbeat's
        # first renewal and double-compute the cell.
        try:
            os.utime(claimed, None)
        except OSError:
            pass
        # A kill here is the zombie-claim scenario: the cell sits in
        # claimed/ with a dead owner until the lease judges it stale.
        faults.faultpoint("queue.claim", name=digest)
        try:
            payload = json.loads(durable.read_durable(claimed))
            generation = int(payload.get("generation", 0))
        except (OSError, ValueError):
            generation = 0
        return generation

    def _unclaim(self, digest: str) -> None:
        try:
            os.remove(self._path("claimed", digest))
        except OSError:
            pass

    def _todo_digests(self) -> "List[str]":
        try:
            entries = os.listdir(self._dir("todo"))
        except OSError:
            return []
        return sorted(
            entry[: -len(".json")]
            for entry in entries
            if entry.endswith(".json") and ".tmp." not in entry
        )

    def _requeue_stale(self, digests: "Sequence[str]") -> bool:
        """Rename stale claims back into todo/; True if any moved."""
        if self.stale_claim_seconds is None:
            return False
        requeued = False
        # Staleness is judged by the *filesystem's* clock so peers on
        # hosts with skewed wall clocks agree on which claims died.
        now = durable.fs_now(self._dir("claimed"))
        for digest in digests:
            claimed = self._path("claimed", digest)
            try:
                age = now - os.stat(claimed).st_mtime
            except OSError:
                continue
            if age <= self.stale_claim_seconds:
                continue
            try:
                os.rename(claimed, self._path("todo", digest))
            except OSError:
                continue  # the claimant finished (or a peer requeued)
            requeued = True
            obs_metrics.count("queue.requeued_stale")
        return requeued

    def _adopt(self, job: SweepJob) -> "Optional[JobOutcome]":
        """Fold a peer-computed done record into an outcome, if any."""
        digest = job.digest
        if os.path.exists(self._path("todo", digest)) or os.path.exists(
            self._path("claimed", digest)
        ):
            return None  # still in flight somewhere
        record = self._read_done(digest)
        if record is None:
            return None
        if record.get("result_json") is None and not record.get("error"):
            return None
        reply = (
            digest,
            record.get("result_json"),
            record.get("error"),
            record.get("traceback"),
            int(record.get("attempts", 1) or 1),
            record.get("started_at"),
            record.get("finished_at"),
        )
        return _outcome(job, reply)

    # -- execution -----------------------------------------------------
    def run_jobs(
        self, jobs, *, workers=1, max_retries=0, on_outcome=None,
        scheduling=None,
    ):
        if not jobs:
            return []
        self._ensure_dirs()
        retry_backoff = (
            scheduling.retry_backoff if scheduling is not None else 0.0
        )
        jobs_by_digest = {job.digest: job for job in jobs}
        for job in jobs:
            self._enqueue(job)
        outcomes: "List[JobOutcome]" = []
        resolved: "set[str]" = set()

        def emit(outcome: JobOutcome) -> None:
            resolved.add(outcome.job.digest)
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)

        while True:
            progressed = False
            for digest in self._todo_digests():
                if digest in resolved or digest not in jobs_by_digest:
                    continue  # a peer's cell, or already settled here
                generation = self._claim(digest)
                if generation is None:
                    continue  # a peer won the claim race
                job = jobs_by_digest[digest]
                lease = (
                    durable.ClaimLease(
                        self._path("claimed", digest),
                        interval=max(
                            0.5, self.stale_claim_seconds / 8.0
                        ),
                    )
                    if self.stale_claim_seconds is not None
                    else None
                )
                try:
                    reply = attempt_job(
                        (
                            job.name, job.digest, job.spec_json,
                            max_retries, job.journal_path,
                            retry_backoff,
                        )
                    )
                finally:
                    if lease is not None:
                        lease.stop()
                self._write_done(digest, generation, reply)
                self._unclaim(digest)
                emit(_outcome(job, reply))
                progressed = True
            unresolved = [
                digest for digest in jobs_by_digest
                if digest not in resolved
            ]
            if not unresolved:
                break
            for digest in unresolved:
                adopted = self._adopt(jobs_by_digest[digest])
                if adopted is not None:
                    obs_metrics.count("queue.adopted")
                    emit(adopted)
                    progressed = True
            if all(digest in resolved for digest in jobs_by_digest):
                break
            if progressed:
                continue
            if self._requeue_stale(
                [d for d in jobs_by_digest if d not in resolved]
            ):
                continue
            # Everything left is claimed by a live peer: leave it to
            # them, sharded-style — the shared cache/manifest is where
            # the invocations converge.
            break
        order = {job.digest: index for index, job in enumerate(jobs)}
        outcomes.sort(key=lambda outcome: order[outcome.job.digest])
        return outcomes


def parse_shard(text: str) -> "Tuple[int, int]":
    """Parse a CLI ``--shard I/N`` value into ``(index, count)``."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like I/N (e.g. 0/4), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, count) with count >= 1,"
            f" got {text!r}"
        )
    return index, count


_FACTORIES: "Dict[str, Callable[[], ExecutionBackend]]" = {
    "serial": SerialBackend,
    "threads": ThreadBackend,
    "processes": ProcessBackend,
}


#: Sentinel distinguishing "caller said nothing" from an explicit
#: ``stale_claim_seconds=None`` (disable requeue) in make_backend.
_STALE_UNSET = object()


def make_backend(
    backend: "ExecutionBackend | str | None" = None,
    *,
    shard: "Optional[Tuple[int, int]]" = None,
    queue_dir: "Optional[str]" = None,
    stale_claim_seconds=_STALE_UNSET,
) -> ExecutionBackend:
    """Resolve a backend name/instance, optionally wrapped in a shard.

    ``None`` means the default (``processes``).  ``shard=(i, n)``
    wraps whatever was chosen in a :class:`ShardedBackend`, so
    ``--backend threads --shard 1/4`` composes the way you'd hope.
    ``queue`` needs *queue_dir*, the shared work directory the
    cooperating invocations drain; ``stale_claim_seconds`` tunes its
    requeue threshold (``None`` disables requeue; unspecified keeps
    the armed default).
    """
    if isinstance(backend, ExecutionBackend):
        resolved = backend
    elif backend is None:
        resolved = ProcessBackend()
    elif backend == "sharded":
        if shard is None:
            raise ValueError(
                "backend 'sharded' needs shard=(index, count)"
                " (CLI: --shard I/N)"
            )
        resolved = None  # built below, around the default inner
    elif backend == "queue":
        if queue_dir is None:
            raise ValueError(
                "backend 'queue' needs queue_dir, the shared work"
                " directory (CLI: --queue-dir, or --cache-dir to"
                " default it to <cache-dir>/queue)"
            )
        if stale_claim_seconds is _STALE_UNSET:
            resolved = QueueBackend(queue_dir)
        else:
            resolved = QueueBackend(
                queue_dir, stale_claim_seconds=stale_claim_seconds
            )
    else:
        try:
            resolved = _FACTORIES[backend]()
        except KeyError:
            raise ValueError(
                f"unknown execution backend {backend!r}; choose from:"
                f" {', '.join(BACKEND_NAMES)}"
            ) from None
    if shard is not None:
        index, count = shard
        return ShardedBackend(index, count, inner=resolved)
    return resolved
