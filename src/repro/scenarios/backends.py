"""Pluggable sweep execution backends.

The sweep runner used to be welded to one ``ProcessPoolExecutor``.
This module turns "how do the cells of a sweep actually execute" into
a small strategy interface, :class:`ExecutionBackend`, with four
implementations:

``serial``
    One cell at a time, in this process.  Zero moving parts: plain
    stack traces, ``pdb`` works, profilers see everything.  The
    reference implementation the determinism suite measures the other
    backends against.

``threads``
    A ``ThreadPoolExecutor``.  Simulations are pure-Python CPU-bound
    work, so threads buy nothing for the classic kinds — but ``mrt``
    replay cells spend their time in file I/O and future remote
    sources will spend it on sockets, and those overlap fine under
    the GIL.

``processes``
    A ``ProcessPoolExecutor`` — the original behavior, refactored
    onto the interface.  The right default for CPU-bound sweeps.

``sharded``
    A deterministic partitioner wrapped around any inner backend.
    Shard ``i`` of ``n`` owns a cell iff
    ``shard_of(digest, n) == i``; everything else is left untouched
    for the other ``n - 1`` invocations.  Because ownership is a pure
    function of the spec hash, independent invocations — separate
    shells, cron jobs, machines over a shared filesystem — cooperate
    through the shared spec-hash cache without ever talking to each
    other.

Every backend speaks the same job protocol: a :class:`SweepJob` is
``(digest, name, spec JSON)``, an outcome is either a result JSON
payload or a :class:`JobFailure` carrying the spec's name, hash and
full traceback.  Workers never raise into the coordinator — a
crashing cell becomes data, not a dead sweep — and every error is
wrapped with enough context to know *which* spec failed.

Backends must invoke the optional ``on_outcome`` callback from the
coordinating thread (the one that called :meth:`run_jobs`), so the
runner can checkpoint caches and manifests without locking.
"""

from __future__ import annotations

import time
import traceback as traceback_module
from abc import ABC, abstractmethod
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.scenarios.engine import run_scenario_json

#: Names accepted by :func:`make_backend` (``sharded`` additionally
#: needs a ``shard=(index, count)``).
BACKEND_NAMES = ("serial", "threads", "processes", "sharded")


@dataclass(frozen=True)
class SweepJob:
    """One sweep cell as the backends see it: pure strings.

    Backends exchange nothing but JSON text with their workers, which
    keeps the multiprocessing surface tiny and doubles as the
    cross-process determinism contract — identical specs must produce
    byte-identical payloads no matter which backend or worker ran
    them.
    """

    digest: str
    name: str
    spec_json: str
    #: Where the worker should append its JSONL run journal (start,
    #: heartbeat, finish/fail lines) — ``None`` disables journaling.
    #: The path is part of the job, not the payload: journals are
    #: out-of-band observability and never touch the result JSON.
    journal_path: "Optional[str]" = None


@dataclass(frozen=True)
class JobFailure:
    """A sweep cell that kept failing after every allowed retry."""

    name: str
    spec_hash: str
    #: One-line ``ExceptionType: message`` summary.
    error: str
    #: The full traceback text of the final attempt.
    traceback: str
    #: Total attempts made (1 + retries).
    attempts: int

    def describe(self) -> str:
        """Human-oriented one-liner with the spec context attached."""
        return (
            f"scenario {self.name!r} [spec {self.spec_hash}] failed"
            f" after {self.attempts} attempt(s): {self.error}"
        )


@dataclass(frozen=True)
class JobOutcome:
    """What became of one executed job: a payload or a failure."""

    job: SweepJob
    result_json: "Optional[str]" = None
    failure: "Optional[JobFailure]" = None
    #: Total attempts the worker made for this cell (1 + retries).
    attempts: int = 1
    #: Wall-clock bounds of the cell's execution, measured *in the
    #: worker* — so wall time excludes pool queue wait.  ``None`` when
    #: the worker died before reporting.
    started_at: "Optional[float]" = None
    finished_at: "Optional[float]" = None

    @property
    def ok(self) -> bool:
        return self.result_json is not None

    @property
    def wall_seconds(self) -> "Optional[float]":
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


#: Signature of the per-outcome checkpoint hook.
OutcomeHook = Callable[[JobOutcome], None]


def attempt_job(
    args: "Tuple[str, str, str, int, Optional[str]]",
) -> "Tuple[str, Optional[str], Optional[str], Optional[str], int, float, float]":
    """Worker entry point shared by every backend.

    Takes ``(name, digest, spec_json, max_retries, journal_path)`` and
    returns ``(digest, result_json, error, traceback, attempts,
    started_at, finished_at)`` — plain picklable tuples in both
    directions so the same function runs inline, on a thread or in a
    pool process.  Exceptions never propagate: they are retried up to
    ``max_retries`` times and then reported as data, so one broken
    cell cannot take down a pool (the old behavior was a bare
    ``future.result()`` traceback with no hint of which spec died).

    The wall-clock bounds are measured here in the worker, so the
    manifest's per-cell wall time covers actual execution (including
    retries) and never the time the job sat queued behind a busy pool.
    """
    name, digest, spec_json, max_retries, journal_path = args
    # repro: allow(DET002) wall-clock stamps feed the manifest/status view only; result payloads never carry them (the determinism harness pins this)
    started_at = time.time()
    attempts = 0
    while True:
        attempts += 1
        try:
            if journal_path is None:
                payload = run_scenario_json(spec_json)
            else:
                payload = run_scenario_json(spec_json, journal_path)
            return (
                digest, payload, None, None, attempts,
                # repro: allow(DET002) finish stamp for the manifest/status view; not part of the result payload
                started_at, time.time(),
            )
        except Exception as exc:  # noqa: BLE001 — reported, not hidden
            if attempts > max_retries:
                summary = f"{type(exc).__name__}: {exc}"
                return (
                    digest,
                    None,
                    summary,
                    traceback_module.format_exc(),
                    attempts,
                    started_at,
                    # repro: allow(DET002) failure finish stamp for the manifest/status view; not part of any result payload
                    time.time(),
                )


def _outcome(job: SweepJob, reply) -> JobOutcome:
    """Fold a worker reply tuple back into a :class:`JobOutcome`."""
    (
        _, result_json, error, traceback_text, attempts,
        started_at, finished_at,
    ) = reply
    if result_json is not None:
        return JobOutcome(
            job=job,
            result_json=result_json,
            attempts=attempts,
            started_at=started_at,
            finished_at=finished_at,
        )
    return JobOutcome(
        job=job,
        failure=JobFailure(
            name=job.name,
            spec_hash=job.digest,
            error=error or "unknown error",
            traceback=traceback_text or "",
            attempts=attempts,
        ),
        attempts=attempts,
        started_at=started_at,
        finished_at=finished_at,
    )


class ExecutionBackend(ABC):
    """Strategy interface: how a batch of sweep jobs executes."""

    #: Registry/CLI name; subclasses must set it.
    name: str = ""

    @abstractmethod
    def run_jobs(
        self,
        jobs: "Sequence[SweepJob]",
        *,
        workers: int = 1,
        max_retries: int = 0,
        on_outcome: "Optional[OutcomeHook]" = None,
    ) -> "List[JobOutcome]":
        """Execute *jobs* and return one outcome per executed job.

        A sharding backend may execute fewer jobs than it was given;
        jobs it does not own simply have no outcome.  ``on_outcome``
        fires once per outcome, from the coordinating thread, as soon
        as that outcome is known — the runner uses it to checkpoint
        the cache and manifest so a killed sweep loses at most the
        cells that were mid-flight.
        """

    def map_json(
        self,
        task: "Callable[[str], str]",
        payloads: "Sequence[str]",
        *,
        workers: int = 1,
    ) -> "List[str]":
        """Apply a JSON-string task to every payload, in payload order.

        The light sibling of :meth:`run_jobs` for the parallel MRT
        decode: same strings-only contract (*task* must be a picklable
        module-level function taking and returning JSON text), but no
        retry/outcome machinery — callers that fan decode shards out
        handle failure by falling back to serial, so a raising worker
        simply propagates.  The base implementation is the in-process
        serial loop; pool backends override it.
        """
        return [task(payload) for payload in payloads]


class SerialBackend(ExecutionBackend):
    """In-process, one cell at a time — the debugging backend."""

    name = "serial"

    def run_jobs(self, jobs, *, workers=1, max_retries=0, on_outcome=None):
        outcomes: "List[JobOutcome]" = []
        for job in jobs:
            reply = attempt_job(
                (
                    job.name, job.digest, job.spec_json, max_retries,
                    job.journal_path,
                )
            )
            outcome = _outcome(job, reply)
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
        return outcomes


class _PoolBackend(ExecutionBackend):
    """Shared submit/collect loop for the two executor-pool backends."""

    def _make_pool(self, workers: int):
        raise NotImplementedError

    def run_jobs(self, jobs, *, workers=1, max_retries=0, on_outcome=None):
        if not jobs:
            return []
        if workers == 1 or len(jobs) == 1:
            # One lane is just the serial loop; skip the pool overhead
            # (and, for processes, the fork) entirely.  The determinism
            # suite pins that this shortcut changes no payload byte.
            return SerialBackend().run_jobs(
                jobs, max_retries=max_retries, on_outcome=on_outcome
            )
        outcomes: "List[JobOutcome]" = []
        with self._make_pool(min(workers, len(jobs))) as pool:
            futures = {
                pool.submit(
                    attempt_job,
                    (
                        job.name, job.digest, job.spec_json, max_retries,
                        job.journal_path,
                    ),
                ): job
                for job in jobs
            }
            for future in as_completed(futures):
                job = futures[future]
                try:
                    reply = future.result()
                except Exception as exc:  # noqa: BLE001
                    # attempt_job never raises, so landing here means
                    # the worker itself died (segfault, OOM kill —
                    # BrokenProcessPool) or the pool broke down.  Fold
                    # it into a failure like any other so the sweep
                    # keeps its remaining cells instead of aborting
                    # with an anonymous pool traceback.
                    reply = (
                        job.digest,
                        None,
                        f"worker died: {type(exc).__name__}: {exc}",
                        traceback_module.format_exc(),
                        1,
                        None,
                        None,
                    )
                outcome = _outcome(job, reply)
                outcomes.append(outcome)
                if on_outcome is not None:
                    on_outcome(outcome)
        # Deterministic reporting order regardless of completion order.
        order = {job.digest: index for index, job in enumerate(jobs)}
        outcomes.sort(key=lambda outcome: order[outcome.job.digest])
        return outcomes

    def map_json(self, task, payloads, *, workers=1):
        if workers <= 1 or len(payloads) <= 1:
            # Mirror run_jobs' one-lane shortcut: skip the pool (and
            # for processes, the fork) when it cannot buy parallelism.
            return [task(payload) for payload in payloads]
        with self._make_pool(min(workers, len(payloads))) as pool:
            # Executor.map preserves payload order, so replies line up
            # with their shards no matter which worker finished first.
            return list(pool.map(task, payloads))


class ThreadBackend(_PoolBackend):
    """Thread pool — for I/O-bound cells (mrt replay, remote feeds)."""

    name = "threads"

    def _make_pool(self, workers: int):
        return ThreadPoolExecutor(max_workers=workers)


class ProcessBackend(_PoolBackend):
    """Process pool — the CPU-bound default (the original behavior)."""

    name = "processes"

    def _make_pool(self, workers: int):
        return ProcessPoolExecutor(max_workers=workers)


def shard_of(digest: str, shard_count: int) -> int:
    """Which shard owns a spec hash.  Pure, stable, order-free.

    Keying on the digest (not the position in the spec list) means
    ownership survives reordering, deduplication and sweep growth —
    two invocations never compute the same cell twice, and no cell is
    orphaned, as long as they agree on ``shard_count``.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count!r}")
    return int(digest[:8], 16) % shard_count


class ShardedBackend(ExecutionBackend):
    """Deterministic partition of a sweep across cooperating runs."""

    name = "sharded"

    def __init__(
        self,
        shard_index: int,
        shard_count: int,
        inner: "Optional[ExecutionBackend]" = None,
    ):
        if shard_count < 1:
            raise ValueError(
                f"shard count must be >= 1, got {shard_count!r}"
            )
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                f"shard index must be in [0, {shard_count}),"
                f" got {shard_index!r}"
            )
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.inner = inner if inner is not None else ProcessBackend()

    def owns(self, digest: str) -> bool:
        """True when this shard is responsible for *digest*."""
        return shard_of(digest, self.shard_count) == self.shard_index

    def run_jobs(self, jobs, *, workers=1, max_retries=0, on_outcome=None):
        owned = [job for job in jobs if job.digest and self.owns(job.digest)]
        return self.inner.run_jobs(
            owned,
            workers=workers,
            max_retries=max_retries,
            on_outcome=on_outcome,
        )

    def map_json(self, task, payloads, *, workers=1):
        # Decode shards are not sweep cells: the partition is already
        # decided by the shard plan, so delegate execution untouched.
        return self.inner.map_json(task, payloads, workers=workers)


def parse_shard(text: str) -> "Tuple[int, int]":
    """Parse a CLI ``--shard I/N`` value into ``(index, count)``."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like I/N (e.g. 0/4), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, count) with count >= 1,"
            f" got {text!r}"
        )
    return index, count


_FACTORIES: "Dict[str, Callable[[], ExecutionBackend]]" = {
    "serial": SerialBackend,
    "threads": ThreadBackend,
    "processes": ProcessBackend,
}


def make_backend(
    backend: "ExecutionBackend | str | None" = None,
    *,
    shard: "Optional[Tuple[int, int]]" = None,
) -> ExecutionBackend:
    """Resolve a backend name/instance, optionally wrapped in a shard.

    ``None`` means the default (``processes``).  ``shard=(i, n)``
    wraps whatever was chosen in a :class:`ShardedBackend`, so
    ``--backend threads --shard 1/4`` composes the way you'd hope.
    """
    if isinstance(backend, ExecutionBackend):
        resolved = backend
    elif backend is None:
        resolved = ProcessBackend()
    elif backend == "sharded":
        if shard is None:
            raise ValueError(
                "backend 'sharded' needs shard=(index, count)"
                " (CLI: --shard I/N)"
            )
        resolved = None  # built below, around the default inner
    else:
        try:
            resolved = _FACTORIES[backend]()
        except KeyError:
            raise ValueError(
                f"unknown execution backend {backend!r}; choose from:"
                f" {', '.join(BACKEND_NAMES)}"
            ) from None
    if shard is not None:
        index, count = shard
        return ShardedBackend(index, count, inner=resolved)
    return resolved
