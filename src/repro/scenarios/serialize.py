"""Spec/result JSON round-trip and stable spec hashing.

Scenario specs travel three ways: to disk (reproducible run recipes),
to worker processes (the parallel runner pickles nothing but JSON
strings) and into the result cache key.  All three use the same
canonical dict form produced here, so a spec that round-trips through
JSON hashes identically to the original.

The hash deliberately covers every behavior-affecting field (kind,
seed, duration, collectors, every knob) but *not* ``description``,
which is pure documentation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, fields
from typing import Any, Dict

from repro.scenarios.spec import (
    InternetSpec,
    LabSpec,
    MrtSpec,
    ScenarioSpec,
    ScenarioValidationError,
)


# ----------------------------------------------------------------------
# spec <-> dict / JSON
# ----------------------------------------------------------------------
def spec_to_dict(spec: ScenarioSpec) -> "Dict[str, Any]":
    """Canonical plain-data form of a spec (JSON-ready).

    The canonical form records only what the spec actually says:
    sections added after the original lab/internet pair are omitted
    when unset, and ``None`` fields inside sections (meaning "keep the
    base default") are omitted entirely.  That keeps spec hashes — and
    therefore sweep-cache keys — stable when a section later grows a
    new optional knob: a spec that does not use the knob hashes the
    same before and after the field exists.
    """
    data = _plain(asdict(spec))
    if data.get("mrt") is None:
        data.pop("mrt", None)
    for label in ("lab", "internet", "mrt"):
        section = data.get(label)
        if isinstance(section, dict):
            data[label] = {
                key: value
                for key, value in section.items()
                if value is not None
            }
    return data


def spec_from_dict(data: "Dict[str, Any]") -> ScenarioSpec:
    """Rebuild a spec from its dict form; strict about field names."""
    if not isinstance(data, dict):
        raise ScenarioValidationError(
            "<payload>", [f"spec payload must be an object, got {type(data).__name__}"]
        )
    payload = dict(data)
    errors = []
    lab = payload.pop("lab", None)
    internet = payload.pop("internet", None)
    mrt = payload.pop("mrt", None)
    known = {item.name for item in fields(ScenarioSpec)}
    unknown = set(payload) - known
    for key in sorted(unknown):
        errors.append(f"unknown spec field {key!r}")
        payload.pop(key)
    lab_spec = _section_from_dict(LabSpec, lab, "lab", errors)
    internet_spec = _section_from_dict(
        InternetSpec, internet, "internet", errors
    )
    mrt_spec = _section_from_dict(MrtSpec, mrt, "mrt", errors)
    for required in ("name", "kind"):
        if required not in payload:
            errors.append(f"missing required spec field {required!r}")
    if errors:
        raise ScenarioValidationError(
            str(data.get("name", "<unnamed>")), errors
        )
    if "collectors" in payload:
        payload["collectors"] = tuple(payload["collectors"])
    return ScenarioSpec(
        lab=lab_spec, internet=internet_spec, mrt=mrt_spec, **payload
    )


def _section_from_dict(cls, data, label, errors):
    if data is None:
        return None
    if not isinstance(data, dict):
        errors.append(f"{label} section must be an object, got {data!r}")
        return None
    known = {item.name for item in fields(cls)}
    payload = {}
    for key, value in data.items():
        if key not in known:
            errors.append(f"unknown {label} field {key!r}")
            continue
        payload[key] = _tuplify(value)
    return cls(**payload)


def _tuplify(value):
    """Lists (from JSON) become tuples so specs stay hashable/frozen."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def _plain(value):
    """Tuples become lists so the dict form is JSON-canonical."""
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    return value


def spec_to_json(spec: ScenarioSpec, *, indent: "int | None" = 2) -> str:
    """Serialize a spec to JSON text."""
    return json.dumps(spec_to_dict(spec), indent=indent, sort_keys=True)


def spec_from_json(text: str) -> ScenarioSpec:
    """Parse a spec from JSON text."""
    return spec_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# hashing
# ----------------------------------------------------------------------
def spec_hash(spec: ScenarioSpec) -> str:
    """Stable short hash keying caches and result provenance."""
    data = spec_to_dict(spec)
    data.pop("description", None)
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# result <-> dict / JSON
# ----------------------------------------------------------------------
def result_to_dict(result) -> "Dict[str, Any]":
    """Self-contained plain-data form of a :class:`ScenarioResult`.

    The streaming-only fields (``snapshots``, ``stopped_early``) are
    emitted only when set, so cache files written before the pipeline
    refactor round-trip unchanged.
    """
    payload = {
        "spec": spec_to_dict(result.spec),
        "spec_hash": result.spec_hash,
        "metrics": _plain(result.metrics),
    }
    if getattr(result, "snapshots", None):
        payload["snapshots"] = _plain(result.snapshots)
    if getattr(result, "stopped_early", False):
        payload["stopped_early"] = True
    if getattr(result, "spill_paths", None):
        payload["spill_paths"] = dict(result.spill_paths)
    if getattr(result, "reader_stats", None):
        payload["reader_stats"] = dict(result.reader_stats)
    if getattr(result, "shard_stats", None):
        payload["shard_stats"] = _plain(result.shard_stats)
    if getattr(result, "metrics_report", None):
        payload["metrics_report"] = _plain(result.metrics_report)
    return payload


def result_from_dict(data: "Dict[str, Any]"):
    """Rebuild a :class:`ScenarioResult` from its dict form."""
    from repro.scenarios.engine import ScenarioResult

    spec = spec_from_dict(data["spec"])
    return ScenarioResult(
        spec=spec,
        spec_hash=data["spec_hash"],
        metrics=data["metrics"],
        snapshots=list(data.get("snapshots", [])),
        stopped_early=bool(data.get("stopped_early", False)),
        spill_paths=dict(data.get("spill_paths", {})),
        reader_stats=dict(data.get("reader_stats", {})),
        shard_stats=list(data.get("shard_stats", [])),
        metrics_report=dict(data.get("metrics_report", {})),
    )


def result_to_json(result, *, indent: "int | None" = None) -> str:
    """Serialize a result to JSON text."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def result_from_json(text: str):
    """Parse a result from JSON text."""
    return result_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# sweep failures <-> dict
# ----------------------------------------------------------------------
def failure_to_dict(failure) -> "Dict[str, Any]":
    """Plain-data form of a :class:`JobFailure` (manifest/JSON output)."""
    return {
        "name": failure.name,
        "spec_hash": failure.spec_hash,
        "error": failure.error,
        "traceback": failure.traceback,
        "attempts": failure.attempts,
    }


def failure_from_dict(data: "Dict[str, Any]"):
    """Rebuild a :class:`JobFailure` from its dict form."""
    from repro.scenarios.backends import JobFailure

    return JobFailure(
        name=str(data.get("name", "<unknown>")),
        spec_hash=str(data.get("spec_hash", "")),
        error=str(data.get("error", "unknown error")),
        traceback=str(data.get("traceback", "")),
        attempts=int(data.get("attempts", 1)),
    )
