"""The declarative scenario contract.

A :class:`ScenarioSpec` is the single self-contained description of one
experiment run: what to simulate (the §3 lab matrix or a synthetic
internet day), with which knobs (vendor mix, community practices,
damping/MRAI, topology scale, event schedule), which metrics to collect
and under which seed.  The spec is plain data — stdlib dataclasses
only, no third-party dependencies — so it can be hashed, serialized and
shipped to worker processes verbatim.

Validation is strict and happens *before* any network is built:
:meth:`ScenarioSpec.validate` walks every field, accumulates every
problem it finds and raises one :class:`ScenarioValidationError` whose
message lists them all, so a broken spec fails fast with actionable
errors instead of exploding mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: The §3 lab experiments a lab scenario may select from.
LAB_EXPERIMENTS = ("exp1", "exp2", "exp3", "exp4")

#: Base configurations an internet scenario builds on.
INTERNET_SCALES = ("small", "mar20")

VALID_KINDS = ("lab", "internet", "mrt")


def _is_number(value) -> bool:
    """True for real int/float values (bool is not a number here)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class ScenarioValidationError(ValueError):
    """A spec failed validation; ``errors`` lists every problem."""

    def __init__(self, name: str, errors: "List[str]"):
        self.scenario_name = name
        self.errors = list(errors)
        details = "\n".join(f"  - {error}" for error in self.errors)
        super().__init__(
            f"invalid scenario {name!r} ({len(self.errors)} problem"
            f"{'s' if len(self.errors) != 1 else ''}):\n{details}"
        )


@dataclass(frozen=True)
class LabSpec:
    """Knobs for a §3 lab-matrix scenario (Figure 1 topology)."""

    #: Which experiments to run (subset of :data:`LAB_EXPERIMENTS`).
    experiments: "Tuple[str, ...]" = LAB_EXPERIMENTS
    #: Vendor profile names or aliases (see :mod:`repro.vendors`).
    vendors: "Tuple[str, ...]" = (
        "cisco",
        "ios-xr",
        "junos",
        "bird",
        "bird2",
    )
    #: Per-session MRAI seconds (0 disables pacing, as in the paper).
    mrai: float = 0.0


@dataclass(frozen=True)
class InternetSpec:
    """Knobs for a synthetic-internet measurement-day scenario.

    Every ``Optional`` field defaults to ``None``, meaning "keep the
    value of the base :attr:`scale` configuration"; only explicit
    overrides are recorded, which keeps spec hashes stable across
    unrelated default changes.
    """

    #: Base configuration: "small" (test-sized) or "mar20" (calibrated).
    scale: str = "small"
    #: Topology generator seed; ``None`` follows the scenario seed...
    #: except for the named base scales, which pin their own topology
    #: seed so the paper numbers stay reproducible.
    topology_seed: "Optional[int]" = None
    tier1_count: "Optional[int]" = None
    transit_count: "Optional[int]" = None
    stub_count: "Optional[int]" = None
    #: ``((vendor alias, weight), ...)``; weights need not sum to 1.
    vendor_mix: "Optional[Tuple[Tuple[str, float], ...]]" = None
    tagger_fraction: "Optional[float]" = None
    cleaner_egress_fraction: "Optional[float]" = None
    cleaner_ingress_fraction: "Optional[float]" = None
    scrub_internal_fraction: "Optional[float]" = None
    collector_peer_fraction: "Optional[float]" = None
    collector_peer_clean_fraction: "Optional[float]" = None
    include_route_server: "Optional[bool]" = None
    include_bogons: "Optional[bool]" = None
    beacon_count: "Optional[int]" = None
    link_flaps: "Optional[int]" = None
    prefix_flaps: "Optional[int]" = None
    med_churn_events: "Optional[int]" = None
    community_churn_events: "Optional[int]" = None
    prepend_change_events: "Optional[int]" = None
    collector_session_resets: "Optional[int]" = None
    mrai: "Optional[float]" = None
    #: Coalesce same-fire-time message deliveries per session into one
    #: simulator event (``None`` keeps the simulator default: on).
    #: Per-(peer, fire-time) FIFO order is preserved; with the random
    #: per-session delays internet scenarios use, collector output is
    #: bit-identical either way (`bench_core.py --verify` checks it).
    delivery_batching: "Optional[bool]" = None
    #: Collector archive policy: ``full`` | ``ring:N`` | ``mrt-spill``
    #: (``None`` keeps the simulator default: ``full``).  With live
    #: metric sinks the analysis never touches the archive, so ring
    #: and spill bound collector memory without changing any metric.
    archive_policy: "Optional[str]" = None
    #: Collector names to instantiate (``None`` keeps the base
    #: scale's default pair).  A single-name tuple gives one archive
    #: file, which is what the mrt-replay round trip wants.
    collector_names: "Optional[Tuple[str, ...]]" = None


@dataclass(frozen=True)
class MrtSpec:
    """Knobs for an mrt-replay scenario: an on-disk archive — real
    RouteViews/RIS data or a file the simulator itself spilled —
    pushed through the identical observation/classification path a
    live run uses."""

    #: Archive path.  ``None`` at registration time; must be provided
    #: (e.g. via ``repro scenario run mrt-replay --input FILE``)
    #: before the scenario can run.
    path: "Optional[str]" = None
    #: Collector label stamped onto every observation's session key.
    collector: str = "mrt"
    #: Drop damaged records instead of raising (real archives contain
    #: occasional damage; the paper's pipeline drops rather than
    #: crashes).
    tolerant: bool = True
    #: Sharded parallel decode: number of worker processes (``None``
    #: keeps the serial path; results are proven bit-identical either
    #: way, so this is purely a throughput knob).  Defaulting to
    #: ``None`` also keeps spec hashes of existing scenarios stable.
    decode_workers: "Optional[int]" = None


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described, reproducible experiment."""

    name: str
    kind: str  # "lab" | "internet"
    description: str = ""
    #: Master RNG seed; identical specs are bit-reproducible.
    seed: int = 0
    #: Simulated duration in seconds (internet scenarios; ``None`` runs
    #: the full measurement day).
    duration: "Optional[float]" = None
    #: Metric collectors to attach (names from
    #: :mod:`repro.scenarios.collectors`).
    collectors: "Tuple[str, ...]" = ("update_counts",)
    lab: "Optional[LabSpec]" = None
    internet: "Optional[InternetSpec]" = None
    mrt: "Optional[MrtSpec]" = None

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        """Check every field; raise :class:`ScenarioValidationError`
        listing *all* problems, or return self when clean."""
        errors: List[str] = []
        self._check_header(errors)
        self._check_collectors(errors)
        if self.kind == "lab":
            for label in ("internet", "mrt"):
                if getattr(self, label) is not None:
                    errors.append(
                        f"lab scenario must not carry an {label} section"
                    )
            self._check_lab(self.lab if self.lab else LabSpec(), errors)
        elif self.kind == "internet":
            for label in ("lab", "mrt"):
                if getattr(self, label) is not None:
                    errors.append(
                        f"internet scenario must not carry a {label} section"
                    )
            self._check_internet(
                self.internet if self.internet else InternetSpec(), errors
            )
        elif self.kind == "mrt":
            for label in ("lab", "internet"):
                if getattr(self, label) is not None:
                    errors.append(
                        f"mrt scenario must not carry a {label} section"
                    )
            self._check_mrt(self.mrt if self.mrt else MrtSpec(), errors)
        if errors:
            raise ScenarioValidationError(self.name or "<unnamed>", errors)
        return self

    def _check_header(self, errors: "List[str]") -> None:
        if not self.name or not str(self.name).strip():
            errors.append("name must be a non-empty string")
        if self.kind not in VALID_KINDS:
            errors.append(
                f"kind must be one of {VALID_KINDS}, got {self.kind!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            errors.append(f"seed must be an integer, got {self.seed!r}")
        if self.duration is not None and (
            not _is_number(self.duration) or self.duration <= 0
        ):
            errors.append(
                f"duration must be positive (seconds), got {self.duration!r}"
            )

    def _check_collectors(self, errors: "List[str]") -> None:
        from repro.scenarios.collectors import known_collector_names

        known = known_collector_names()
        if not self.collectors:
            errors.append("at least one collector is required")
        seen = set()
        for name in self.collectors:
            if name in seen:
                errors.append(f"duplicate collector: {name!r}")
            seen.add(name)
            if name not in known:
                errors.append(
                    f"unknown collector {name!r}; known collectors:"
                    f" {', '.join(sorted(known))}"
                )

    def _check_lab(self, lab: LabSpec, errors: "List[str]") -> None:
        if not lab.experiments:
            errors.append("lab.experiments must not be empty")
        for experiment in lab.experiments:
            if experiment not in LAB_EXPERIMENTS:
                errors.append(
                    f"unknown lab experiment {experiment!r}; choose from"
                    f" {LAB_EXPERIMENTS}"
                )
        if not lab.vendors:
            errors.append("lab.vendors must not be empty")
        for vendor in lab.vendors:
            _check_vendor_name(vendor, "lab.vendors", errors)
        if not _is_number(lab.mrai) or lab.mrai < 0:
            errors.append(f"lab.mrai must be >= 0, got {lab.mrai!r}")

    def _check_internet(
        self, internet: InternetSpec, errors: "List[str]"
    ) -> None:
        if internet.scale not in INTERNET_SCALES:
            errors.append(
                f"internet.scale must be one of {INTERNET_SCALES},"
                f" got {internet.scale!r}"
            )
        for label in ("tier1_count", "transit_count", "stub_count"):
            value = getattr(internet, label)
            if value is not None and (not _is_number(value) or value < 1):
                errors.append(f"internet.{label} must be >= 1, got {value!r}")
        fraction_fields = (
            "tagger_fraction",
            "cleaner_egress_fraction",
            "cleaner_ingress_fraction",
            "scrub_internal_fraction",
            "collector_peer_fraction",
            "collector_peer_clean_fraction",
        )
        fractions_ok = True
        for label in fraction_fields:
            value = getattr(internet, label)
            if value is not None and (
                not _is_number(value) or not 0.0 <= value <= 1.0
            ):
                errors.append(
                    f"internet.{label} must be within [0, 1], got {value!r}"
                )
                fractions_ok = False
        if fractions_ok and internet.scale in INTERNET_SCALES:
            # Check the practice split as it will actually materialize:
            # overrides merged onto the base scale's defaults, so a
            # partial override cannot silently push the sum past 1.
            effective_sum = sum(
                self._effective_fraction(internet, label)
                for label in (
                    "tagger_fraction",
                    "cleaner_egress_fraction",
                    "cleaner_ingress_fraction",
                )
            )
            if effective_sum > 1.0 + 1e-9:
                errors.append(
                    "internet practice fractions (tagger + cleaner_egress"
                    " + cleaner_ingress, with base-scale defaults for"
                    f" unset fields) must sum to <= 1, got"
                    f" {effective_sum:.3f}"
                )
        count_fields = (
            "beacon_count",
            "link_flaps",
            "prefix_flaps",
            "med_churn_events",
            "community_churn_events",
            "prepend_change_events",
            "collector_session_resets",
        )
        for label in count_fields:
            value = getattr(internet, label)
            if value is not None and (not _is_number(value) or value < 0):
                errors.append(f"internet.{label} must be >= 0, got {value!r}")
        if internet.mrai is not None and (
            not _is_number(internet.mrai) or internet.mrai < 0
        ):
            errors.append(
                f"internet.mrai must be >= 0, got {internet.mrai!r}"
            )
        if internet.delivery_batching is not None and not isinstance(
            internet.delivery_batching, bool
        ):
            errors.append(
                f"internet.delivery_batching must be a boolean,"
                f" got {internet.delivery_batching!r}"
            )
        if internet.archive_policy is not None:
            from repro.pipeline.sinks import parse_archive_policy

            try:
                parse_archive_policy(internet.archive_policy)
            except ValueError as exc:
                errors.append(f"internet.archive_policy: {exc}")
        if internet.collector_names is not None:
            if not internet.collector_names:
                errors.append("internet.collector_names must not be empty")
            for name in internet.collector_names:
                if not isinstance(name, str) or not name.strip():
                    errors.append(
                        f"internet.collector_names entries must be"
                        f" non-empty strings, got {name!r}"
                    )
        if internet.vendor_mix is not None:
            if not internet.vendor_mix:
                errors.append("internet.vendor_mix must not be empty")
            for entry in internet.vendor_mix:
                try:
                    vendor, weight = entry
                except (TypeError, ValueError):
                    errors.append(
                        f"internet.vendor_mix entries must be"
                        f" (vendor, weight) pairs, got {entry!r}"
                    )
                    continue
                _check_vendor_name(vendor, "internet.vendor_mix", errors)
                if not _is_number(weight) or weight <= 0:
                    errors.append(
                        f"internet.vendor_mix weight for {vendor!r} must be"
                        f" > 0, got {weight!r}"
                    )


    def _check_mrt(self, mrt: "MrtSpec", errors: "List[str]") -> None:
        if mrt.path is not None and (
            not isinstance(mrt.path, str) or not mrt.path.strip()
        ):
            errors.append(
                f"mrt.path must be a non-empty string or None,"
                f" got {mrt.path!r}"
            )
        if not isinstance(mrt.collector, str) or not mrt.collector.strip():
            errors.append(
                f"mrt.collector must be a non-empty string,"
                f" got {mrt.collector!r}"
            )
        if not isinstance(mrt.tolerant, bool):
            errors.append(
                f"mrt.tolerant must be a boolean, got {mrt.tolerant!r}"
            )
        if mrt.decode_workers is not None and (
            not isinstance(mrt.decode_workers, int)
            or isinstance(mrt.decode_workers, bool)
            or mrt.decode_workers < 1
        ):
            errors.append(
                f"mrt.decode_workers must be an integer >= 1 or None,"
                f" got {mrt.decode_workers!r}"
            )

    @staticmethod
    def _effective_fraction(internet: InternetSpec, label: str) -> float:
        """The fraction as the engine will materialize it: the spec
        override when set, else the base scale's default."""
        value = getattr(internet, label)
        if value is not None:
            return value
        from repro.workloads.internet import InternetConfig

        if internet.scale == "small":
            base = InternetConfig.small()
        else:
            base = InternetConfig.mar20()
        return getattr(base, label)


def _check_vendor_name(vendor: str, where: str, errors: "List[str]") -> None:
    from repro.vendors.profiles import profile_by_name

    if not isinstance(vendor, str):
        errors.append(
            f"vendor names in {where} must be strings, got {vendor!r}"
        )
        return
    try:
        profile_by_name(vendor)
    except KeyError:
        errors.append(
            f"unknown vendor {vendor!r} in {where}; use a profile name"
            " or alias such as cisco, ios-xr, junos, bird, bird2"
        )
