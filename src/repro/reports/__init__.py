"""Report rendering used by benchmarks and examples."""

from repro.reports.render import (
    render_table,
    render_kv_table,
    render_series,
    render_stacked_counts,
    format_share,
)

__all__ = [
    "render_table",
    "render_kv_table",
    "render_series",
    "render_stacked_counts",
    "format_share",
]
