"""Plain-text rendering of tables and series.

The benchmark harness prints paper-shaped artifacts (the same rows as
Table 1/2, the same series as Figures 2-6) to stdout; these helpers
keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_share(share: "float | None") -> str:
    """Render a fraction as the paper's percentage style (``33.7%``)."""
    if share is None:
        return "-"
    return f"{share * 100:.1f}%"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    materialized: List[List[str]] = [
        [str(cell) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append(
            "  ".join(
                cell.ljust(widths[index]) for index, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def render_kv_table(
    pairs: Iterable["tuple[str, str]"], *, title: Optional[str] = None
) -> str:
    """Render label/value pairs (Table 1 style)."""
    return render_table(("metric", "value"), pairs, title=title)


def render_series(
    points: Iterable["tuple[str, float]"],
    *,
    title: Optional[str] = None,
    value_format: str = "{:.3f}",
) -> str:
    """Render an (x, y) series as two aligned columns."""
    rows = [(x, value_format.format(y)) for x, y in points]
    return render_table(("x", "value"), rows, title=title)


def render_stacked_counts(
    labels: Sequence[str],
    stacks: "dict[str, Sequence[int]]",
    *,
    title: Optional[str] = None,
) -> str:
    """Render a stacked-bar-like table: one row per label, one column
    per stack key (Figure 2/3 style)."""
    keys = list(stacks)
    headers = ["x"] + keys + ["total"]
    rows = []
    for index, label in enumerate(labels):
        values = [stacks[key][index] for key in keys]
        rows.append([label] + values + [sum(values)])
    return render_table(headers, rows, title=title)
