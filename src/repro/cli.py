"""Command-line tools.

Four subcommands mirror the ways people use the library:

* ``repro lab [--vendor VENDOR]`` — run the §3 lab experiment matrix;
* ``repro classify FILE [--collector NAME]`` — classify announcement
  types in an MRT update archive (real RouteViews/RIS files work);
* ``repro simulate [--scale small|mar20] [--seed N]`` — simulate one
  measurement day and print Table 1 + Table 2;
* ``repro scenario list|run|sweep`` — the declarative scenario engine:
  browse the registry, run one named scenario (or a JSON spec file),
  or run a multi-seed sweep in parallel with result caching;
* ``repro check`` — the contract linter (``src/repro/devtools/``):
  static analysis enforcing the determinism, hot-path and
  output-discipline invariants.

Output discipline (enforced by ``repro check``'s IO001): stdout
belongs to the designated emitters — :func:`_emit` for human tables,
:func:`_emit_json` for machine JSON — so a ``--json`` run's stdout is
always one parseable document; everything diagnostic says
``file=sys.stderr``.

Runs as ``repro`` (console script), ``python -m repro`` or
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis import (
    build_table1,
    build_table2,
    observations_from_collector,
    observations_from_mrt,
)
from repro.reports import format_share, render_kv_table, render_table
from repro.vendors import ALL_PROFILES, profile_by_name


def _emit(*values, sep: str = " ", end: str = "\n") -> None:
    """The designated human-output stdout emitter.

    Every non-JSON stdout write in this module routes through here,
    so "what can write to stdout" is two grep-able functions instead
    of every call site (IO001 in :mod:`repro.devtools`).
    """
    print(*values, sep=sep, end=end)


def _emit_json(document) -> None:
    """The designated machine-JSON stdout emitter.

    Accepts a pre-serialized JSON string or a JSON-able payload; a
    ``--json`` run's stdout is exactly one document emitted here.
    """
    import json

    if not isinstance(document, str):
        document = json.dumps(document, indent=2, sort_keys=True)
    print(document)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for 'Keep your Communities Clean'"
            " (CoNEXT 2020)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    lab = subparsers.add_parser(
        "lab", help="run the lab experiment matrix (paper §3)"
    )
    lab.add_argument(
        "--vendor",
        help="restrict to one vendor (e.g. junos, cisco, bird)",
        default=None,
    )

    classify = subparsers.add_parser(
        "classify", help="classify announcement types in an MRT file"
    )
    classify.add_argument("file", help="MRT update archive path")
    classify.add_argument(
        "--collector", default="unknown", help="collector label"
    )

    simulate = subparsers.add_parser(
        "simulate", help="simulate one measurement day"
    )
    simulate.add_argument(
        "--scale",
        choices=("small", "mar20"),
        default="small",
        help="topology scale (default: small)",
    )
    simulate.add_argument(
        "--seed", type=int, default=None, help="override the RNG seed"
    )

    scenario = subparsers.add_parser(
        "scenario", help="declarative scenario engine"
    )
    scenario_sub = scenario.add_subparsers(
        dest="scenario_command", required=True
    )

    scenario_list = scenario_sub.add_parser(
        "list", help="list the registered scenarios"
    )
    scenario_list.add_argument(
        "--kind",
        choices=("lab", "internet", "mrt"),
        default=None,
        help="restrict to one scenario kind",
    )

    scenario_run = scenario_sub.add_parser(
        "run", help="run one scenario and print its metrics"
    )
    scenario_run.add_argument(
        "name",
        nargs="?",
        default=None,
        help="registered scenario name (or use --spec-file)",
    )
    scenario_run.add_argument(
        "--spec-file",
        default=None,
        help="run a JSON scenario spec instead of a registry entry",
    )
    scenario_run.add_argument(
        "--seed", type=int, default=None, help="override the spec seed"
    )
    scenario_run.add_argument(
        "--input",
        default=None,
        help="MRT archive path for mrt-replay scenarios",
    )
    scenario_run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "decode the MRT archive on N worker processes (sharded"
            " by session, merged bit-identically; mrt scenarios only)"
        ),
    )
    scenario_run.add_argument(
        "--json",
        action="store_true",
        help="emit the full result as JSON instead of tables",
    )
    scenario_run.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "enable the instrumentation registry for this run and"
            " report phase times, counters and memo hit rates"
        ),
    )
    scenario_run.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the metrics report as JSON to FILE (implies --metrics)",
    )
    scenario_run.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="append a JSONL run journal (start/heartbeat/finish) to FILE",
    )
    scenario_run.add_argument(
        "--heartbeat-every",
        type=int,
        default=None,
        metavar="N",
        help="journal/progress heartbeat cadence in observations",
    )
    scenario_run.add_argument(
        "--progress",
        action="store_true",
        help="print heartbeat progress lines to stderr while running",
    )
    scenario_run.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print a hot-spot summary to stderr",
    )

    scenario_sweep = scenario_sub.add_parser(
        "sweep", help="run a multi-seed sweep in parallel"
    )
    scenario_sweep.add_argument(
        "name",
        nargs="?",
        default=None,
        help="registered scenario name (omit with --resume)",
    )
    scenario_sweep.add_argument(
        "--seeds",
        default=None,
        help="comma-separated seed list (e.g. 1,2,3)",
    )
    scenario_sweep.add_argument(
        "--seed-count",
        type=int,
        default=4,
        help="number of consecutive seeds when --seeds is absent",
    )
    scenario_sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: all cores)",
    )
    scenario_sweep.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (re-runs are served from cache)",
    )
    scenario_sweep.add_argument(
        "--backend",
        choices=("serial", "threads", "processes", "queue"),
        default="processes",
        help="execution backend for cache misses (default: processes)",
    )
    scenario_sweep.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help=(
            "run only shard I of N (deterministic spec-hash partition;"
            " cooperating invocations share --cache-dir)"
        ),
    )
    scenario_sweep.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help=(
            "shared work directory for --backend queue (default:"
            " <cache-dir>/queue); N invocations pointed at the same"
            " directory drain the sweep cooperatively, each cell"
            " claimed exactly once by atomic rename"
        ),
    )
    scenario_sweep.add_argument(
        "--stale-claim",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "with --backend queue: requeue a claim whose lease"
            " heartbeat has been silent this long (default 300;"
            " 0 or negative disables requeue entirely)"
        ),
    )
    scenario_sweep.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="per-spec retries before a cell is reported failed",
    )
    scenario_sweep.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per cell; a cell running longer is"
            " reaped (processes) or abandoned (threads), charged one"
            " attempt, and retried while --max-retries allows"
        ),
    )
    scenario_sweep.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "base of the deterministic exponential backoff between"
            " retries of a failing cell (default 0.1s: 0.1, 0.2,"
            " 0.4, ...)"
        ),
    )
    scenario_sweep.add_argument(
        "--pool-rebuilds",
        type=int,
        default=None,
        metavar="N",
        help=(
            "times a pool broken by a dying worker is rebuilt wholesale"
            " (unreplied cells resubmitted, nobody charged) before"
            " remaining cells run isolated one-per-pool (default 1)"
        ),
    )
    scenario_sweep.add_argument(
        "--speculate",
        action="store_true",
        help=(
            "duplicate straggler cells onto idle lanes and let the"
            " first finisher win (safe: payloads are deterministic and"
            " cache writes are idempotent by digest)"
        ),
    )
    scenario_sweep.add_argument(
        "--resume",
        action="store_true",
        help=(
            "finish the sweep recorded in --cache-dir's sweep.json"
            " manifest (recomputes only missing/failed cells)"
        ),
    )
    scenario_sweep.add_argument(
        "--json",
        action="store_true",
        help="emit all results as JSON instead of tables",
    )
    scenario_sweep.add_argument(
        "--status",
        action="store_true",
        help=(
            "render the live status of the sweep recorded in"
            " --cache-dir (done/running/failed/lost/retried cells,"
            " rates, stragglers) and exit without running anything"
        ),
    )
    scenario_sweep.add_argument(
        "--lost-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "with --status: journal silence past which a running cell"
            " is shown as lost (default: 2x the cell's own heartbeat"
            " interval)"
        ),
    )
    scenario_sweep.add_argument(
        "--progress",
        action="store_true",
        help="print one line to stderr as each cell completes",
    )

    doctor = subparsers.add_parser(
        "doctor",
        help="scan a cache/queue dir for crash debris (and repair it)",
    )
    doctor.add_argument(
        "dir",
        help="cache dir, queue work dir, or a tree holding both",
    )
    doctor.add_argument(
        "--repair",
        action="store_true",
        help=(
            "fix what was found: remove orphan temporaries and"
            " dangling seen markers, requeue zombie claims,"
            " quarantine corrupt files (and rebuild the manifest"
            " from intact cache entries)"
        ),
    )
    doctor.add_argument(
        "--json",
        action="store_true",
        help="emit the findings as JSON instead of a table",
    )
    doctor.add_argument(
        "--grace",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "age past which a live-pid .tmp file counts as an orphan"
            " (default 300; dead-pid temporaries are always orphans)"
        ),
    )
    doctor.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "heartbeat silence past which a queue claim is a zombie"
            " (default 300, matching the sweep's --stale-claim)"
        ),
    )

    from repro.devtools.cli import add_check_parser

    add_check_parser(subparsers)
    return parser


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = build_parser().parse_args(argv)
    try:
        if arguments.command == "lab":
            return _run_lab(arguments)
        if arguments.command == "classify":
            return _run_classify(arguments)
        if arguments.command == "scenario":
            return _run_scenario_command(arguments)
        if arguments.command == "doctor":
            return _run_doctor(arguments)
        if arguments.command == "check":
            from repro.devtools.cli import run_check_command

            return run_check_command(arguments)
        return _run_simulate(arguments)
    except BrokenPipeError:
        # Piping into `head` closes stdout early; exit quietly instead
        # of tracebacking (and keep the interpreter's shutdown flush
        # from re-raising).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


def _run_lab(arguments) -> int:
    from repro.simulator import run_all_experiments

    if arguments.vendor is not None:
        try:
            vendors = (profile_by_name(arguments.vendor),)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    else:
        vendors = ALL_PROFILES
    results = run_all_experiments(vendors)
    _emit(
        render_table(
            ("exp", "vendor", "Y1->X1", "collector", "behavior"),
            (result.summary_row() for result in results),
            title="Lab behavior matrix (paper §3)",
        )
    )
    return 0


def _run_classify(arguments) -> int:
    from repro.mrt import MRTReader

    try:
        handle = open(arguments.file, "rb")
    except OSError as exc:
        print(f"cannot open {arguments.file}: {exc}", file=sys.stderr)
        return 2
    with handle:
        reader = MRTReader(handle, tolerant=True)
        observations = list(
            observations_from_mrt(reader, arguments.collector)
        )
    if not observations:
        print("no update messages found", file=sys.stderr)
        return 1
    _print_day_tables(observations)
    return 0


def _run_simulate(arguments) -> int:
    from repro.workloads import InternetConfig, InternetModel

    if arguments.scale == "small":
        config = InternetConfig.small()
    else:
        config = InternetConfig.mar20()
    if arguments.seed is not None:
        config.seed = arguments.seed
    day = InternetModel(config).run()
    observations = []
    for collector in day.collectors():
        observations.extend(observations_from_collector(collector))
    observations.sort(key=lambda obs: obs.timestamp)
    _print_day_tables(observations, beacons=set(day.beacon_prefixes))
    return 0


def _run_scenario_command(arguments) -> int:
    if arguments.scenario_command == "list":
        return _scenario_list(arguments)
    if arguments.scenario_command == "run":
        return _scenario_run(arguments)
    return _scenario_sweep(arguments)


def _scenario_list(arguments) -> int:
    from repro.scenarios import all_scenarios

    rows = [
        (spec.name, spec.kind, str(spec.seed), spec.description)
        for spec in all_scenarios()
        if arguments.kind is None or spec.kind == arguments.kind
    ]
    _emit(
        render_table(
            ("name", "kind", "seed", "description"),
            rows,
            title=f"Registered scenarios ({len(rows)})",
        )
    )
    return 0


def _load_run_spec(arguments) -> "tuple[object, Optional[str]]":
    """Resolve the spec for ``scenario run``; returns (spec, error)."""
    from dataclasses import replace

    from repro.scenarios import get_scenario, spec_from_json

    if (arguments.name is None) == (arguments.spec_file is None):
        return None, "provide exactly one of NAME or --spec-file"
    if arguments.spec_file is not None:
        try:
            with open(arguments.spec_file, "r", encoding="utf-8") as handle:
                spec = spec_from_json(handle.read())
        except OSError as exc:
            return None, f"cannot open {arguments.spec_file}: {exc}"
        except ValueError as exc:
            return None, str(exc)
    else:
        spec = get_scenario(arguments.name)
    if arguments.seed is not None:
        spec = replace(spec, seed=arguments.seed)
    if getattr(arguments, "input", None) is not None:
        from repro.scenarios import MrtSpec

        if spec.kind != "mrt":
            return None, (
                f"--input only applies to mrt scenarios;"
                f" {spec.name!r} is kind {spec.kind!r}"
            )
        section = spec.mrt if spec.mrt is not None else MrtSpec()
        spec = replace(
            spec, mrt=replace(section, path=arguments.input)
        )
    if getattr(arguments, "workers", None) is not None:
        from repro.scenarios import MrtSpec

        if spec.kind != "mrt":
            return None, (
                f"--workers only applies to mrt scenarios;"
                f" {spec.name!r} is kind {spec.kind!r}"
            )
        section = spec.mrt if spec.mrt is not None else MrtSpec()
        spec = replace(
            spec, mrt=replace(section, decode_workers=arguments.workers)
        )
    return spec, None


def _scenario_run(arguments) -> int:
    import json

    from repro import obs
    from repro.scenarios import (
        ScenarioValidationError,
        UnknownScenarioError,
        result_to_json,
        run_scenario,
    )

    want_metrics = arguments.metrics or arguments.metrics_out is not None
    journal = None
    try:
        spec, error = _load_run_spec(arguments)
        if error is not None:
            print(error, file=sys.stderr)
            return 2

        on_heartbeat = None
        if arguments.progress:
            def on_heartbeat(payload) -> None:
                # Progress is human chatter: stderr only, so a --json
                # run's stdout stays one parseable document.
                print(
                    f"[{spec.name}] {payload['observations']:,}"
                    f" observations @"
                    f" {payload['rate_per_second']:,.0f}/s,"
                    f" peak rss {payload['peak_rss_kb']:,} KiB",
                    file=sys.stderr,
                )

        if arguments.journal is not None:
            journal = obs.RunJournal(arguments.journal)
            journal.write("start", name=spec.name)

        def execute():
            return run_scenario(
                spec,
                journal=journal,
                heartbeat_every=arguments.heartbeat_every,
                on_heartbeat=on_heartbeat,
            )

        previous = obs.set_metrics_enabled(True) if want_metrics else None
        try:
            if arguments.profile:
                result, profile_text = obs.profile_call(execute)
                print(profile_text, file=sys.stderr)
            else:
                result = execute()
        finally:
            if want_metrics:
                obs.set_metrics_enabled(previous)
    except (UnknownScenarioError, ScenarioValidationError) as exc:
        if journal is not None:
            journal.write("fail", error=str(exc))
            journal.close()
        message = exc.args[0] if exc.args else str(exc)
        print(message, file=sys.stderr)
        return 2
    if journal is not None:
        journal.write("finish", stopped_early=result.stopped_early)
        journal.close()
    if arguments.metrics_out is not None:
        with open(arguments.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(result.metrics_report, indent=2, sort_keys=True)
            )
            handle.write("\n")
    if arguments.json:
        _emit_json(result_to_json(result, indent=2))
        return 0
    _emit(
        f"scenario {result.name} [{spec.kind}]"
        f" seed={spec.seed} hash={result.spec_hash}"
    )
    _print_scenario_metrics(result)
    stats = result.reader_stats
    if stats:
        _emit(
            f"\nmrt reader: {stats.get('records', 0)} records decoded,"
            f" {stats.get('skipped_records', 0)} skipped (unmodeled"
            f" type), {stats.get('error_records', 0)} damaged-dropped"
        )
    if result.shard_stats:
        rows = [
            (
                str(row.get("shard", index)),
                f"{row.get('records', 0):,}",
                f"{row.get('observations', 0):,}",
                f"{row.get('skipped_records', 0):,}",
                f"{row.get('error_records', 0):,}",
            )
            for index, row in enumerate(result.shard_stats)
        ]
        _emit()
        _emit(
            render_table(
                ("shard", "records", "observations", "skipped", "errors"),
                rows,
                title="Parallel decode shards",
            )
        )
    for name, path in sorted(result.spill_paths.items()):
        _emit(f"\nspilled archive [{name}]: {path}")
    if result.metrics_report:
        _print_metrics_report(result.metrics_report)
    return 0


def _print_metrics_report(report: dict) -> None:
    """Human rendering of a run's instrumentation report."""
    phases = report.get("phases", {})
    if phases:
        rows = [(name, f"{seconds:.3f}s") for name, seconds in phases.items()]
        _emit()
        _emit(render_table(("phase", "wall"), rows, title="Phase timing"))
    counters = report.get("counters", {})
    gauges = report.get("gauges", {})
    if counters or gauges:
        rows = [
            (name, _format_metric_value(value))
            for name, value in list(counters.items()) + list(gauges.items())
        ]
        _emit()
        _emit(render_kv_table(rows, title="Instrumentation"))
    memo = report.get("memo", {})
    busy = {
        name: stats
        for name, stats in memo.items()
        if stats.get("hits") or stats.get("misses")
    }
    if busy:
        rows = [
            (
                name,
                f"{stats['hits']:,}",
                f"{stats['misses']:,}",
                f"{stats['evictions']:,}",
                format_share(stats.get("hit_rate")),
            )
            for name, stats in sorted(busy.items())
        ]
        _emit()
        _emit(
            render_table(
                ("memo", "hits", "misses", "evictions", "hit rate"),
                rows,
                title="Memo effectiveness",
            )
        )


def _run_doctor(arguments) -> int:
    # Imported directly (not via the faults package __init__) so the
    # fault-injection fast path stays free of doctor/runner imports.
    from repro.faults import doctor as doctor_module

    kwargs = {}
    if arguments.grace is not None:
        kwargs["grace_seconds"] = arguments.grace
    if arguments.lease is not None:
        kwargs["lease_seconds"] = arguments.lease
    try:
        report = doctor_module.run_doctor(
            arguments.dir, repair=arguments.repair, **kwargs
        )
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if arguments.json:
        _emit_json(report.to_dict())
    elif report.clean:
        _emit(f"doctor: {report.root}: clean")
    else:
        verb = "repaired" if arguments.repair else "found"
        _emit(
            f"doctor: {report.root}: {verb}"
            f" {len(report.findings)} finding(s)"
        )
        for finding in report.findings:
            status = (
                "repaired"
                if finding.repaired
                else ("unrepaired" if arguments.repair else "found")
            )
            _emit(
                f"  [{finding.kind}] {finding.path}"
                f"\n    {finding.detail}"
                f"\n    repair: {finding.repair} ({status})"
            )
    if report.clean:
        return 0
    if arguments.repair and all(
        finding.repaired for finding in report.findings
    ):
        return 0
    return 1


def _scenario_sweep(arguments) -> int:
    import json

    from repro.scenarios import (
        ScenarioValidationError,
        UnknownScenarioError,
        expand_seeds,
        get_scenario,
        make_backend,
        parse_shard,
        result_to_json,
        resume_sweep,
        run_sweep,
    )

    if arguments.status:
        return _scenario_sweep_status(arguments)

    on_outcome = None
    if arguments.progress:
        def on_outcome(outcome) -> None:
            state = "done" if outcome.ok else "failed"
            wall = (
                f" in {outcome.wall_seconds:.1f}s"
                if outcome.wall_seconds is not None
                else ""
            )
            retry = (
                f" ({outcome.attempts} attempts)"
                if outcome.attempts > 1
                else ""
            )
            print(
                f"[sweep] {outcome.job.name}: {state}{wall}{retry}",
                file=sys.stderr,
            )

    try:
        shard = (
            parse_shard(arguments.shard)
            if arguments.shard is not None
            else None
        )
        queue_dir = arguments.queue_dir
        if arguments.backend == "queue" and queue_dir is None:
            if arguments.cache_dir is None:
                print(
                    "--backend queue needs --queue-dir (or --cache-dir"
                    " to default it to <cache-dir>/queue)",
                    file=sys.stderr,
                )
                return 2
            queue_dir = os.path.join(arguments.cache_dir, "queue")
        backend_kwargs = {}
        if arguments.stale_claim is not None:
            # 0 or negative = explicitly disable stale-claim requeue;
            # unspecified keeps the backend's armed default.
            backend_kwargs["stale_claim_seconds"] = (
                arguments.stale_claim
                if arguments.stale_claim > 0
                else None
            )
        backend = make_backend(
            arguments.backend,
            shard=shard,
            queue_dir=queue_dir,
            **backend_kwargs,
        )
        if arguments.resume:
            if arguments.name is not None:
                print(
                    "--resume re-derives the sweep from the manifest;"
                    " drop the scenario name",
                    file=sys.stderr,
                )
                return 2
            if arguments.cache_dir is None:
                print("--resume requires --cache-dir", file=sys.stderr)
                return 2
            title = f"Resumed sweep from {arguments.cache_dir}"
            report = resume_sweep(
                arguments.cache_dir,
                workers=arguments.workers,
                backend=backend,
                max_retries=arguments.max_retries,
                on_outcome=on_outcome,
                cell_timeout=arguments.cell_timeout,
                retry_backoff=arguments.retry_backoff,
                pool_rebuilds=arguments.pool_rebuilds,
                speculate=arguments.speculate,
            )
        else:
            if arguments.name is None:
                print(
                    "provide a scenario name (or --resume with"
                    " --cache-dir)",
                    file=sys.stderr,
                )
                return 2
            base = get_scenario(arguments.name)
            if arguments.seeds is not None:
                seeds = [
                    int(part)
                    for part in arguments.seeds.split(",")
                    if part.strip()
                ]
            else:
                seeds = list(
                    range(base.seed, base.seed + arguments.seed_count)
                )
            if not seeds:
                print("no seeds to sweep", file=sys.stderr)
                return 2
            specs = expand_seeds(base, seeds)
            title = f"Sweep of {arguments.name}: {len(seeds)} seeds"
            report = run_sweep(
                specs,
                workers=arguments.workers,
                cache_dir=arguments.cache_dir,
                backend=backend,
                max_retries=arguments.max_retries,
                on_outcome=on_outcome,
                cell_timeout=arguments.cell_timeout,
                retry_backoff=arguments.retry_backoff,
                pool_rebuilds=arguments.pool_rebuilds,
                speculate=arguments.speculate,
            )
    except (UnknownScenarioError, ScenarioValidationError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(message, file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"bad sweep arguments: {exc}", file=sys.stderr)
        return 2
    for failure in report.failures:
        print(failure.describe(), file=sys.stderr)
    if arguments.json:
        # Stable schema: always the list of completed results.
        # Failures go to stderr/exit code here and, with --cache-dir,
        # into the sweep.json manifest for machine consumption.
        payload = [
            json.loads(result_to_json(result)) for result in report.results
        ]
        _emit_json(payload)
        return 1 if report.failures else 0
    rows = [
        (result.name, result.spec_hash, _sweep_summary(result))
        for result in report.results
    ]
    _emit(
        render_table(
            ("scenario", "spec hash", "summary"),
            rows,
            title=f"{title}, {report.workers} worker(s)",
        )
    )
    _emit(
        f"cache: {report.cache_hits} hit(s), {report.cache_misses}"
        f" miss(es); backend {report.backend};"
        f" wall-clock {report.elapsed_seconds:.2f}s"
    )
    if report.cell_wall_seconds:
        median = report.cell_seconds_percentile(0.5)
        slowest = report.cell_seconds_percentile(1.0)
        _emit(
            f"cells: {report.total_cell_seconds():.2f}s compute total;"
            f" median {median:.2f}s, slowest {slowest:.2f}s;"
            f" {report.retried_cells()} retried"
        )
    if report.skipped:
        _emit(
            f"cooperating: {report.skipped} cell(s) left to other"
            f" invocations (shared cache converges once every shard or"
            f" queue claimant has run)"
        )
    if report.failures:
        if report.cache_dir is not None:
            advice = (
                f"rerun with --resume --cache-dir {report.cache_dir}"
                " to retry only those"
            )
        else:
            advice = (
                "rerun with --cache-dir to make the sweep resumable"
            )
        _emit(f"{len(report.failures)} cell(s) failed; {advice}")
        return 1
    return 0


def _scenario_sweep_status(arguments) -> int:
    """``repro scenario sweep --status``: the live-status view.

    Reads only the manifest and journals under ``--cache-dir`` — it
    never touches a running sweep, so it is safe to point at one
    mid-flight (or at a dead one, post-mortem).
    """
    import json

    from repro.obs import collect_sweep_status, render_sweep_status

    if arguments.cache_dir is None:
        print("--status requires --cache-dir", file=sys.stderr)
        return 2
    status = collect_sweep_status(
        arguments.cache_dir, lost_after=arguments.lost_after
    )
    if not status.cells:
        print(
            f"no sweep manifest found in {arguments.cache_dir}",
            file=sys.stderr,
        )
        return 2
    if arguments.json:
        # Machine payload on stdout, like every other --json mode.
        _emit_json(status.as_dict())
    else:
        # Status is a monitoring view: keep it on stderr so watching a
        # sweep never contaminates stdout captures/pipes.
        print(render_sweep_status(status), file=sys.stderr)
    return 0


def _sweep_summary(result) -> str:
    """One-line headline metric for a sweep row."""
    counts = result.metrics.get("update_counts")
    if counts is not None:
        return (
            f"{counts['announcements']} ann /"
            f" {counts['withdrawals']} wd"
        )
    matrix = result.metrics.get("lab_matrix")
    if matrix is not None:
        return (
            f"{len(matrix['rows'])} cells,"
            f" {matrix['duplicates_at_collector']} duplicate(s)"
        )
    return ", ".join(sorted(result.metrics)) or "-"


def _print_scenario_metrics(result) -> None:
    """Render each collector's metrics as paper-shaped tables."""
    for name in result.spec.collectors:
        metrics = result.metrics.get(name, {})
        _emit()
        if name == "lab_matrix":
            _emit(
                render_table(
                    metrics["headers"],
                    metrics["rows"],
                    title="Lab behavior matrix (paper §3)",
                )
            )
            continue
        if name == "table2":
            rows = [
                (code, format_share(share))
                for code, share in metrics["full_shares"].items()
            ]
            _emit(
                render_table(
                    ("type", "share"),
                    rows,
                    title="Table 2: announcement types",
                )
            )
            if metrics.get("beacon_shares"):
                beacon_rows = [
                    (code, format_share(share))
                    for code, share in metrics["beacon_shares"].items()
                ]
                _emit(
                    render_table(
                        ("type", "share"),
                        beacon_rows,
                        title="Table 2: beacon subset",
                    )
                )
            continue
        rows = [
            (key, _format_metric_value(value))
            for key, value in metrics.items()
            if not isinstance(value, (dict, list))
        ]
        for key, value in metrics.items():
            if isinstance(value, dict):
                rows.extend(
                    (f"{key}.{sub}", _format_metric_value(item))
                    for sub, item in value.items()
                    if not isinstance(item, (dict, list))
                )
        _emit(render_kv_table(rows, title=f"Collector: {name}"))


def _format_metric_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _print_day_tables(observations, *, beacons=None) -> None:
    table1 = build_table1(observations)
    _emit(render_kv_table(table1.as_rows(), title="Table 1: overview"))
    _emit()
    table2 = build_table2(observations, beacons)
    rows = [
        (
            code,
            description,
            format_share(full),
            format_share(beacon) if beacon is not None else "-",
        )
        for code, description, full, beacon in table2.as_rows()
    ]
    _emit(
        render_table(
            ("type", "observed changes", "share", "beacons"),
            rows,
            title="Table 2: announcement types",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
