"""Command-line tools.

Three subcommands mirror the three ways people use the library:

* ``repro lab [--vendor VENDOR]`` — run the §3 lab experiment matrix;
* ``repro classify FILE [--collector NAME]`` — classify announcement
  types in an MRT update archive (real RouteViews/RIS files work);
* ``repro simulate [--scale small|mar20] [--seed N]`` — simulate one
  measurement day and print Table 1 + Table 2.

Installed as ``python -m repro.cli`` (no console-script entry point is
registered, keeping the offline install dependency-free).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import (
    build_table1,
    build_table2,
    observations_from_collector,
    observations_from_mrt,
)
from repro.reports import format_share, render_kv_table, render_table
from repro.vendors import ALL_PROFILES, profile_by_name


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for 'Keep your Communities Clean'"
            " (CoNEXT 2020)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    lab = subparsers.add_parser(
        "lab", help="run the lab experiment matrix (paper §3)"
    )
    lab.add_argument(
        "--vendor",
        help="restrict to one vendor (e.g. junos, cisco, bird)",
        default=None,
    )

    classify = subparsers.add_parser(
        "classify", help="classify announcement types in an MRT file"
    )
    classify.add_argument("file", help="MRT update archive path")
    classify.add_argument(
        "--collector", default="unknown", help="collector label"
    )

    simulate = subparsers.add_parser(
        "simulate", help="simulate one measurement day"
    )
    simulate.add_argument(
        "--scale",
        choices=("small", "mar20"),
        default="small",
        help="topology scale (default: small)",
    )
    simulate.add_argument(
        "--seed", type=int, default=None, help="override the RNG seed"
    )
    return parser


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = build_parser().parse_args(argv)
    if arguments.command == "lab":
        return _run_lab(arguments)
    if arguments.command == "classify":
        return _run_classify(arguments)
    return _run_simulate(arguments)


def _run_lab(arguments) -> int:
    from repro.simulator import run_all_experiments

    if arguments.vendor is not None:
        try:
            vendors = (profile_by_name(arguments.vendor),)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    else:
        vendors = ALL_PROFILES
    results = run_all_experiments(vendors)
    print(
        render_table(
            ("exp", "vendor", "Y1->X1", "collector", "behavior"),
            (result.summary_row() for result in results),
            title="Lab behavior matrix (paper §3)",
        )
    )
    return 0


def _run_classify(arguments) -> int:
    from repro.mrt import MRTReader

    try:
        handle = open(arguments.file, "rb")
    except OSError as exc:
        print(f"cannot open {arguments.file}: {exc}", file=sys.stderr)
        return 2
    with handle:
        reader = MRTReader(handle, tolerant=True)
        observations = list(
            observations_from_mrt(reader, arguments.collector)
        )
    if not observations:
        print("no update messages found", file=sys.stderr)
        return 1
    _print_day_tables(observations)
    return 0


def _run_simulate(arguments) -> int:
    from repro.workloads import InternetConfig, InternetModel

    if arguments.scale == "small":
        config = InternetConfig.small()
    else:
        config = InternetConfig.mar20()
    if arguments.seed is not None:
        config.seed = arguments.seed
    day = InternetModel(config).run()
    observations = []
    for collector in day.collectors():
        observations.extend(observations_from_collector(collector))
    observations.sort(key=lambda obs: obs.timestamp)
    _print_day_tables(observations, beacons=set(day.beacon_prefixes))
    return 0


def _print_day_tables(observations, *, beacons=None) -> None:
    table1 = build_table1(observations)
    print(render_kv_table(table1.as_rows(), title="Table 1: overview"))
    print()
    table2 = build_table2(observations, beacons)
    rows = [
        (
            code,
            description,
            format_share(full),
            format_share(beacon) if beacon is not None else "-",
        )
        for code, description, full, beacon in table2.as_rows()
    ]
    print(
        render_table(
            ("type", "observed changes", "share", "beacons"),
            rows,
            title="Table 2: announcement types",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
