"""AS_PATH attribute model.

The announcement classifier of the paper (§5) distinguishes three
relationships between consecutive AS paths on a stream:

* changed (different AS sequence) — types ``pc`` / ``pn``;
* changed *only by prepending* (the ordered set of distinct ASes is
  equal but repetition counts differ) — types ``xc`` / ``xn``;
* identical — types ``nc`` / ``nn``.

:class:`ASPath` therefore exposes :meth:`distinct_ases`,
:meth:`without_prepending` and :meth:`is_prepend_variant_of` alongside
the usual wire encoding with AS_SEQUENCE / AS_SET segments (RFC 4271
§4.3, 4-byte ASNs per RFC 6793).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Sequence

from repro.bgp.errors import AttributeError_
from repro.netbase.asn import ASN


class SegmentType(enum.IntEnum):
    """AS_PATH segment type codes."""

    AS_SET = 1
    AS_SEQUENCE = 2
    AS_CONFED_SEQUENCE = 3
    AS_CONFED_SET = 4


class PathSegment:
    """One AS_PATH segment: an ordered sequence or an unordered set."""

    __slots__ = ("_kind", "_asns")

    def __init__(self, kind: SegmentType, asns: Iterable[int]):
        self._kind = SegmentType(kind)
        self._asns = tuple(ASN(asn) for asn in asns)
        if not self._asns:
            raise AttributeError_("empty AS_PATH segment")
        if len(self._asns) > 255:
            raise AttributeError_("AS_PATH segment longer than 255 ASNs")

    @property
    def kind(self) -> SegmentType:
        """Segment type (sequence or set)."""
        return self._kind

    @property
    def asns(self) -> tuple:
        """The member ASNs in wire order."""
        return self._asns

    @property
    def is_set(self) -> bool:
        """True for AS_SET / AS_CONFED_SET segments."""
        return self._kind in (SegmentType.AS_SET, SegmentType.AS_CONFED_SET)

    def path_length_contribution(self) -> int:
        """RFC 4271 §9.1.2.2: a set counts as 1 hop, a sequence as N."""
        return 1 if self.is_set else len(self._asns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathSegment):
            return NotImplemented
        if self._kind != other._kind:
            return False
        if self.is_set:
            return frozenset(self._asns) == frozenset(other._asns)
        return self._asns == other._asns

    def __hash__(self) -> int:
        members = frozenset(self._asns) if self.is_set else self._asns
        return hash((self._kind, members))

    def __repr__(self) -> str:
        return f"PathSegment({self._kind.name}, {list(map(int, self._asns))})"

    def __str__(self) -> str:
        body = " ".join(str(asn) for asn in self._asns)
        if self.is_set:
            return "{" + body.replace(" ", ",") + "}"
        return body


class ASPath:
    """A full AS_PATH: a tuple of segments.

    >>> path = ASPath.from_string("20205 3356 174 12654")
    >>> path.origin_asn
    ASN(12654)
    >>> path.prepend(ASN(20205)).is_prepend_variant_of(path)
    True
    """

    __slots__ = (
        "_segments", "_flat", "_length", "_prepends", "_hash", "_collapsed"
    )

    def __init__(self, segments: Iterable[PathSegment] = ()):
        self._segments = tuple(segments)
        for segment in self._segments:
            if not isinstance(segment, PathSegment):
                raise AttributeError_(f"not a PathSegment: {segment!r}")
        # Lazy caches: paths are immutable, and the simulator asks for
        # the same flattened view / decision length / per-ASN prepend
        # millions of times on a big run.  The hash and the
        # prepend-collapsed variant are cached too: decode interning
        # makes one ASPath object key memo dicts and feed the
        # classifier's prepend test for millions of records.
        self._flat: "tuple | None" = None
        self._length: "int | None" = None
        self._prepends: "dict | None" = None
        self._hash: "int | None" = None
        self._collapsed: "ASPath | None" = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_asns(cls, asns: Sequence[int]) -> "ASPath":
        """Build a single AS_SEQUENCE path from leftmost to origin."""
        if not asns:
            return cls()
        return cls((PathSegment(SegmentType.AS_SEQUENCE, asns),))

    @classmethod
    def from_string(cls, text: str) -> "ASPath":
        """Parse ``"64500 64501 {64502,64503}"`` notation."""
        segments = []
        pending: list = []
        for token in text.split():
            if token.startswith("{"):
                if pending:
                    segments.append(
                        PathSegment(SegmentType.AS_SEQUENCE, pending)
                    )
                    pending = []
                members = token.strip("{}").split(",")
                segments.append(PathSegment(SegmentType.AS_SET, members))
            else:
                pending.append(token)
        if pending:
            segments.append(PathSegment(SegmentType.AS_SEQUENCE, pending))
        return cls(segments)

    @classmethod
    def empty(cls) -> "ASPath":
        """The empty path, as originated by the prefix owner in iBGP."""
        return _EMPTY

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def segments(self) -> tuple:
        """The path segments, leftmost (most recent AS) first."""
        return self._segments

    def is_empty(self) -> bool:
        """True when the path contains no segments."""
        return not self._segments

    def asns(self) -> tuple:
        """All ASNs in wire order, flattened across segments."""
        if self._flat is None:
            flat: list = []
            for segment in self._segments:
                flat.extend(segment.asns)
            self._flat = tuple(flat)
        return self._flat

    @property
    def first_asn(self) -> "ASN | None":
        """The leftmost ASN — the neighbor that sent the route."""
        asns = self.asns()
        return asns[0] if asns else None

    @property
    def origin_asn(self) -> "ASN | None":
        """The rightmost ASN — the originating AS."""
        asns = self.asns()
        return asns[-1] if asns else None

    def length(self) -> int:
        """Decision-process path length (AS_SET counts as one hop)."""
        if self._length is None:
            self._length = sum(
                segment.path_length_contribution()
                for segment in self._segments
            )
        return self._length

    def hop_count(self) -> int:
        """Number of ASN entries including prepends."""
        return len(self.asns())

    def contains(self, asn: int) -> bool:
        """True when *asn* appears anywhere in the path (loop check)."""
        return ASN(asn) in self.asns()

    # ------------------------------------------------------------------
    # derived paths
    # ------------------------------------------------------------------
    def prepend(self, asn: int, count: int = 1) -> "ASPath":
        """Return a new path with *asn* prepended *count* times.

        Memoized per (asn, count): exporting one route to N peers
        prepends the same local ASN onto the same path N times.
        """
        if count < 1:
            raise AttributeError_(f"prepend count must be >= 1, got {count}")
        memo_key = (int(asn), count)
        if self._prepends is not None:
            cached = self._prepends.get(memo_key)
            if cached is not None:
                return cached
        new_asns = (ASN(asn),) * count
        if self._segments and self._segments[0].kind == SegmentType.AS_SEQUENCE:
            head = PathSegment(
                SegmentType.AS_SEQUENCE,
                new_asns + self._segments[0].asns,
            )
            derived = ASPath((head,) + self._segments[1:])
        else:
            head = PathSegment(SegmentType.AS_SEQUENCE, new_asns)
            derived = ASPath((head,) + self._segments)
        if self._prepends is None:
            self._prepends = {}
        self._prepends[memo_key] = derived
        return derived

    def distinct_ases(self) -> tuple:
        """Ordered tuple of distinct ASNs (prepends collapsed).

        This is the key used by the classifier to detect the
        prepend-only change types ``xc``/``xn``: two paths whose
        ``distinct_ases()`` are equal but whose raw ASN tuples differ
        changed only by prepending.
        """
        seen: list = []
        previous = None
        for asn in self.asns():
            if asn != previous:
                seen.append(asn)
            previous = asn
        return tuple(seen)

    def without_prepending(self) -> "ASPath":
        """Return the path with consecutive duplicate ASNs collapsed."""
        if self._collapsed is not None:
            return self._collapsed
        collapsed = self.distinct_ases()
        if not collapsed:
            self._collapsed = _EMPTY
            return _EMPTY
        # Preserve set segments; only sequences can legitimately prepend.
        segments = []
        for segment in self._segments:
            if segment.is_set:
                segments.append(segment)
            else:
                deduped: list = []
                previous = None
                for asn in segment.asns:
                    if asn != previous:
                        deduped.append(asn)
                    previous = asn
                segments.append(PathSegment(segment.kind, deduped))
        derived = ASPath(segments)
        self._collapsed = derived
        return derived

    def is_prepend_variant_of(self, other: "ASPath") -> bool:
        """True when the two paths differ only in prepending."""
        if self is other or self == other:
            return False
        return self.without_prepending() == other.without_prepending()

    def has_prepending(self) -> bool:
        """True when any AS appears consecutively more than once."""
        asns = self.asns()
        return any(a == b for a, b in zip(asns, asns[1:]))

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASPath):
            return NotImplemented
        return self._segments == other._segments

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._segments)
        return self._hash

    def __iter__(self) -> Iterator[PathSegment]:
        return iter(self._segments)

    def __len__(self) -> int:
        return self.hop_count()

    def __repr__(self) -> str:
        return f"ASPath('{self}')"

    def __str__(self) -> str:
        return " ".join(str(segment) for segment in self._segments)


_EMPTY = ASPath()
