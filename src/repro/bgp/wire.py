"""Binary wire codec for BGP messages (RFC 4271 + extensions).

The codec is complete enough to round-trip every message the simulator
produces, including IPv6 routes via MP_REACH_NLRI / MP_UNREACH_NLRI
(RFC 4760), classic and large communities, and 4-byte AS paths
(RFC 6793 — we always encode 4-octet ASNs, as modern speakers do once
the capability is negotiated).

The MRT layer wraps these encodings in archive records, so a synthetic
"RouteViews dump" written by :mod:`repro.mrt` contains genuine BGP
bytes.
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Iterator

from repro.bgp.aspath import ASPath, PathSegment, SegmentType
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import Community, CommunitySet, LargeCommunity
from repro.bgp.constants import (
    Afi,
    AttrFlag,
    AttrType,
    BGP_VERSION,
    CANONICAL_FLAGS,
    HEADER_LENGTH,
    MARKER,
    MAX_MESSAGE_LENGTH,
    MessageType,
    OriginCode,
    Safi,
)
from repro.bgp.errors import WireFormatError
from repro.bgp.message import (
    BGPMessage,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    RouteRefreshMessage,
    UpdateMessage,
)
from repro.netbase.asn import ASN
from repro.netbase.memo import bounded_store, memo_counters
from repro.netbase.prefix import Prefix

_CAP_MP = 1
_CAP_FOUR_OCTET_ASN = 65
_AS_TRANS = 23456

# Precompiled structs for the decode hot path: a month of RouteViews
# archives runs hundreds of millions of messages through these.
_LEN_TYPE = struct.Struct("!HB")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_HBB = struct.Struct("!HBB")
_AFI_SAFI = struct.Struct("!HB")

_TYPE_UPDATE = int(MessageType.UPDATE)
_TYPE_OPEN = int(MessageType.OPEN)
_TYPE_KEEPALIVE = int(MessageType.KEEPALIVE)
_TYPE_NOTIFICATION = int(MessageType.NOTIFICATION)
_TYPE_ROUTE_REFRESH = int(MessageType.ROUTE_REFRESH)

_ORIGIN_BY_CODE = {int(code): code for code in OriginCode}

# ----------------------------------------------------------------------
# decode memo caches
# ----------------------------------------------------------------------
# Real archives are massively repetitive: the same AS_PATH and
# COMMUNITIES byte strings recur across millions of records, and whole
# path-attribute blocks repeat verbatim (duplicate announcements are
# the paper's subject!).  Decoding each distinct byte string once and
# returning the *same* interned object thereafter both skips the parse
# and enables identity fast paths downstream (``a is b`` implies
# ``a == b`` for these immutable value objects).  All caches are
# bounded — cleared wholesale when full, like the MRT writer's message
# cache — and can be disabled as one unit for the benchmark's
# fast-vs-naive verification.
_MEMO_LIMIT = 16384
_ATTR_BLOCK_MEMO: dict = {}  # raw attr block -> (attrs, reach, unreach)
_AS_PATH_MEMO: dict = {}  # raw AS_PATH value -> ASPath
_COMMUNITY_SET_MEMO: dict = {}  # raw COMMUNITIES value -> CommunitySet
_LARGE_SET_MEMO: dict = {}  # raw LARGE_COMMUNITIES value -> frozenset
_ADDR4_MEMO: dict = {}  # packed IPv4 -> text (NEXT_HOP et al.)
_memo_enabled = True

_ATTR_BLOCK_STATS = memo_counters("wire.attr_block")
_AS_PATH_STATS = memo_counters("wire.as_path")
_COMMUNITY_SET_STATS = memo_counters("wire.community_set")
_LARGE_SET_STATS = memo_counters("wire.large_set")
_ADDR4_STATS = memo_counters("wire.addr4")


def set_decode_memo(enabled: bool) -> bool:
    """Enable/disable (and clear) the attribute-decode memo caches.

    Returns the previous setting.  The benchmark's verify mode decodes
    every archive twice — memo on and off — and asserts bit-identical
    results, proving the caches are a pure optimization.
    """
    global _memo_enabled
    previous = _memo_enabled
    _memo_enabled = bool(enabled)
    for cache in (
        _ATTR_BLOCK_MEMO,
        _AS_PATH_MEMO,
        _COMMUNITY_SET_MEMO,
        _LARGE_SET_MEMO,
        _ADDR4_MEMO,
    ):
        cache.clear()
    return previous


def decode_memo_sizes() -> "dict[str, int]":
    """Entry counts of every decode memo (for bound tests)."""
    return {
        "attr_block": len(_ATTR_BLOCK_MEMO),
        "as_path": len(_AS_PATH_MEMO),
        "community_set": len(_COMMUNITY_SET_MEMO),
        "large_set": len(_LARGE_SET_MEMO),
        "addr4": len(_ADDR4_MEMO),
    }


def _ipv4_text(packed: bytes) -> str:
    cached = _ADDR4_MEMO.get(packed)
    if cached is not None:
        _ADDR4_STATS.hits += 1
        return cached
    text = str(ipaddress.IPv4Address(packed))
    if _memo_enabled:
        bounded_store(
            _ADDR4_MEMO, packed, text, _MEMO_LIMIT, _ADDR4_STATS
        )
    return text


# ----------------------------------------------------------------------
# top-level encode / decode
# ----------------------------------------------------------------------
def encode_message(message: BGPMessage) -> bytes:
    """Serialize any BGP message to its RFC 4271 wire form."""
    if isinstance(message, OpenMessage):
        body = _encode_open(message)
        kind = MessageType.OPEN
    elif isinstance(message, UpdateMessage):
        body = _encode_update(message)
        kind = MessageType.UPDATE
    elif isinstance(message, KeepaliveMessage):
        body = b""
        kind = MessageType.KEEPALIVE
    elif isinstance(message, NotificationMessage):
        body = bytes([message.code, message.subcode]) + message.data
        kind = MessageType.NOTIFICATION
    elif isinstance(message, RouteRefreshMessage):
        body = struct.pack("!HBB", message.afi, 0, message.safi)
        kind = MessageType.ROUTE_REFRESH
    else:
        raise WireFormatError(f"cannot encode {type(message).__name__}")
    total = HEADER_LENGTH + len(body)
    if total > MAX_MESSAGE_LENGTH:
        raise WireFormatError(f"message too large: {total} bytes")
    return MARKER + struct.pack("!HB", total, kind) + body


def decode_message(data: bytes) -> BGPMessage:
    """Parse one wire-format BGP message (exact-length input)."""
    message, consumed = decode_message_from(data)
    if consumed != len(data):
        raise WireFormatError(
            f"trailing bytes after message: {len(data) - consumed}"
        )
    return message


def decode_message_from(data) -> "tuple[BGPMessage, int]":
    """Parse one message from the front of *data*; return (msg, consumed).

    *data* may be any bytes-like object; the MRT reader hands in
    zero-copy :class:`memoryview` slices of its read buffer.
    """
    if len(data) < HEADER_LENGTH:
        raise WireFormatError("truncated BGP header")
    if data[:16] != MARKER:
        raise WireFormatError("bad BGP marker")
    length, kind = _LEN_TYPE.unpack_from(data, 16)
    if not HEADER_LENGTH <= length <= MAX_MESSAGE_LENGTH:
        raise WireFormatError(f"bad message length: {length}")
    if len(data) < length:
        raise WireFormatError("truncated BGP message body")
    body = data[HEADER_LENGTH:length]
    if kind == _TYPE_UPDATE:
        return _decode_update(body), length
    if kind == _TYPE_KEEPALIVE:
        if len(body):
            raise WireFormatError("KEEPALIVE with a body")
        return KeepaliveMessage(), length
    if kind == _TYPE_OPEN:
        return _decode_open(body), length
    if kind == _TYPE_ROUTE_REFRESH:
        if len(body) != 4:
            raise WireFormatError("bad ROUTE-REFRESH length")
        afi, _reserved, safi = _HBB.unpack(body)
        return RouteRefreshMessage(afi, safi), length
    if kind == _TYPE_NOTIFICATION:
        if len(body) < 2:
            raise WireFormatError("truncated NOTIFICATION")
        return NotificationMessage(body[0], body[1], bytes(body[2:])), length
    raise WireFormatError(f"unknown message type: {kind}")


def iter_messages(data: bytes) -> Iterator[BGPMessage]:
    """Yield successive messages from a concatenated byte stream."""
    offset = 0
    while offset < len(data):
        message, consumed = decode_message_from(data[offset:])
        yield message
        offset += consumed


# ----------------------------------------------------------------------
# OPEN
# ----------------------------------------------------------------------
def _encode_open(message: OpenMessage) -> bytes:
    asn16 = int(message.asn) if message.asn.is_16bit else _AS_TRANS
    router_id = int(ipaddress.IPv4Address(message.router_id))
    capabilities = bytearray()
    # Multiprotocol: IPv4 and IPv6 unicast.
    for afi in (Afi.IPV4, Afi.IPV6):
        capabilities += bytes([_CAP_MP, 4]) + struct.pack(
            "!HBB", afi, 0, Safi.UNICAST
        )
    if message.four_octet_asn:
        capabilities += bytes([_CAP_FOUR_OCTET_ASN, 4]) + struct.pack(
            "!I", int(message.asn)
        )
    optional = b""
    if capabilities:
        optional = bytes([2, len(capabilities)]) + bytes(capabilities)
    return (
        struct.pack(
            "!BHHI",
            BGP_VERSION,
            asn16,
            message.hold_time,
            router_id,
        )
        + bytes([len(optional)])
        + optional
    )


def _decode_open(body: bytes) -> OpenMessage:
    if len(body) < 10:
        raise WireFormatError("truncated OPEN")
    version, asn16, hold_time, router_id_int = struct.unpack(
        "!BHHI", body[:9]
    )
    if version != BGP_VERSION:
        raise WireFormatError(f"unsupported BGP version: {version}")
    opt_length = body[9]
    optional = body[10 : 10 + opt_length]
    if len(optional) != opt_length:
        raise WireFormatError("truncated OPEN optional parameters")
    asn = asn16
    four_octet = False
    offset = 0
    while offset + 2 <= len(optional):
        param_type, param_length = optional[offset], optional[offset + 1]
        value = optional[offset + 2 : offset + 2 + param_length]
        offset += 2 + param_length
        if param_type != 2:  # only capabilities are modeled
            continue
        cap_offset = 0
        while cap_offset + 2 <= len(value):
            cap_code, cap_length = value[cap_offset], value[cap_offset + 1]
            cap_value = value[cap_offset + 2 : cap_offset + 2 + cap_length]
            cap_offset += 2 + cap_length
            if cap_code == _CAP_FOUR_OCTET_ASN and cap_length == 4:
                asn = struct.unpack("!I", cap_value)[0]
                four_octet = True
    router_id = str(ipaddress.IPv4Address(router_id_int))
    return OpenMessage(
        asn, router_id, hold_time, four_octet_asn=four_octet
    )


# ----------------------------------------------------------------------
# UPDATE
# ----------------------------------------------------------------------
def _encode_update(message: UpdateMessage) -> bytes:
    withdrawn_v4 = [p for p in message.withdrawn if p.version == 4]
    withdrawn_v6 = [p for p in message.withdrawn if p.version == 6]
    announced_v4 = [p for p in message.announced if p.version == 4]
    announced_v6 = [p for p in message.announced if p.version == 6]

    withdrawn_bytes = b"".join(p.to_nlri() for p in withdrawn_v4)
    attrs = bytearray()
    if message.attributes is not None and (announced_v4 or announced_v6):
        attrs += _encode_attributes(message.attributes)
    if announced_v6:
        if message.attributes is None:
            raise WireFormatError("IPv6 NLRI without attributes")
        attrs += _encode_mp_reach(announced_v6, message.attributes)
    if withdrawn_v6:
        attrs += _encode_mp_unreach(withdrawn_v6)
    nlri_bytes = b"".join(p.to_nlri() for p in announced_v4)
    return (
        struct.pack("!H", len(withdrawn_bytes))
        + withdrawn_bytes
        + struct.pack("!H", len(attrs))
        + bytes(attrs)
        + nlri_bytes
    )


def _decode_update(body) -> UpdateMessage:
    if len(body) < 4:
        raise WireFormatError("truncated UPDATE")
    withdrawn_length = _U16.unpack_from(body, 0)[0]
    withdrawn_end = 2 + withdrawn_length
    if withdrawn_end + 2 > len(body):
        raise WireFormatError("truncated UPDATE withdrawn routes")
    withdrawn = list(_decode_nlri_block(body[2:withdrawn_end], 4))
    offset = withdrawn_end + 2
    attr_end = offset + _U16.unpack_from(body, withdrawn_end)[0]
    if attr_end > len(body):
        raise WireFormatError("truncated UPDATE attributes")
    attributes, reach_v6, unreach_v6 = _decode_attribute_block(
        body[offset:attr_end]
    )
    announced = list(_decode_nlri_block(body[attr_end:], 4))
    announced.extend(reach_v6)
    withdrawn.extend(unreach_v6)
    if not announced:
        attributes = None
    return UpdateMessage(
        announced=announced, withdrawn=withdrawn, attributes=attributes
    )


def _decode_nlri_block(data, version: int) -> Iterator[Prefix]:
    offset = 0
    end = len(data)
    from_nlri = Prefix.from_nlri
    while offset < end:
        prefix, consumed = from_nlri(data[offset:], version)
        yield prefix
        offset += consumed


# ----------------------------------------------------------------------
# path attributes
# ----------------------------------------------------------------------
def _encode_attribute(attr_type: AttrType, value: bytes) -> bytes:
    flags = CANONICAL_FLAGS[attr_type]
    if len(value) > 255:
        flags |= AttrFlag.EXTENDED_LENGTH
        return struct.pack("!BBH", flags, attr_type, len(value)) + value
    return struct.pack("!BBB", flags, attr_type, len(value)) + value


def _encode_attributes(attributes: PathAttributes) -> bytes:
    out = bytearray()
    out += _encode_attribute(
        AttrType.ORIGIN, bytes([attributes.origin])
    )
    out += _encode_attribute(
        AttrType.AS_PATH, _encode_as_path(attributes.as_path)
    )
    if attributes.next_hop is not None:
        next_hop = ipaddress.ip_address(attributes.next_hop)
        if next_hop.version == 4:
            out += _encode_attribute(
                AttrType.NEXT_HOP, next_hop.packed
            )
        # IPv6 next hops ride in MP_REACH_NLRI instead.
    if attributes.med is not None:
        out += _encode_attribute(
            AttrType.MULTI_EXIT_DISC, struct.pack("!I", attributes.med)
        )
    if attributes.local_pref is not None:
        out += _encode_attribute(
            AttrType.LOCAL_PREF, struct.pack("!I", attributes.local_pref)
        )
    if attributes.atomic_aggregate:
        out += _encode_attribute(AttrType.ATOMIC_AGGREGATE, b"")
    if attributes.aggregator is not None:
        asn, router_id = attributes.aggregator
        out += _encode_attribute(
            AttrType.AGGREGATOR,
            struct.pack("!I", int(asn))
            + ipaddress.IPv4Address(router_id).packed,
        )
    if attributes.communities.classic:
        payload = b"".join(
            community.to_bytes()
            for community in sorted(attributes.communities.classic)
        )
        out += _encode_attribute(AttrType.COMMUNITIES, payload)
    if attributes.communities.large:
        payload = b"".join(
            community.to_bytes()
            for community in sorted(attributes.communities.large)
        )
        out += _encode_attribute(AttrType.LARGE_COMMUNITIES, payload)
    if attributes.originator_id is not None:
        out += _encode_attribute(
            AttrType.ORIGINATOR_ID,
            ipaddress.IPv4Address(attributes.originator_id).packed,
        )
    if attributes.cluster_list:
        payload = b"".join(
            ipaddress.IPv4Address(entry).packed
            for entry in attributes.cluster_list
        )
        out += _encode_attribute(AttrType.CLUSTER_LIST, payload)
    for type_code, raw in attributes.extra:
        flags = AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE | AttrFlag.PARTIAL
        if len(raw) > 255:
            flags |= AttrFlag.EXTENDED_LENGTH
            out += struct.pack("!BBH", flags, type_code, len(raw)) + raw
        else:
            out += struct.pack("!BBB", flags, type_code, len(raw)) + raw
    return bytes(out)


def _decode_attribute_block(data):
    """Decode one whole attribute block, memoized on its raw bytes.

    Returns ``(attributes, reach_v6, unreach_v6)`` where *attributes*
    is a ready :class:`PathAttributes` (MP next-hop already folded in
    when the block carried no classic NEXT_HOP).  Identical byte blocks
    return the identical interned objects, so the per-stream
    classifiers downstream resolve the common duplicate case with one
    ``is`` check.
    """
    raw = bytes(data)
    if _memo_enabled:
        cached = _ATTR_BLOCK_MEMO.get(raw)
        if cached is not None:
            _ATTR_BLOCK_STATS.hits += 1
            return cached
    fields, reach_v6, unreach_v6, mp_next_hop = _parse_attributes(raw)
    if mp_next_hop is not None and fields.get("next_hop") is None:
        fields["next_hop"] = mp_next_hop
    result = (PathAttributes(**fields), tuple(reach_v6), tuple(unreach_v6))
    if _memo_enabled:
        bounded_store(
            _ATTR_BLOCK_MEMO, raw, result, _MEMO_LIMIT, _ATTR_BLOCK_STATS
        )
    return result


def _decode_attributes(data):
    """Decode the attribute block (compatibility entry point).

    Returns ``(fields, reach_v6, unreach_v6, mp_next_hop)`` where
    *fields* are :class:`PathAttributes` constructor kwargs.  The
    UPDATE hot path uses :func:`_decode_attribute_block` instead; this
    form remains for callers that assemble attributes themselves
    (TABLE_DUMP_V2 RIB entries).
    """
    return _parse_attributes(bytes(data))


def _parse_attributes(data: bytes):
    fields: dict = {}
    extra: list = []
    reach_v6: list = []
    unreach_v6: list = []
    decoders = _ATTR_DECODERS
    offset = 0
    end = len(data)
    while offset < end:
        if offset + 3 > end:
            raise WireFormatError("truncated attribute header")
        flags = data[offset]
        type_code = data[offset + 1]
        if flags & 0x10:  # AttrFlag.EXTENDED_LENGTH
            if offset + 4 > end:
                raise WireFormatError("truncated extended attribute header")
            length = _U16.unpack_from(data, offset + 2)[0]
            value_start = offset + 4
        else:
            length = data[offset + 2]
            value_start = offset + 3
        offset = value_start + length
        if offset > end:
            raise WireFormatError("truncated attribute value")
        value = data[value_start:offset]
        decoder = decoders.get(type_code)
        if decoder is not None:
            decoder(value, fields, reach_v6, unreach_v6)
        else:
            extra.append((type_code, value))
    mp_next_hop = fields.pop("_mp_next_hop", None)
    if extra:
        fields["extra"] = tuple(extra)
    return fields, reach_v6, unreach_v6, mp_next_hop


# Per-attribute decoders, dispatched from a flat table instead of an
# if/elif chain.  Each takes (value bytes, fields, reach_v6, unreach_v6)
# and fills in the PathAttributes constructor kwargs.
def _dec_origin(value, fields, reach_v6, unreach_v6):
    if len(value) != 1:
        raise WireFormatError("bad ORIGIN length")
    try:
        fields["origin"] = _ORIGIN_BY_CODE[value[0]]
    except KeyError:
        raise WireFormatError(f"invalid ORIGIN code: {value[0]}") from None


def _dec_as_path(value, fields, reach_v6, unreach_v6):
    path = _AS_PATH_MEMO.get(value)
    if path is None:
        path = _decode_as_path(value)
        if _memo_enabled:
            bounded_store(
                _AS_PATH_MEMO, value, path, _MEMO_LIMIT, _AS_PATH_STATS
            )
    else:
        _AS_PATH_STATS.hits += 1
    fields["as_path"] = path


def _dec_next_hop(value, fields, reach_v6, unreach_v6):
    if len(value) != 4:
        raise WireFormatError("bad NEXT_HOP length")
    fields["next_hop"] = _ipv4_text(value)


def _dec_med(value, fields, reach_v6, unreach_v6):
    if len(value) != 4:
        raise WireFormatError("bad MED length")
    fields["med"] = _U32.unpack(value)[0]


def _dec_local_pref(value, fields, reach_v6, unreach_v6):
    if len(value) != 4:
        raise WireFormatError("bad LOCAL_PREF length")
    fields["local_pref"] = _U32.unpack(value)[0]


def _dec_atomic_aggregate(value, fields, reach_v6, unreach_v6):
    fields["atomic_aggregate"] = True


def _dec_aggregator(value, fields, reach_v6, unreach_v6):
    if len(value) == 8:
        asn = _U32.unpack(value[:4])[0]
        router = _ipv4_text(value[4:])
    elif len(value) == 6:
        asn = _U16.unpack(value[:2])[0]
        router = _ipv4_text(value[2:])
    else:
        raise WireFormatError("bad AGGREGATOR length")
    fields["aggregator"] = (ASN(asn), router)


def _dec_communities(value, fields, reach_v6, unreach_v6):
    community_set = _COMMUNITY_SET_MEMO.get(value)
    if community_set is None:
        if len(value) % 4:
            raise WireFormatError("bad COMMUNITIES length")
        community_set = CommunitySet(
            Community.from_bytes(value[i : i + 4])
            for i in range(0, len(value), 4)
        )
        if _memo_enabled:
            bounded_store(
                _COMMUNITY_SET_MEMO, value, community_set, _MEMO_LIMIT,
                _COMMUNITY_SET_STATS,
            )
    else:
        _COMMUNITY_SET_STATS.hits += 1
    existing = fields.get("communities")
    if existing is None or not existing.large:
        fields["communities"] = community_set
    else:
        fields["communities"] = CommunitySet(
            community_set.classic, existing.large
        )


def _dec_large_communities(value, fields, reach_v6, unreach_v6):
    large = _LARGE_SET_MEMO.get(value)
    if large is None:
        if len(value) % 12:
            raise WireFormatError("bad LARGE_COMMUNITIES length")
        large = frozenset(
            LargeCommunity.from_bytes(value[i : i + 12])
            for i in range(0, len(value), 12)
        )
        if _memo_enabled:
            bounded_store(
                _LARGE_SET_MEMO, value, large, _MEMO_LIMIT,
                _LARGE_SET_STATS,
            )
    else:
        _LARGE_SET_STATS.hits += 1
    existing = fields.get("communities")
    classic = existing.classic if existing is not None else ()
    fields["communities"] = CommunitySet(classic, large)


def _dec_originator_id(value, fields, reach_v6, unreach_v6):
    if len(value) != 4:
        raise WireFormatError("bad ORIGINATOR_ID length")
    fields["originator_id"] = _ipv4_text(value)


def _dec_cluster_list(value, fields, reach_v6, unreach_v6):
    if len(value) % 4:
        raise WireFormatError("bad CLUSTER_LIST length")
    fields["cluster_list"] = tuple(
        _ipv4_text(value[i : i + 4]) for i in range(0, len(value), 4)
    )


def _dec_mp_reach(value, fields, reach_v6, unreach_v6):
    if len(value) < 5:  # afi + safi + next-hop length + reserved octet
        raise WireFormatError("truncated MP_REACH_NLRI")
    afi, safi = _AFI_SAFI.unpack(value[:3])
    next_hop_length = value[3]
    nlri_offset = 4 + next_hop_length + 1  # +1 reserved octet
    if afi == Afi.IPV6 and safi == Safi.UNICAST:
        if next_hop_length >= 16:
            fields["_mp_next_hop"] = str(
                ipaddress.IPv6Address(value[4:20])
            )
        reach_v6.extend(_decode_nlri_block(value[nlri_offset:], 6))


def _dec_mp_unreach(value, fields, reach_v6, unreach_v6):
    if len(value) < 3:
        raise WireFormatError("truncated MP_UNREACH_NLRI")
    afi, safi = _AFI_SAFI.unpack(value[:3])
    if afi == Afi.IPV6 and safi == Safi.UNICAST:
        unreach_v6.extend(_decode_nlri_block(value[3:], 6))


_ATTR_DECODERS = {
    int(AttrType.ORIGIN): _dec_origin,
    int(AttrType.AS_PATH): _dec_as_path,
    int(AttrType.NEXT_HOP): _dec_next_hop,
    int(AttrType.MULTI_EXIT_DISC): _dec_med,
    int(AttrType.LOCAL_PREF): _dec_local_pref,
    int(AttrType.ATOMIC_AGGREGATE): _dec_atomic_aggregate,
    int(AttrType.AGGREGATOR): _dec_aggregator,
    int(AttrType.COMMUNITIES): _dec_communities,
    int(AttrType.LARGE_COMMUNITIES): _dec_large_communities,
    int(AttrType.ORIGINATOR_ID): _dec_originator_id,
    int(AttrType.CLUSTER_LIST): _dec_cluster_list,
    int(AttrType.MP_REACH_NLRI): _dec_mp_reach,
    int(AttrType.MP_UNREACH_NLRI): _dec_mp_unreach,
}


def _encode_as_path(path: ASPath) -> bytes:
    out = bytearray()
    for segment in path.segments:
        out.append(segment.kind)
        out.append(len(segment.asns))
        for asn in segment.asns:
            out += struct.pack("!I", int(asn))
    return bytes(out)


def _decode_as_path(data: bytes) -> ASPath:
    segments = []
    offset = 0
    while offset < len(data):
        if offset + 2 > len(data):
            raise WireFormatError("truncated AS_PATH segment header")
        kind, count = data[offset], data[offset + 1]
        offset += 2
        needed = count * 4
        if offset + needed > len(data):
            raise WireFormatError("truncated AS_PATH segment")
        asns = struct.unpack(f"!{count}I", data[offset : offset + needed])
        offset += needed
        try:
            segments.append(PathSegment(SegmentType(kind), asns))
        except ValueError as exc:
            raise WireFormatError(f"bad AS_PATH segment type {kind}") from exc
    return ASPath(segments)


def _encode_mp_reach(prefixes, attributes: PathAttributes) -> bytes:
    next_hop = attributes.next_hop
    if next_hop is None or ipaddress.ip_address(next_hop).version != 6:
        next_hop_bytes = bytes(16)
    else:
        next_hop_bytes = ipaddress.IPv6Address(next_hop).packed
    payload = (
        struct.pack("!HB", Afi.IPV6, Safi.UNICAST)
        + bytes([len(next_hop_bytes)])
        + next_hop_bytes
        + b"\x00"
        + b"".join(p.to_nlri() for p in prefixes)
    )
    return _encode_attribute(AttrType.MP_REACH_NLRI, payload)


def _encode_mp_unreach(prefixes) -> bytes:
    payload = struct.pack("!HB", Afi.IPV6, Safi.UNICAST) + b"".join(
        p.to_nlri() for p in prefixes
    )
    return _encode_attribute(AttrType.MP_UNREACH_NLRI, payload)
