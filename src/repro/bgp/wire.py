"""Binary wire codec for BGP messages (RFC 4271 + extensions).

The codec is complete enough to round-trip every message the simulator
produces, including IPv6 routes via MP_REACH_NLRI / MP_UNREACH_NLRI
(RFC 4760), classic and large communities, and 4-byte AS paths
(RFC 6793 — we always encode 4-octet ASNs, as modern speakers do once
the capability is negotiated).

The MRT layer wraps these encodings in archive records, so a synthetic
"RouteViews dump" written by :mod:`repro.mrt` contains genuine BGP
bytes.
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Iterator

from repro.bgp.aspath import ASPath, PathSegment, SegmentType
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import Community, CommunitySet, LargeCommunity
from repro.bgp.constants import (
    Afi,
    AttrFlag,
    AttrType,
    BGP_VERSION,
    CANONICAL_FLAGS,
    HEADER_LENGTH,
    MARKER,
    MAX_MESSAGE_LENGTH,
    MessageType,
    OriginCode,
    Safi,
)
from repro.bgp.errors import WireFormatError
from repro.bgp.message import (
    BGPMessage,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    RouteRefreshMessage,
    UpdateMessage,
)
from repro.netbase.asn import ASN
from repro.netbase.prefix import Prefix

_CAP_MP = 1
_CAP_FOUR_OCTET_ASN = 65
_AS_TRANS = 23456


# ----------------------------------------------------------------------
# top-level encode / decode
# ----------------------------------------------------------------------
def encode_message(message: BGPMessage) -> bytes:
    """Serialize any BGP message to its RFC 4271 wire form."""
    if isinstance(message, OpenMessage):
        body = _encode_open(message)
        kind = MessageType.OPEN
    elif isinstance(message, UpdateMessage):
        body = _encode_update(message)
        kind = MessageType.UPDATE
    elif isinstance(message, KeepaliveMessage):
        body = b""
        kind = MessageType.KEEPALIVE
    elif isinstance(message, NotificationMessage):
        body = bytes([message.code, message.subcode]) + message.data
        kind = MessageType.NOTIFICATION
    elif isinstance(message, RouteRefreshMessage):
        body = struct.pack("!HBB", message.afi, 0, message.safi)
        kind = MessageType.ROUTE_REFRESH
    else:
        raise WireFormatError(f"cannot encode {type(message).__name__}")
    total = HEADER_LENGTH + len(body)
    if total > MAX_MESSAGE_LENGTH:
        raise WireFormatError(f"message too large: {total} bytes")
    return MARKER + struct.pack("!HB", total, kind) + body


def decode_message(data: bytes) -> BGPMessage:
    """Parse one wire-format BGP message (exact-length input)."""
    message, consumed = decode_message_from(data)
    if consumed != len(data):
        raise WireFormatError(
            f"trailing bytes after message: {len(data) - consumed}"
        )
    return message


def decode_message_from(data: bytes) -> "tuple[BGPMessage, int]":
    """Parse one message from the front of *data*; return (msg, consumed)."""
    if len(data) < HEADER_LENGTH:
        raise WireFormatError("truncated BGP header")
    marker, length, kind = data[:16], *struct.unpack("!HB", data[16:19])
    if marker != MARKER:
        raise WireFormatError("bad BGP marker")
    if not HEADER_LENGTH <= length <= MAX_MESSAGE_LENGTH:
        raise WireFormatError(f"bad message length: {length}")
    if len(data) < length:
        raise WireFormatError("truncated BGP message body")
    body = data[HEADER_LENGTH:length]
    try:
        message_type = MessageType(kind)
    except ValueError as exc:
        raise WireFormatError(f"unknown message type: {kind}") from exc
    if message_type == MessageType.OPEN:
        return _decode_open(body), length
    if message_type == MessageType.UPDATE:
        return _decode_update(body), length
    if message_type == MessageType.KEEPALIVE:
        if body:
            raise WireFormatError("KEEPALIVE with a body")
        return KeepaliveMessage(), length
    if message_type == MessageType.ROUTE_REFRESH:
        if len(body) != 4:
            raise WireFormatError("bad ROUTE-REFRESH length")
        afi, _reserved, safi = struct.unpack("!HBB", body)
        return RouteRefreshMessage(afi, safi), length
    if len(body) < 2:
        raise WireFormatError("truncated NOTIFICATION")
    return NotificationMessage(body[0], body[1], body[2:]), length


def iter_messages(data: bytes) -> Iterator[BGPMessage]:
    """Yield successive messages from a concatenated byte stream."""
    offset = 0
    while offset < len(data):
        message, consumed = decode_message_from(data[offset:])
        yield message
        offset += consumed


# ----------------------------------------------------------------------
# OPEN
# ----------------------------------------------------------------------
def _encode_open(message: OpenMessage) -> bytes:
    asn16 = int(message.asn) if message.asn.is_16bit else _AS_TRANS
    router_id = int(ipaddress.IPv4Address(message.router_id))
    capabilities = bytearray()
    # Multiprotocol: IPv4 and IPv6 unicast.
    for afi in (Afi.IPV4, Afi.IPV6):
        capabilities += bytes([_CAP_MP, 4]) + struct.pack(
            "!HBB", afi, 0, Safi.UNICAST
        )
    if message.four_octet_asn:
        capabilities += bytes([_CAP_FOUR_OCTET_ASN, 4]) + struct.pack(
            "!I", int(message.asn)
        )
    optional = b""
    if capabilities:
        optional = bytes([2, len(capabilities)]) + bytes(capabilities)
    return (
        struct.pack(
            "!BHHI",
            BGP_VERSION,
            asn16,
            message.hold_time,
            router_id,
        )
        + bytes([len(optional)])
        + optional
    )


def _decode_open(body: bytes) -> OpenMessage:
    if len(body) < 10:
        raise WireFormatError("truncated OPEN")
    version, asn16, hold_time, router_id_int = struct.unpack(
        "!BHHI", body[:9]
    )
    if version != BGP_VERSION:
        raise WireFormatError(f"unsupported BGP version: {version}")
    opt_length = body[9]
    optional = body[10 : 10 + opt_length]
    if len(optional) != opt_length:
        raise WireFormatError("truncated OPEN optional parameters")
    asn = asn16
    four_octet = False
    offset = 0
    while offset + 2 <= len(optional):
        param_type, param_length = optional[offset], optional[offset + 1]
        value = optional[offset + 2 : offset + 2 + param_length]
        offset += 2 + param_length
        if param_type != 2:  # only capabilities are modeled
            continue
        cap_offset = 0
        while cap_offset + 2 <= len(value):
            cap_code, cap_length = value[cap_offset], value[cap_offset + 1]
            cap_value = value[cap_offset + 2 : cap_offset + 2 + cap_length]
            cap_offset += 2 + cap_length
            if cap_code == _CAP_FOUR_OCTET_ASN and cap_length == 4:
                asn = struct.unpack("!I", cap_value)[0]
                four_octet = True
    router_id = str(ipaddress.IPv4Address(router_id_int))
    return OpenMessage(
        asn, router_id, hold_time, four_octet_asn=four_octet
    )


# ----------------------------------------------------------------------
# UPDATE
# ----------------------------------------------------------------------
def _encode_update(message: UpdateMessage) -> bytes:
    withdrawn_v4 = [p for p in message.withdrawn if p.version == 4]
    withdrawn_v6 = [p for p in message.withdrawn if p.version == 6]
    announced_v4 = [p for p in message.announced if p.version == 4]
    announced_v6 = [p for p in message.announced if p.version == 6]

    withdrawn_bytes = b"".join(p.to_nlri() for p in withdrawn_v4)
    attrs = bytearray()
    if message.attributes is not None and (announced_v4 or announced_v6):
        attrs += _encode_attributes(message.attributes)
    if announced_v6:
        if message.attributes is None:
            raise WireFormatError("IPv6 NLRI without attributes")
        attrs += _encode_mp_reach(announced_v6, message.attributes)
    if withdrawn_v6:
        attrs += _encode_mp_unreach(withdrawn_v6)
    nlri_bytes = b"".join(p.to_nlri() for p in announced_v4)
    return (
        struct.pack("!H", len(withdrawn_bytes))
        + withdrawn_bytes
        + struct.pack("!H", len(attrs))
        + bytes(attrs)
        + nlri_bytes
    )


def _decode_update(body: bytes) -> UpdateMessage:
    if len(body) < 4:
        raise WireFormatError("truncated UPDATE")
    withdrawn_length = struct.unpack("!H", body[:2])[0]
    offset = 2
    withdrawn_end = offset + withdrawn_length
    if withdrawn_end + 2 > len(body):
        raise WireFormatError("truncated UPDATE withdrawn routes")
    withdrawn = list(_decode_nlri_block(body[offset:withdrawn_end], 4))
    offset = withdrawn_end
    attr_length = struct.unpack("!H", body[offset : offset + 2])[0]
    offset += 2
    attr_end = offset + attr_length
    if attr_end > len(body):
        raise WireFormatError("truncated UPDATE attributes")
    fields, reach_v6, unreach_v6, mp_next_hop = _decode_attributes(
        body[offset:attr_end]
    )
    announced = list(_decode_nlri_block(body[attr_end:], 4))
    announced.extend(reach_v6)
    withdrawn.extend(unreach_v6)
    attributes = None
    if announced:
        if mp_next_hop is not None and fields.get("next_hop") is None:
            fields["next_hop"] = mp_next_hop
        attributes = PathAttributes(**fields)
    return UpdateMessage(
        announced=announced, withdrawn=withdrawn, attributes=attributes
    )


def _decode_nlri_block(data: bytes, version: int) -> Iterator[Prefix]:
    offset = 0
    while offset < len(data):
        prefix, consumed = Prefix.from_nlri(data[offset:], version)
        yield prefix
        offset += consumed


# ----------------------------------------------------------------------
# path attributes
# ----------------------------------------------------------------------
def _encode_attribute(attr_type: AttrType, value: bytes) -> bytes:
    flags = CANONICAL_FLAGS[attr_type]
    if len(value) > 255:
        flags |= AttrFlag.EXTENDED_LENGTH
        return struct.pack("!BBH", flags, attr_type, len(value)) + value
    return struct.pack("!BBB", flags, attr_type, len(value)) + value


def _encode_attributes(attributes: PathAttributes) -> bytes:
    out = bytearray()
    out += _encode_attribute(
        AttrType.ORIGIN, bytes([attributes.origin])
    )
    out += _encode_attribute(
        AttrType.AS_PATH, _encode_as_path(attributes.as_path)
    )
    if attributes.next_hop is not None:
        next_hop = ipaddress.ip_address(attributes.next_hop)
        if next_hop.version == 4:
            out += _encode_attribute(
                AttrType.NEXT_HOP, next_hop.packed
            )
        # IPv6 next hops ride in MP_REACH_NLRI instead.
    if attributes.med is not None:
        out += _encode_attribute(
            AttrType.MULTI_EXIT_DISC, struct.pack("!I", attributes.med)
        )
    if attributes.local_pref is not None:
        out += _encode_attribute(
            AttrType.LOCAL_PREF, struct.pack("!I", attributes.local_pref)
        )
    if attributes.atomic_aggregate:
        out += _encode_attribute(AttrType.ATOMIC_AGGREGATE, b"")
    if attributes.aggregator is not None:
        asn, router_id = attributes.aggregator
        out += _encode_attribute(
            AttrType.AGGREGATOR,
            struct.pack("!I", int(asn))
            + ipaddress.IPv4Address(router_id).packed,
        )
    if attributes.communities.classic:
        payload = b"".join(
            community.to_bytes()
            for community in sorted(attributes.communities.classic)
        )
        out += _encode_attribute(AttrType.COMMUNITIES, payload)
    if attributes.communities.large:
        payload = b"".join(
            community.to_bytes()
            for community in sorted(attributes.communities.large)
        )
        out += _encode_attribute(AttrType.LARGE_COMMUNITIES, payload)
    if attributes.originator_id is not None:
        out += _encode_attribute(
            AttrType.ORIGINATOR_ID,
            ipaddress.IPv4Address(attributes.originator_id).packed,
        )
    if attributes.cluster_list:
        payload = b"".join(
            ipaddress.IPv4Address(entry).packed
            for entry in attributes.cluster_list
        )
        out += _encode_attribute(AttrType.CLUSTER_LIST, payload)
    for type_code, raw in attributes.extra:
        flags = AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE | AttrFlag.PARTIAL
        if len(raw) > 255:
            flags |= AttrFlag.EXTENDED_LENGTH
            out += struct.pack("!BBH", flags, type_code, len(raw)) + raw
        else:
            out += struct.pack("!BBB", flags, type_code, len(raw)) + raw
    return bytes(out)


def _decode_attributes(data: bytes):
    """Decode the attribute block.

    Returns ``(fields, reach_v6, unreach_v6, mp_next_hop)`` where
    *fields* are :class:`PathAttributes` constructor kwargs.
    """
    fields: dict = {}
    extra: list = []
    reach_v6: list = []
    unreach_v6: list = []
    mp_next_hop = None
    offset = 0
    while offset < len(data):
        if offset + 3 > len(data):
            raise WireFormatError("truncated attribute header")
        flags = data[offset]
        type_code = data[offset + 1]
        if flags & AttrFlag.EXTENDED_LENGTH:
            if offset + 4 > len(data):
                raise WireFormatError("truncated extended attribute header")
            length = struct.unpack("!H", data[offset + 2 : offset + 4])[0]
            value_start = offset + 4
        else:
            length = data[offset + 2]
            value_start = offset + 3
        value = data[value_start : value_start + length]
        if len(value) != length:
            raise WireFormatError("truncated attribute value")
        offset = value_start + length
        _decode_one_attribute(
            type_code, value, fields, extra, reach_v6, unreach_v6
        )
    mp_next_hop = fields.pop("_mp_next_hop", mp_next_hop)
    if extra:
        fields["extra"] = tuple(extra)
    return fields, reach_v6, unreach_v6, mp_next_hop


def _decode_one_attribute(
    type_code, value, fields, extra, reach_v6, unreach_v6
):
    if type_code == AttrType.ORIGIN:
        if len(value) != 1:
            raise WireFormatError("bad ORIGIN length")
        fields["origin"] = OriginCode(value[0])
    elif type_code == AttrType.AS_PATH:
        fields["as_path"] = _decode_as_path(value)
    elif type_code == AttrType.NEXT_HOP:
        if len(value) != 4:
            raise WireFormatError("bad NEXT_HOP length")
        fields["next_hop"] = str(ipaddress.IPv4Address(value))
    elif type_code == AttrType.MULTI_EXIT_DISC:
        if len(value) != 4:
            raise WireFormatError("bad MED length")
        fields["med"] = struct.unpack("!I", value)[0]
    elif type_code == AttrType.LOCAL_PREF:
        if len(value) != 4:
            raise WireFormatError("bad LOCAL_PREF length")
        fields["local_pref"] = struct.unpack("!I", value)[0]
    elif type_code == AttrType.ATOMIC_AGGREGATE:
        fields["atomic_aggregate"] = True
    elif type_code == AttrType.AGGREGATOR:
        if len(value) == 8:
            asn = struct.unpack("!I", value[:4])[0]
            router = str(ipaddress.IPv4Address(value[4:]))
        elif len(value) == 6:
            asn = struct.unpack("!H", value[:2])[0]
            router = str(ipaddress.IPv4Address(value[2:]))
        else:
            raise WireFormatError("bad AGGREGATOR length")
        fields["aggregator"] = (ASN(asn), router)
    elif type_code == AttrType.COMMUNITIES:
        if len(value) % 4:
            raise WireFormatError("bad COMMUNITIES length")
        classic = [
            Community.from_bytes(value[i : i + 4])
            for i in range(0, len(value), 4)
        ]
        existing = fields.get("communities", CommunitySet.empty())
        fields["communities"] = CommunitySet(classic, existing.large)
    elif type_code == AttrType.LARGE_COMMUNITIES:
        if len(value) % 12:
            raise WireFormatError("bad LARGE_COMMUNITIES length")
        large = [
            LargeCommunity.from_bytes(value[i : i + 12])
            for i in range(0, len(value), 12)
        ]
        existing = fields.get("communities", CommunitySet.empty())
        fields["communities"] = CommunitySet(existing.classic, large)
    elif type_code == AttrType.ORIGINATOR_ID:
        if len(value) != 4:
            raise WireFormatError("bad ORIGINATOR_ID length")
        fields["originator_id"] = str(ipaddress.IPv4Address(value))
    elif type_code == AttrType.CLUSTER_LIST:
        if len(value) % 4:
            raise WireFormatError("bad CLUSTER_LIST length")
        fields["cluster_list"] = tuple(
            str(ipaddress.IPv4Address(value[i : i + 4]))
            for i in range(0, len(value), 4)
        )
    elif type_code == AttrType.MP_REACH_NLRI:
        afi, safi = struct.unpack("!HB", value[:3])
        next_hop_length = value[3]
        next_hop_bytes = value[4 : 4 + next_hop_length]
        nlri_offset = 4 + next_hop_length + 1  # +1 reserved octet
        if afi == Afi.IPV6 and safi == Safi.UNICAST:
            if next_hop_length >= 16:
                fields["_mp_next_hop"] = str(
                    ipaddress.IPv6Address(next_hop_bytes[:16])
                )
            reach_v6.extend(_decode_nlri_block(value[nlri_offset:], 6))
    elif type_code == AttrType.MP_UNREACH_NLRI:
        afi, safi = struct.unpack("!HB", value[:3])
        if afi == Afi.IPV6 and safi == Safi.UNICAST:
            unreach_v6.extend(_decode_nlri_block(value[3:], 6))
    else:
        extra.append((type_code, bytes(value)))


def _encode_as_path(path: ASPath) -> bytes:
    out = bytearray()
    for segment in path.segments:
        out.append(segment.kind)
        out.append(len(segment.asns))
        for asn in segment.asns:
            out += struct.pack("!I", int(asn))
    return bytes(out)


def _decode_as_path(data: bytes) -> ASPath:
    segments = []
    offset = 0
    while offset < len(data):
        if offset + 2 > len(data):
            raise WireFormatError("truncated AS_PATH segment header")
        kind, count = data[offset], data[offset + 1]
        offset += 2
        needed = count * 4
        if offset + needed > len(data):
            raise WireFormatError("truncated AS_PATH segment")
        asns = struct.unpack(f"!{count}I", data[offset : offset + needed])
        offset += needed
        try:
            segments.append(PathSegment(SegmentType(kind), asns))
        except ValueError as exc:
            raise WireFormatError(f"bad AS_PATH segment type {kind}") from exc
    return ASPath(segments)


def _encode_mp_reach(prefixes, attributes: PathAttributes) -> bytes:
    next_hop = attributes.next_hop
    if next_hop is None or ipaddress.ip_address(next_hop).version != 6:
        next_hop_bytes = bytes(16)
    else:
        next_hop_bytes = ipaddress.IPv6Address(next_hop).packed
    payload = (
        struct.pack("!HB", Afi.IPV6, Safi.UNICAST)
        + bytes([len(next_hop_bytes)])
        + next_hop_bytes
        + b"\x00"
        + b"".join(p.to_nlri() for p in prefixes)
    )
    return _encode_attribute(AttrType.MP_REACH_NLRI, payload)


def _encode_mp_unreach(prefixes) -> bytes:
    payload = struct.pack("!HB", Afi.IPV6, Safi.UNICAST) + b"".join(
        p.to_nlri() for p in prefixes
    )
    return _encode_attribute(AttrType.MP_UNREACH_NLRI, payload)
