"""BGP protocol model: messages, path attributes, communities, wire codec.

The model follows RFC 4271 (BGP-4), RFC 1997 (communities), RFC 8092
(large communities), RFC 4760 (multiprotocol NLRI for IPv6) and
RFC 6793 (4-byte AS numbers).  Everything the simulator emits can be
serialized to the real wire format and back; the MRT layer
(:mod:`repro.mrt`) reuses this codec for archive records.
"""

from repro.bgp.aspath import ASPath, PathSegment, SegmentType
from repro.bgp.attributes import PathAttributes, Origin
from repro.bgp.community import (
    Community,
    LargeCommunity,
    CommunitySet,
    WellKnownCommunity,
    NO_EXPORT,
    NO_ADVERTISE,
    NO_EXPORT_SUBCONFED,
    BLACKHOLE,
)
from repro.bgp.errors import BGPError, AttributeError_, WireFormatError
from repro.bgp.fsm import SessionFSM, FSMState, FSMEvent, FSMTimers
from repro.bgp.message import (
    BGPMessage,
    OpenMessage,
    UpdateMessage,
    KeepaliveMessage,
    NotificationMessage,
    RouteRefreshMessage,
)
from repro.bgp.wire import decode_message, encode_message

__all__ = [
    "ASPath",
    "PathSegment",
    "SegmentType",
    "PathAttributes",
    "Origin",
    "Community",
    "LargeCommunity",
    "CommunitySet",
    "WellKnownCommunity",
    "NO_EXPORT",
    "NO_ADVERTISE",
    "NO_EXPORT_SUBCONFED",
    "BLACKHOLE",
    "BGPError",
    "AttributeError_",
    "WireFormatError",
    "SessionFSM",
    "FSMState",
    "FSMEvent",
    "FSMTimers",
    "BGPMessage",
    "OpenMessage",
    "UpdateMessage",
    "KeepaliveMessage",
    "NotificationMessage",
    "RouteRefreshMessage",
    "decode_message",
    "encode_message",
]
