"""The BGP finite state machine (RFC 4271 §8).

The discrete-event simulator treats sessions as instantly established
(the paper's lab experiments all start from a converged network), but a
faithful reproduction of *session* dynamics — hold-timer expiry,
collision handling, flap-induced state churn — needs the real FSM.
:class:`SessionFSM` implements the six states and the event subset
relevant to this codebase; :class:`repro.simulator.session.BGPSession`
can be driven through it when session realism matters (see
``tests/test_bgp_fsm.py`` for the scripted RFC sequences).

States: Idle → Connect → Active ⇄ OpenSent → OpenConfirm → Established.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.bgp.constants import DEFAULT_HOLD_TIME
from repro.bgp.errors import BGPError


class FSMState(enum.Enum):
    """RFC 4271 §8.2.2 session states."""

    IDLE = "Idle"
    CONNECT = "Connect"
    ACTIVE = "Active"
    OPEN_SENT = "OpenSent"
    OPEN_CONFIRM = "OpenConfirm"
    ESTABLISHED = "Established"


class FSMEvent(enum.Enum):
    """The administrative / message / timer events we model."""

    MANUAL_START = "ManualStart"
    MANUAL_STOP = "ManualStop"
    TCP_CONNECTION_CONFIRMED = "TcpConnectionConfirmed"
    TCP_CONNECTION_FAILS = "TcpConnectionFails"
    BGP_OPEN_RECEIVED = "BGPOpen"
    KEEPALIVE_RECEIVED = "KeepAliveMsg"
    UPDATE_RECEIVED = "UpdateMsg"
    NOTIFICATION_RECEIVED = "NotifMsg"
    HOLD_TIMER_EXPIRED = "HoldTimer_Expires"
    KEEPALIVE_TIMER_EXPIRED = "KeepaliveTimer_Expires"
    CONNECT_RETRY_EXPIRED = "ConnectRetryTimer_Expires"


class FSMError(BGPError):
    """An event arrived that is illegal in the current state."""


@dataclass
class FSMTransition:
    """A record of one executed transition (for test assertions)."""

    event: FSMEvent
    from_state: FSMState
    to_state: FSMState

    def __str__(self) -> str:
        return (
            f"{self.from_state.value} --{self.event.value}--> "
            f"{self.to_state.value}"
        )


@dataclass
class FSMTimers:
    """Timer durations (seconds) as negotiated/configured."""

    hold_time: float = DEFAULT_HOLD_TIME
    keepalive_interval: float = DEFAULT_HOLD_TIME / 3
    connect_retry: float = 120.0

    def negotiated(self, peer_hold_time: float) -> "FSMTimers":
        """RFC 4271 §4.2: the session uses the smaller hold time."""
        hold = min(self.hold_time, peer_hold_time)
        return FSMTimers(
            hold_time=hold,
            keepalive_interval=hold / 3 if hold else 0.0,
            connect_retry=self.connect_retry,
        )


class SessionFSM:
    """One endpoint's BGP session state machine.

    The FSM is deliberately side-effect free: callers provide callbacks
    for the actions (send OPEN, send KEEPALIVE, drop TCP, flush routes)
    and drive timer events from their own clock.  This keeps it usable
    both from the discrete-event simulator and from unit tests.
    """

    def __init__(
        self,
        *,
        timers: "FSMTimers | None" = None,
        on_send_open: Optional[Callable[[], None]] = None,
        on_send_keepalive: Optional[Callable[[], None]] = None,
        on_established: Optional[Callable[[], None]] = None,
        on_session_drop: Optional[Callable[[str], None]] = None,
    ):
        self._state = FSMState.IDLE
        self.timers = timers or FSMTimers()
        self._on_send_open = on_send_open or (lambda: None)
        self._on_send_keepalive = on_send_keepalive or (lambda: None)
        self._on_established = on_established or (lambda: None)
        self._on_session_drop = on_session_drop or (lambda reason: None)
        self.transitions: List[FSMTransition] = []
        #: Counts of messages implied by the FSM actions.
        self.opens_sent = 0
        self.keepalives_sent = 0
        self.drops = 0

    @property
    def state(self) -> FSMState:
        """The current session state."""
        return self._state

    @property
    def is_established(self) -> bool:
        """True in the Established state."""
        return self._state == FSMState.ESTABLISHED

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------
    def handle(self, event: FSMEvent) -> FSMState:
        """Process one event; returns the new state.

        Unknown event/state combinations follow RFC 4271's catch-all:
        drop the session and return to Idle (rather than crashing) —
        except events that are simply no-ops in their state.
        """
        handler = _TRANSITIONS.get((self._state, event))
        if handler is None:
            if event in _IGNORABLE.get(self._state, ()):
                return self._state
            # RFC catch-all: release resources, drop to Idle.
            self._drop(f"unexpected {event.value} in {self._state.value}")
            return self._state
        handler(self)
        return self._state

    # ------------------------------------------------------------------
    # actions (invoked by the transition table)
    # ------------------------------------------------------------------
    def _move(self, to_state: FSMState, event: FSMEvent) -> None:
        self.transitions.append(
            FSMTransition(event, self._state, to_state)
        )
        self._state = to_state

    def _send_open(self) -> None:
        self.opens_sent += 1
        self._on_send_open()

    def _send_keepalive(self) -> None:
        self.keepalives_sent += 1
        self._on_send_keepalive()

    def _drop(self, reason: str) -> None:
        if self._state != FSMState.IDLE:
            self.transitions.append(
                FSMTransition(
                    FSMEvent.MANUAL_STOP
                    if reason == "manual stop"
                    else FSMEvent.NOTIFICATION_RECEIVED
                    if "notification" in reason
                    else FSMEvent.HOLD_TIMER_EXPIRED
                    if "hold" in reason
                    else FSMEvent.TCP_CONNECTION_FAILS,
                    self._state,
                    FSMState.IDLE,
                )
            )
        self._state = FSMState.IDLE
        self.drops += 1
        self._on_session_drop(reason)

    # transition implementations --------------------------------------
    def _start(self) -> None:
        self._move(FSMState.CONNECT, FSMEvent.MANUAL_START)

    def _stop(self) -> None:
        self._drop("manual stop")

    def _tcp_confirmed_connect(self) -> None:
        self._move(
            FSMState.OPEN_SENT, FSMEvent.TCP_CONNECTION_CONFIRMED
        )
        self._send_open()

    def _tcp_failed_connect(self) -> None:
        self._move(FSMState.ACTIVE, FSMEvent.TCP_CONNECTION_FAILS)

    def _retry_from_active(self) -> None:
        self._move(FSMState.CONNECT, FSMEvent.CONNECT_RETRY_EXPIRED)

    def _tcp_confirmed_active(self) -> None:
        self._move(
            FSMState.OPEN_SENT, FSMEvent.TCP_CONNECTION_CONFIRMED
        )
        self._send_open()

    def _open_received_opensent(self) -> None:
        self._move(FSMState.OPEN_CONFIRM, FSMEvent.BGP_OPEN_RECEIVED)
        self._send_keepalive()

    def _keepalive_received_openconfirm(self) -> None:
        self._move(FSMState.ESTABLISHED, FSMEvent.KEEPALIVE_RECEIVED)
        self._on_established()

    def _keepalive_established(self) -> None:
        # Hold timer restarts; state unchanged (recorded for tests).
        self._move(FSMState.ESTABLISHED, FSMEvent.KEEPALIVE_RECEIVED)

    def _update_established(self) -> None:
        self._move(FSMState.ESTABLISHED, FSMEvent.UPDATE_RECEIVED)

    def _keepalive_timer(self) -> None:
        self._send_keepalive()

    def _hold_expired(self) -> None:
        self._drop("hold timer expired")

    def _notification(self) -> None:
        self._drop("notification received")

    def _tcp_fails(self) -> None:
        self._drop("tcp connection failed")


_TRANSITIONS = {
    (FSMState.IDLE, FSMEvent.MANUAL_START): SessionFSM._start,
    (FSMState.CONNECT, FSMEvent.TCP_CONNECTION_CONFIRMED):
        SessionFSM._tcp_confirmed_connect,
    (FSMState.CONNECT, FSMEvent.TCP_CONNECTION_FAILS):
        SessionFSM._tcp_failed_connect,
    (FSMState.CONNECT, FSMEvent.MANUAL_STOP): SessionFSM._stop,
    (FSMState.ACTIVE, FSMEvent.CONNECT_RETRY_EXPIRED):
        SessionFSM._retry_from_active,
    (FSMState.ACTIVE, FSMEvent.TCP_CONNECTION_CONFIRMED):
        SessionFSM._tcp_confirmed_active,
    (FSMState.ACTIVE, FSMEvent.MANUAL_STOP): SessionFSM._stop,
    (FSMState.OPEN_SENT, FSMEvent.BGP_OPEN_RECEIVED):
        SessionFSM._open_received_opensent,
    (FSMState.OPEN_SENT, FSMEvent.HOLD_TIMER_EXPIRED):
        SessionFSM._hold_expired,
    (FSMState.OPEN_SENT, FSMEvent.TCP_CONNECTION_FAILS):
        SessionFSM._tcp_fails,
    (FSMState.OPEN_SENT, FSMEvent.MANUAL_STOP): SessionFSM._stop,
    (FSMState.OPEN_CONFIRM, FSMEvent.KEEPALIVE_RECEIVED):
        SessionFSM._keepalive_received_openconfirm,
    (FSMState.OPEN_CONFIRM, FSMEvent.HOLD_TIMER_EXPIRED):
        SessionFSM._hold_expired,
    (FSMState.OPEN_CONFIRM, FSMEvent.NOTIFICATION_RECEIVED):
        SessionFSM._notification,
    (FSMState.OPEN_CONFIRM, FSMEvent.MANUAL_STOP): SessionFSM._stop,
    (FSMState.ESTABLISHED, FSMEvent.KEEPALIVE_RECEIVED):
        SessionFSM._keepalive_established,
    (FSMState.ESTABLISHED, FSMEvent.UPDATE_RECEIVED):
        SessionFSM._update_established,
    (FSMState.ESTABLISHED, FSMEvent.KEEPALIVE_TIMER_EXPIRED):
        SessionFSM._keepalive_timer,
    (FSMState.ESTABLISHED, FSMEvent.HOLD_TIMER_EXPIRED):
        SessionFSM._hold_expired,
    (FSMState.ESTABLISHED, FSMEvent.NOTIFICATION_RECEIVED):
        SessionFSM._notification,
    (FSMState.ESTABLISHED, FSMEvent.TCP_CONNECTION_FAILS):
        SessionFSM._tcp_fails,
    (FSMState.ESTABLISHED, FSMEvent.MANUAL_STOP): SessionFSM._stop,
}

#: Events that are harmless no-ops per state (rather than FSM errors).
_IGNORABLE = {
    FSMState.IDLE: (
        FSMEvent.MANUAL_STOP,
        FSMEvent.TCP_CONNECTION_FAILS,
        FSMEvent.CONNECT_RETRY_EXPIRED,
        FSMEvent.HOLD_TIMER_EXPIRED,
        FSMEvent.KEEPALIVE_TIMER_EXPIRED,
        FSMEvent.NOTIFICATION_RECEIVED,
    ),
    FSMState.CONNECT: (FSMEvent.KEEPALIVE_TIMER_EXPIRED,),
    FSMState.ACTIVE: (FSMEvent.KEEPALIVE_TIMER_EXPIRED,),
    FSMState.OPEN_SENT: (FSMEvent.KEEPALIVE_TIMER_EXPIRED,),
    FSMState.OPEN_CONFIRM: (FSMEvent.KEEPALIVE_TIMER_EXPIRED,),
    FSMState.ESTABLISHED: (FSMEvent.MANUAL_START,),
}


def establish(fsm: SessionFSM) -> SessionFSM:
    """Drive *fsm* through the happy path to Established (test helper)."""
    fsm.handle(FSMEvent.MANUAL_START)
    fsm.handle(FSMEvent.TCP_CONNECTION_CONFIRMED)
    fsm.handle(FSMEvent.BGP_OPEN_RECEIVED)
    fsm.handle(FSMEvent.KEEPALIVE_RECEIVED)
    if not fsm.is_established:
        raise FSMError(f"failed to establish: stuck in {fsm.state}")
    return fsm
