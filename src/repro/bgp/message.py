"""BGP message classes.

Messages are immutable value objects.  :class:`UpdateMessage` is the
star of the show: the paper's entire analysis is a taxonomy of UPDATE
messages.  A single UPDATE may carry both withdrawals and
announcements; the analysis layer splits them into per-prefix
observations.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bgp.attributes import PathAttributes
from repro.bgp.constants import (
    BGP_VERSION,
    DEFAULT_HOLD_TIME,
    MessageType,
    NotificationCode,
)
from repro.bgp.errors import MessageError
from repro.netbase.asn import ASN
from repro.netbase.prefix import Prefix


class BGPMessage:
    """Common base for the four BGP message types."""

    __slots__ = ()

    #: Subclasses set the RFC 4271 type code.
    TYPE: MessageType

    @property
    def type(self) -> MessageType:
        """The message type code."""
        return self.TYPE


class OpenMessage(BGPMessage):
    """A BGP OPEN message (RFC 4271 §4.2)."""

    TYPE = MessageType.OPEN

    __slots__ = ("_asn", "_hold_time", "_router_id", "_four_octet_asn")

    def __init__(
        self,
        asn: int,
        router_id: str,
        hold_time: int = DEFAULT_HOLD_TIME,
        *,
        four_octet_asn: bool = True,
    ):
        self._asn = ASN(asn)
        if not 0 <= hold_time <= 0xFFFF:
            raise MessageError(f"hold time out of range: {hold_time}")
        if hold_time in (1, 2):
            raise MessageError(f"hold time 1-2 forbidden by RFC 4271: {hold_time}")
        self._hold_time = hold_time
        self._router_id = router_id
        self._four_octet_asn = bool(four_octet_asn)

    @property
    def asn(self) -> ASN:
        """The speaker's AS number."""
        return self._asn

    @property
    def hold_time(self) -> int:
        """Proposed hold time in seconds."""
        return self._hold_time

    @property
    def router_id(self) -> str:
        """BGP identifier in IPv4 dotted form."""
        return self._router_id

    @property
    def four_octet_asn(self) -> bool:
        """Whether the speaker advertises RFC 6793 capability."""
        return self._four_octet_asn

    @property
    def version(self) -> int:
        """Always 4."""
        return BGP_VERSION

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OpenMessage):
            return NotImplemented
        return (
            self._asn == other._asn
            and self._hold_time == other._hold_time
            and self._router_id == other._router_id
            and self._four_octet_asn == other._four_octet_asn
        )

    def __hash__(self) -> int:
        return hash((self._asn, self._hold_time, self._router_id))

    def __repr__(self) -> str:
        return (
            f"OpenMessage(asn={int(self._asn)}, router_id='{self._router_id}',"
            f" hold_time={self._hold_time})"
        )


class UpdateMessage(BGPMessage):
    """A BGP UPDATE: withdrawals plus announcements sharing attributes."""

    TYPE = MessageType.UPDATE

    __slots__ = ("_announced", "_withdrawn", "_attributes")

    def __init__(
        self,
        *,
        announced: Sequence[Prefix] = (),
        withdrawn: Sequence[Prefix] = (),
        attributes: Optional[PathAttributes] = None,
    ):
        self._announced = tuple(announced)
        self._withdrawn = tuple(withdrawn)
        self._attributes = attributes
        if self._announced and attributes is None:
            raise MessageError("announcement without path attributes")
        if not self._announced and not self._withdrawn:
            raise MessageError("UPDATE with neither NLRI nor withdrawals")
        for prefix in self._announced + self._withdrawn:
            if not isinstance(prefix, Prefix):
                raise MessageError(f"not a Prefix: {prefix!r}")

    @classmethod
    def announce(
        cls, prefixes: "Sequence[Prefix] | Prefix", attributes: PathAttributes
    ) -> "UpdateMessage":
        """Build a pure announcement."""
        if isinstance(prefixes, Prefix):
            prefixes = (prefixes,)
        return cls(announced=prefixes, attributes=attributes)

    @classmethod
    def withdraw(cls, prefixes: "Sequence[Prefix] | Prefix") -> "UpdateMessage":
        """Build a pure withdrawal."""
        if isinstance(prefixes, Prefix):
            prefixes = (prefixes,)
        return cls(withdrawn=prefixes)

    @property
    def announced(self) -> "tuple[Prefix, ...]":
        """Prefixes announced with :attr:`attributes`."""
        return self._announced

    @property
    def withdrawn(self) -> "tuple[Prefix, ...]":
        """Prefixes withdrawn."""
        return self._withdrawn

    @property
    def attributes(self) -> Optional[PathAttributes]:
        """Shared path attributes, or None for a pure withdrawal."""
        return self._attributes

    @property
    def is_announcement(self) -> bool:
        """True when at least one prefix is announced."""
        return bool(self._announced)

    @property
    def is_withdrawal(self) -> bool:
        """True when at least one prefix is withdrawn."""
        return bool(self._withdrawn)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UpdateMessage):
            return NotImplemented
        return (
            self._announced == other._announced
            and self._withdrawn == other._withdrawn
            and self._attributes == other._attributes
        )

    def __hash__(self) -> int:
        return hash((self._announced, self._withdrawn, self._attributes))

    def __repr__(self) -> str:
        parts = []
        if self._announced:
            parts.append(f"announced={[str(p) for p in self._announced]}")
        if self._withdrawn:
            parts.append(f"withdrawn={[str(p) for p in self._withdrawn]}")
        if self._attributes is not None:
            parts.append(f"attributes={self._attributes!r}")
        return f"UpdateMessage({', '.join(parts)})"


class RouteRefreshMessage(BGPMessage):
    """A ROUTE-REFRESH request (RFC 2918).

    Asks the peer to re-advertise its Adj-RIB-Out for one address
    family.  The simulator's :meth:`Router.refresh_exports` models the
    *response* side; this message type completes the wire vocabulary
    so archives containing refresh requests parse correctly.
    """

    TYPE = MessageType.ROUTE_REFRESH

    __slots__ = ("_afi", "_safi")

    def __init__(self, afi: int = 1, safi: int = 1):
        if not 0 <= afi <= 0xFFFF:
            raise MessageError(f"AFI out of range: {afi}")
        if not 0 <= safi <= 0xFF:
            raise MessageError(f"SAFI out of range: {safi}")
        self._afi = afi
        self._safi = safi

    @property
    def afi(self) -> int:
        """Address family identifier (1 = IPv4, 2 = IPv6)."""
        return self._afi

    @property
    def safi(self) -> int:
        """Subsequent address family identifier (1 = unicast)."""
        return self._safi

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RouteRefreshMessage):
            return NotImplemented
        return self._afi == other._afi and self._safi == other._safi

    def __hash__(self) -> int:
        return hash((MessageType.ROUTE_REFRESH, self._afi, self._safi))

    def __repr__(self) -> str:
        return f"RouteRefreshMessage(afi={self._afi}, safi={self._safi})"


class KeepaliveMessage(BGPMessage):
    """A KEEPALIVE: header only, no body."""

    TYPE = MessageType.KEEPALIVE

    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KeepaliveMessage)

    def __hash__(self) -> int:
        return hash(MessageType.KEEPALIVE)

    def __repr__(self) -> str:
        return "KeepaliveMessage()"


class NotificationMessage(BGPMessage):
    """A NOTIFICATION terminating the session (RFC 4271 §4.5)."""

    TYPE = MessageType.NOTIFICATION

    __slots__ = ("_code", "_subcode", "_data")

    def __init__(self, code: int, subcode: int = 0, data: bytes = b""):
        self._code = NotificationCode(code)
        if not 0 <= subcode <= 255:
            raise MessageError(f"subcode out of range: {subcode}")
        self._subcode = subcode
        self._data = bytes(data)

    @property
    def code(self) -> NotificationCode:
        """Major error code."""
        return self._code

    @property
    def subcode(self) -> int:
        """Error subcode (code-specific)."""
        return self._subcode

    @property
    def data(self) -> bytes:
        """Diagnostic payload."""
        return self._data

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NotificationMessage):
            return NotImplemented
        return (
            self._code == other._code
            and self._subcode == other._subcode
            and self._data == other._data
        )

    def __hash__(self) -> int:
        return hash((self._code, self._subcode, self._data))

    def __repr__(self) -> str:
        return (
            f"NotificationMessage(code={self._code.name},"
            f" subcode={self._subcode})"
        )
