"""Exception hierarchy for the BGP protocol model."""


class BGPError(Exception):
    """Base class for all BGP model errors."""


class AttributeError_(BGPError, ValueError):
    """A path attribute is malformed or violates protocol constraints.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class WireFormatError(BGPError, ValueError):
    """Bytes on the wire do not decode as a valid BGP message."""


class MessageError(BGPError, ValueError):
    """A BGP message violates structural constraints (e.g. size)."""
