"""Protocol constants from RFC 4271 and the IANA BGP registries."""

from __future__ import annotations

import enum

#: Fixed BGP header: 16-byte marker + 2-byte length + 1-byte type.
HEADER_LENGTH = 19
#: All-ones marker required by RFC 4271 §4.1.
MARKER = b"\xff" * 16
#: Maximum message size permitted by RFC 4271.
MAX_MESSAGE_LENGTH = 4096
#: BGP version negotiated in OPEN.
BGP_VERSION = 4
#: Default hold time used by our simulated speakers (seconds).
DEFAULT_HOLD_TIME = 90


class MessageType(enum.IntEnum):
    """BGP message type codes (RFC 4271 §4.1)."""

    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4
    ROUTE_REFRESH = 5  # RFC 2918


class AttrType(enum.IntEnum):
    """Path attribute type codes (IANA BGP Path Attributes registry)."""

    ORIGIN = 1
    AS_PATH = 2
    NEXT_HOP = 3
    MULTI_EXIT_DISC = 4
    LOCAL_PREF = 5
    ATOMIC_AGGREGATE = 6
    AGGREGATOR = 7
    COMMUNITIES = 8
    ORIGINATOR_ID = 9
    CLUSTER_LIST = 10
    MP_REACH_NLRI = 14
    MP_UNREACH_NLRI = 15
    AS4_PATH = 17
    AS4_AGGREGATOR = 18
    LARGE_COMMUNITIES = 32


class AttrFlag(enum.IntFlag):
    """Path attribute flag bits (RFC 4271 §4.3)."""

    OPTIONAL = 0x80
    TRANSITIVE = 0x40
    PARTIAL = 0x20
    EXTENDED_LENGTH = 0x10


#: Canonical flags per attribute type for encoding.  Decoders are more
#: permissive (they only check the OPTIONAL/TRANSITIVE combination when
#: the attribute is recognized).
CANONICAL_FLAGS = {
    AttrType.ORIGIN: AttrFlag.TRANSITIVE,
    AttrType.AS_PATH: AttrFlag.TRANSITIVE,
    AttrType.NEXT_HOP: AttrFlag.TRANSITIVE,
    AttrType.MULTI_EXIT_DISC: AttrFlag.OPTIONAL,
    AttrType.LOCAL_PREF: AttrFlag.TRANSITIVE,
    AttrType.ATOMIC_AGGREGATE: AttrFlag.TRANSITIVE,
    AttrType.AGGREGATOR: AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE,
    AttrType.COMMUNITIES: AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE,
    AttrType.ORIGINATOR_ID: AttrFlag.OPTIONAL,
    AttrType.CLUSTER_LIST: AttrFlag.OPTIONAL,
    AttrType.MP_REACH_NLRI: AttrFlag.OPTIONAL,
    AttrType.MP_UNREACH_NLRI: AttrFlag.OPTIONAL,
    AttrType.AS4_PATH: AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE,
    AttrType.AS4_AGGREGATOR: AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE,
    AttrType.LARGE_COMMUNITIES: AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE,
}


class OriginCode(enum.IntEnum):
    """ORIGIN attribute values (RFC 4271 §5.1.1)."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class Afi(enum.IntEnum):
    """Address family identifiers (subset used here)."""

    IPV4 = 1
    IPV6 = 2


class Safi(enum.IntEnum):
    """Subsequent address family identifiers (subset)."""

    UNICAST = 1
    MULTICAST = 2


class NotificationCode(enum.IntEnum):
    """NOTIFICATION error codes (RFC 4271 §4.5)."""

    MESSAGE_HEADER_ERROR = 1
    OPEN_MESSAGE_ERROR = 2
    UPDATE_MESSAGE_ERROR = 3
    HOLD_TIMER_EXPIRED = 4
    FSM_ERROR = 5
    CEASE = 6
