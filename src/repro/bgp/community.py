"""BGP community attribute values.

RFC 1997 communities are 32-bit values conventionally written
``ASN:value`` where the high 16 bits identify the AS that defined the
semantics.  RFC 8092 large communities are 96-bit ``global:data1:data2``
triples.  The paper's central observation hinges on communities being
*transitive*: unrecognized values are propagated by default, so a tag
applied deep inside one AS can trigger update messages several ASes
away.

:class:`CommunitySet` is the immutable, order-insensitive container the
rest of the system uses; equality of two sets is exactly the
"community attribute changed?" test of the announcement-type classifier
(§5 of the paper).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

from repro.bgp.errors import AttributeError_


class WellKnownCommunity(enum.IntEnum):
    """Well-known community values from the IANA registry."""

    GRACEFUL_SHUTDOWN = 0xFFFF0000
    ACCEPT_OWN = 0xFFFF0001
    BLACKHOLE = 0xFFFF029A  # RFC 7999: 65535:666
    NO_EXPORT = 0xFFFFFF01
    NO_ADVERTISE = 0xFFFFFF02
    NO_EXPORT_SUBCONFED = 0xFFFFFF03
    NO_PEER = 0xFFFFFF04


class Community:
    """A classic RFC 1997 community (32 bits, rendered ``asn:value``).

    >>> Community.parse("3356:300")
    Community('3356:300')
    >>> Community(0xFFFFFF01).is_well_known
    True
    """

    __slots__ = ("_value",)

    def __init__(self, value: int):
        if not 0 <= value <= 0xFFFFFFFF:
            raise AttributeError_(f"community out of range: {value}")
        self._value = value

    @classmethod
    def parse(cls, text: str) -> "Community":
        """Parse ``asn:value`` notation."""
        high_text, sep, low_text = text.strip().partition(":")
        if not sep:
            raise AttributeError_(f"malformed community: {text!r}")
        try:
            high, low = int(high_text), int(low_text)
        except ValueError as exc:
            raise AttributeError_(f"malformed community: {text!r}") from exc
        if not (0 <= high <= 0xFFFF and 0 <= low <= 0xFFFF):
            raise AttributeError_(f"community field out of range: {text!r}")
        return cls((high << 16) | low)

    @classmethod
    def of(cls, asn: int, value: int) -> "Community":
        """Build from the two 16-bit halves."""
        if not (0 <= asn <= 0xFFFF and 0 <= value <= 0xFFFF):
            raise AttributeError_(f"community field out of range: {asn}:{value}")
        return cls((asn << 16) | value)

    @property
    def value(self) -> int:
        """The raw 32-bit value."""
        return self._value

    @property
    def asn(self) -> int:
        """The high 16 bits — the AS that defines the semantics."""
        return self._value >> 16

    @property
    def local_value(self) -> int:
        """The low 16 bits — the AS-specific value."""
        return self._value & 0xFFFF

    @property
    def is_well_known(self) -> bool:
        """True for values in the reserved 0xFFFF0000–0xFFFFFFFF block."""
        return self.asn == 0xFFFF

    @property
    def is_reserved_low(self) -> bool:
        """True for values in the reserved 0x00000000–0x0000FFFF block."""
        return self.asn == 0

    def to_bytes(self) -> bytes:
        """Encode as the 4-byte wire form."""
        return self._value.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Community":
        """Decode a 4-byte wire form."""
        if len(data) != 4:
            raise AttributeError_(f"community must be 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Community):
            return NotImplemented
        return self._value == other._value

    def __lt__(self, other: "Community") -> bool:
        if not isinstance(other, Community):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        # The raw value, not hash(("community", value)): this runs for
        # every community-set membership probe on the simulator's hot
        # path, and the tuple allocation dominated the lookup.  Nothing
        # output-facing iterates the backing frozensets unsorted, so
        # the element order change is invisible.
        return self._value

    def __repr__(self) -> str:
        return f"Community('{self}')"

    def __str__(self) -> str:
        return f"{self.asn}:{self.local_value}"


NO_EXPORT = Community(WellKnownCommunity.NO_EXPORT)
NO_ADVERTISE = Community(WellKnownCommunity.NO_ADVERTISE)
NO_EXPORT_SUBCONFED = Community(WellKnownCommunity.NO_EXPORT_SUBCONFED)
BLACKHOLE = Community(WellKnownCommunity.BLACKHOLE)


class LargeCommunity:
    """An RFC 8092 large community (three 32-bit fields).

    >>> LargeCommunity.parse("64496:1:2")
    LargeCommunity('64496:1:2')
    """

    __slots__ = ("_global_admin", "_data1", "_data2")

    def __init__(self, global_admin: int, data1: int, data2: int):
        for name, field in (
            ("global", global_admin), ("data1", data1), ("data2", data2),
        ):
            if not 0 <= field <= 0xFFFFFFFF:
                raise AttributeError_(f"large community {name} out of range: {field}")
        self._global_admin = global_admin
        self._data1 = data1
        self._data2 = data2

    @classmethod
    def parse(cls, text: str) -> "LargeCommunity":
        """Parse ``global:data1:data2`` notation."""
        parts = text.strip().split(":")
        if len(parts) != 3:
            raise AttributeError_(f"malformed large community: {text!r}")
        try:
            fields = [int(part) for part in parts]
        except ValueError as exc:
            raise AttributeError_(f"malformed large community: {text!r}") from exc
        return cls(*fields)

    @property
    def global_admin(self) -> int:
        """Global administrator field (an ASN by convention)."""
        return self._global_admin

    @property
    def data1(self) -> int:
        """First local data field."""
        return self._data1

    @property
    def data2(self) -> int:
        """Second local data field."""
        return self._data2

    def to_bytes(self) -> bytes:
        """Encode as the 12-byte wire form."""
        return (
            self._global_admin.to_bytes(4, "big")
            + self._data1.to_bytes(4, "big")
            + self._data2.to_bytes(4, "big")
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "LargeCommunity":
        """Decode a 12-byte wire form."""
        if len(data) != 12:
            raise AttributeError_(
                f"large community must be 12 bytes, got {len(data)}"
            )
        return cls(
            int.from_bytes(data[0:4], "big"),
            int.from_bytes(data[4:8], "big"),
            int.from_bytes(data[8:12], "big"),
        )

    def _key(self) -> tuple:
        return (self._global_admin, self._data1, self._data2)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LargeCommunity):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other: "LargeCommunity") -> bool:
        if not isinstance(other, LargeCommunity):
            return NotImplemented
        return self._key() < other._key()

    def __hash__(self) -> int:
        return hash(("large", self._key()))

    def __repr__(self) -> str:
        return f"LargeCommunity('{self}')"

    def __str__(self) -> str:
        return f"{self._global_admin}:{self._data1}:{self._data2}"


class CommunitySet:
    """An immutable set of classic and large communities.

    The BGP wire format carries communities as a list, but RFC 1997
    semantics (and every implementation's RIB comparison) treat them as
    a set: order and duplication do not matter.  The classifier's
    "community changed?" predicate is therefore plain set equality.
    """

    __slots__ = ("_classic", "_large")

    def __init__(
        self,
        classic: Iterable[Community] = (),
        large: Iterable[LargeCommunity] = (),
    ):
        self._classic = frozenset(classic)
        self._large = frozenset(large)
        for item in self._classic:
            if not isinstance(item, Community):
                raise AttributeError_(f"not a Community: {item!r}")
        for item in self._large:
            if not isinstance(item, LargeCommunity):
                raise AttributeError_(f"not a LargeCommunity: {item!r}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "CommunitySet":
        """Parse a whitespace-separated list of community strings."""
        classic, large = [], []
        for token in text.split():
            if token.count(":") == 2:
                large.append(LargeCommunity.parse(token))
            else:
                classic.append(Community.parse(token))
        return cls(classic, large)

    @classmethod
    def empty(cls) -> "CommunitySet":
        """The canonical empty set."""
        return _EMPTY

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def classic(self) -> frozenset:
        """The RFC 1997 communities."""
        return self._classic

    @property
    def large(self) -> frozenset:
        """The RFC 8092 large communities."""
        return self._large

    def is_empty(self) -> bool:
        """True when no community of either kind is present."""
        return not self._classic and not self._large

    def __len__(self) -> int:
        return len(self._classic) + len(self._large)

    def __iter__(self) -> Iterator:
        yield from sorted(self._classic)
        yield from sorted(self._large)

    def __contains__(self, item: object) -> bool:
        return item in self._classic or item in self._large

    # ------------------------------------------------------------------
    # set algebra (each returns a new CommunitySet)
    # ------------------------------------------------------------------
    @classmethod
    def _make(cls, classic: frozenset, large: frozenset) -> "CommunitySet":
        """Internal constructor for already-validated member sets."""
        made = cls.__new__(cls)
        made._classic = classic
        made._large = large
        return made

    def add(self, *items: "Community | LargeCommunity") -> "CommunitySet":
        """Return a new set with *items* included.

        Returns ``self`` when every item is already present — the
        common case on policy re-application, and it lets equality
        checks downstream hit the identity fast path.
        """
        if all(
            item in self._classic or item in self._large for item in items
        ):
            return self
        classic = set(self._classic)
        large = set(self._large)
        for item in items:
            if isinstance(item, Community):
                classic.add(item)
            elif isinstance(item, LargeCommunity):
                large.add(item)
            else:
                raise AttributeError_(f"not a community: {item!r}")
        return CommunitySet._make(frozenset(classic), frozenset(large))

    def remove(self, *items: "Community | LargeCommunity") -> "CommunitySet":
        """Return a new set with *items* excluded (missing ones ignored).

        Returns ``self`` when nothing is present to remove.
        """
        if not any(
            item in self._classic or item in self._large for item in items
        ):
            return self
        classic = set(self._classic)
        large = set(self._large)
        for item in items:
            classic.discard(item)  # type: ignore[arg-type]
            large.discard(item)  # type: ignore[arg-type]
        return CommunitySet._make(frozenset(classic), frozenset(large))

    def union(self, other: "CommunitySet") -> "CommunitySet":
        """Set union (returns ``self`` when it already covers *other*)."""
        if other._classic <= self._classic and other._large <= self._large:
            return self
        return CommunitySet._make(
            self._classic | other._classic, self._large | other._large
        )

    def filter(self, predicate) -> "CommunitySet":
        """Return the subset of communities for which *predicate* is true."""
        return CommunitySet._make(
            frozenset(c for c in self._classic if predicate(c)),
            frozenset(c for c in self._large if predicate(c)),
        )

    def without_asn(self, asn: int) -> "CommunitySet":
        """Drop every community whose administrator field equals *asn*.

        Returns ``self`` when no community is administered by *asn*.
        """
        if not any(c.asn == asn for c in self._classic) and not any(
            c.global_admin == asn for c in self._large
        ):
            return self
        return CommunitySet._make(
            frozenset(c for c in self._classic if c.asn != asn),
            frozenset(c for c in self._large if c.global_admin != asn),
        )

    def only_asn(self, asn: int) -> "CommunitySet":
        """Keep only communities administered by *asn*."""
        return CommunitySet(
            (c for c in self._classic if c.asn == asn),
            (c for c in self._large if c.global_admin == asn),
        )

    def cleared(self) -> "CommunitySet":
        """Return the empty set (explicit name for policy code)."""
        return _EMPTY

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunitySet):
            return NotImplemented
        return self._classic == other._classic and self._large == other._large

    def __hash__(self) -> int:
        return hash((self._classic, self._large))

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __repr__(self) -> str:
        return f"CommunitySet('{self}')"

    def __str__(self) -> str:
        return " ".join(str(item) for item in self)


_EMPTY = CommunitySet()
