"""The path-attribute set carried by a BGP UPDATE.

:class:`PathAttributes` is an immutable value object.  Routers in the
simulator derive new attribute sets through the ``with_*`` methods while
policies use :meth:`replace`.  Immutability is essential: Adj-RIB-In,
Loc-RIB and Adj-RIB-Out may all reference the same object, and the
duplicate-detection logic (the crux of the paper) relies on value
equality between the attribute set previously advertised to a peer and
the one about to be advertised.

Equality semantics deserve a note: :meth:`PathAttributes.__eq__`
compares every field *including* next-hop and MED.  The classifier in
:mod:`repro.analysis.classify` deliberately compares only AS path and
communities, because route collectors see the next-hop of their
immediate peer which rarely changes; the paper's `nn` category is
defined on (path, communities) and then manually checked against MED
(§5).  We expose :meth:`same_path_and_communities` for that purpose.
"""

from __future__ import annotations

from typing import Optional

from repro.bgp.aspath import ASPath
from repro.bgp.community import CommunitySet
from repro.bgp.constants import OriginCode
from repro.bgp.errors import AttributeError_
from repro.netbase.asn import ASN

#: Re-export under the name used by most call sites.
Origin = OriginCode


def _check_metric_range(value: "Optional[int]", label: str) -> None:
    """Shared MED/LOCAL_PREF range check (used by __init__ and replace)."""
    if value is not None and not 0 <= value <= 0xFFFFFFFF:
        raise AttributeError_(f"{label} out of range: {value}")


class PathAttributes:
    """Immutable set of BGP path attributes for one route.

    Only the attributes relevant to the reproduction are modeled as
    first-class fields; anything else would be dead weight.  The wire
    codec still round-trips unknown transitive attributes through
    ``extra`` so archives survive untouched.
    """

    __slots__ = (
        "_origin",
        "_as_path",
        "_next_hop",
        "_med",
        "_local_pref",
        "_communities",
        "_atomic_aggregate",
        "_aggregator",
        "_originator_id",
        "_cluster_list",
        "_extra",
        "_key_cache",
    )

    def __init__(
        self,
        *,
        origin: OriginCode = OriginCode.IGP,
        as_path: Optional[ASPath] = None,
        next_hop: Optional[str] = None,
        med: Optional[int] = None,
        local_pref: Optional[int] = None,
        communities: Optional[CommunitySet] = None,
        atomic_aggregate: bool = False,
        aggregator: "tuple[ASN, str] | None" = None,
        originator_id: Optional[str] = None,
        cluster_list: "tuple[str, ...]" = (),
        extra: "tuple[tuple[int, bytes], ...]" = (),
    ):
        self._origin = OriginCode(origin)
        self._as_path = as_path if as_path is not None else ASPath.empty()
        self._next_hop = next_hop
        self._med = med
        self._local_pref = local_pref
        self._communities = (
            communities if communities is not None else CommunitySet.empty()
        )
        self._atomic_aggregate = bool(atomic_aggregate)
        self._aggregator = aggregator
        self._originator_id = originator_id
        self._cluster_list = tuple(cluster_list)
        self._extra = tuple(sorted(extra))
        _check_metric_range(med, "MED")
        _check_metric_range(local_pref, "LOCAL_PREF")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def origin(self) -> OriginCode:
        """ORIGIN attribute."""
        return self._origin

    @property
    def as_path(self) -> ASPath:
        """AS_PATH attribute."""
        return self._as_path

    @property
    def next_hop(self) -> Optional[str]:
        """NEXT_HOP attribute as a text address (None before egress)."""
        return self._next_hop

    @property
    def med(self) -> Optional[int]:
        """MULTI_EXIT_DISC attribute, or None when absent."""
        return self._med

    @property
    def local_pref(self) -> Optional[int]:
        """LOCAL_PREF attribute (iBGP only), or None when absent."""
        return self._local_pref

    @property
    def communities(self) -> CommunitySet:
        """The community attribute (classic + large)."""
        return self._communities

    @property
    def atomic_aggregate(self) -> bool:
        """ATOMIC_AGGREGATE presence flag."""
        return self._atomic_aggregate

    @property
    def aggregator(self) -> "tuple[ASN, str] | None":
        """AGGREGATOR attribute as (ASN, router-id), or None."""
        return self._aggregator

    @property
    def originator_id(self) -> Optional[str]:
        """ORIGINATOR_ID (route reflection), or None."""
        return self._originator_id

    @property
    def cluster_list(self) -> "tuple[str, ...]":
        """CLUSTER_LIST (route reflection), possibly empty."""
        return self._cluster_list

    @property
    def extra(self) -> "tuple[tuple[int, bytes], ...]":
        """Unknown transitive attributes carried opaquely."""
        return self._extra

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def replace(self, **changes) -> "PathAttributes":
        """Return a copy with the named fields replaced.

        Accepts the constructor keyword names.  ``None`` is a valid new
        value for optional fields (it clears them).

        This is the simulator's hottest allocation site, so the clone
        copies slots directly and normalizes/validates only the fields
        that actually change — unchanged fields are already normal.
        """
        clone = PathAttributes.__new__(PathAttributes)
        clone._origin = self._origin
        clone._as_path = self._as_path
        clone._next_hop = self._next_hop
        clone._med = self._med
        clone._local_pref = self._local_pref
        clone._communities = self._communities
        clone._atomic_aggregate = self._atomic_aggregate
        clone._aggregator = self._aggregator
        clone._originator_id = self._originator_id
        clone._cluster_list = self._cluster_list
        clone._extra = self._extra
        for field, value in changes.items():
            if field == "next_hop":
                clone._next_hop = value
            elif field == "med":
                _check_metric_range(value, "MED")
                clone._med = value
            elif field == "local_pref":
                _check_metric_range(value, "LOCAL_PREF")
                clone._local_pref = value
            elif field == "communities":
                clone._communities = (
                    value if value is not None else CommunitySet.empty()
                )
            elif field == "as_path":
                clone._as_path = (
                    value if value is not None else ASPath.empty()
                )
            elif field == "origin":
                clone._origin = OriginCode(value)
            elif field == "atomic_aggregate":
                clone._atomic_aggregate = bool(value)
            elif field == "aggregator":
                clone._aggregator = value
            elif field == "originator_id":
                clone._originator_id = value
            elif field == "cluster_list":
                clone._cluster_list = tuple(value)
            elif field == "extra":
                clone._extra = tuple(sorted(value))
            else:
                known = {slot.lstrip("_") for slot in self.__slots__}
                unknown = sorted(set(changes) - known)
                raise AttributeError_(
                    f"unknown attribute fields: {unknown}"
                )
        return clone

    def with_communities(self, communities: CommunitySet) -> "PathAttributes":
        """Replace the community attribute."""
        return self.replace(communities=communities)

    def with_prepend(self, asn: int, count: int = 1) -> "PathAttributes":
        """Prepend *asn* to the AS path *count* times."""
        return self.replace(as_path=self._as_path.prepend(asn, count))

    def with_next_hop(self, next_hop: str) -> "PathAttributes":
        """Rewrite NEXT_HOP (e.g. next-hop-self on an eBGP egress)."""
        return self.replace(next_hop=next_hop)

    # ------------------------------------------------------------------
    # comparison helpers used by the analysis layer
    # ------------------------------------------------------------------
    def same_path_and_communities(self, other: "PathAttributes") -> bool:
        """True when AS path and community attribute are both equal.

        This is the measurement-level equality of the paper's `nn`
        announcement type: the collector cannot see intra-AS causes, so
        two consecutive announcements with equal path and communities
        count as "no change" regardless of next-hop/MED.
        """
        return (
            self._as_path == other._as_path
            and self._communities == other._communities
        )

    def _key(self) -> tuple:
        # Cached (the slot stays unset until first use): duplicate
        # detection compares attribute sets on every advertisement.
        try:
            return self._key_cache
        except AttributeError:
            self._key_cache = (
                self._origin,
                self._as_path,
                self._next_hop,
                self._med,
                self._local_pref,
                self._communities,
                self._atomic_aggregate,
                self._aggregator,
                self._originator_id,
                self._cluster_list,
                self._extra,
            )
            return self._key_cache

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PathAttributes):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        parts = [f"as_path='{self._as_path}'"]
        if self._next_hop is not None:
            parts.append(f"next_hop='{self._next_hop}'")
        if self._med is not None:
            parts.append(f"med={self._med}")
        if self._local_pref is not None:
            parts.append(f"local_pref={self._local_pref}")
        if not self._communities.is_empty():
            parts.append(f"communities='{self._communities}'")
        return f"PathAttributes({', '.join(parts)})"
