"""Crash-consistent durable writes, shared by every on-disk record.

Four modules used to carry their own copy of the tmp-then-rename
idiom (the sweep cache store, the manifest save, the queue backend's
todo and done writers) — none of them fsynced, none of them detected a
torn write on the read side, and a writer killed between the tmp
write and the rename left ``.tmp.<pid>`` orphans behind forever.
This module is the one implementation they all share now:

* :func:`atomic_write` — frame the payload with a header and a
  trailing crc32 checksum, write it to a uniquely-named temporary in
  the same directory, ``flush`` + ``fsync``, then ``os.replace``.  A
  reader can never observe a half-written file under the final name;
  a torn *temporary* (the writer died mid-write) is left as an orphan
  for :func:`sweep_orphan_tmps` / ``repro doctor`` to clean up.
* :func:`read_durable` — the matching reader: verifies the checksum
  frame and raises :class:`TornWriteError` on any mismatch, so
  corruption is a loud signal instead of a half-parsed record.
  Legacy files written before the framing existed (no header) are
  returned as-is — old caches keep resuming.
* :func:`sweep_orphan_tmps` — remove temporaries whose writing pid is
  dead (or that are simply old); runs at sweep/queue startup and from
  ``repro doctor``.
* :func:`fs_now` / :class:`ClaimLease` — the clock-skew-immune lease
  primitives for the queue backend's stale-claim requeue: liveness is
  a *filesystem* mtime renewed by heartbeat, compared against the
  same filesystem's idea of "now" (the mtime of a freshly-touched
  probe file), so two hosts with skewed wall clocks still agree on
  which claims are stale.

Fault injection: :func:`atomic_write` threads
:func:`repro.faults.faultpoint` and :func:`repro.faults.mangle`
through the write path, so a chaos plan can kill a writer before the
rename (orphaned tmp), after it (clean), or tear the payload bytes —
the exact crash windows ``repro doctor`` repairs.
"""

from __future__ import annotations

import errno
import itertools
import os
import re
import socket
import time
import zlib
from threading import Event, Thread
from typing import List, Optional, Tuple

from repro import faults

#: First line of a checksum-framed durable file.  Its presence is the
#: commitment: a framed file whose trailer is missing or wrong is
#: corrupt, full stop — whereas a file without it predates the framing
#: and is accepted unverified (old caches keep working).
FRAME_HEADER = "#repro:durable v1\n"

#: Trailer carrying the payload checksum and byte length.
_FRAME_TRAILER = "#repro:crc32={crc:08x};len={length}\n"

#: Substring marking a temporary from the atomic-write protocol.
TMP_MARKER = ".tmp."

#: Default age past which an orphan temporary is removed even when its
#: writer pid looks alive (pids recycle; a tmp this old is garbage).
DEFAULT_TMP_MAX_AGE_SECONDS = 300.0

#: Per-process counter making temporary names unique across threads.
_TMP_COUNTER = itertools.count()

#: This host's token in temporary names.  A pid is only meaningful on
#: the host that spawned it, and the cache/queue dirs are shared, so
#: orphan sweeps must know *whose* pid a tmp carries before probing
#: it.  Dots are squashed (they delimit the name's fields).
_HOST_TOKEN = re.sub(r"[^A-Za-z0-9-]", "-", socket.gethostname()) or "host"


class TornWriteError(ValueError):
    """A checksum-framed durable file failed verification."""


# ----------------------------------------------------------------------
# checksum framing
# ----------------------------------------------------------------------
def frame(payload: str) -> str:
    """Wrap *payload* in the durable header + crc32 trailer."""
    data = payload.encode("utf-8")
    trailer = _FRAME_TRAILER.format(
        crc=zlib.crc32(data) & 0xFFFFFFFF, length=len(data)
    )
    return f"{FRAME_HEADER}{payload}\n{trailer}"


def unframe(text: str) -> "Tuple[str, bool]":
    """Verify and strip the frame; returns ``(payload, was_framed)``.

    A file without the header is legacy — returned untouched and
    unverified.  A file *with* the header must carry a matching
    trailer; anything else (truncation, torn bytes, checksum drift)
    raises :class:`TornWriteError`.
    """
    if not text.startswith(FRAME_HEADER):
        return text, False
    body = text[len(FRAME_HEADER):]
    head, newline, trailer = body.rpartition("\n#repro:crc32=")
    if not newline:
        raise TornWriteError("framed file is missing its trailer")
    crc_text, _, rest = trailer.partition(";len=")
    length_text = rest.rstrip("\n")
    try:
        recorded_crc = int(crc_text, 16)
        recorded_length = int(length_text)
    except ValueError:
        raise TornWriteError(
            "framed file has a malformed trailer"
        ) from None
    data = head.encode("utf-8")
    if len(data) != recorded_length:
        raise TornWriteError(
            f"payload length {len(data)} != recorded {recorded_length}"
            " (torn write)"
        )
    actual_crc = zlib.crc32(data) & 0xFFFFFFFF
    if actual_crc != recorded_crc:
        raise TornWriteError(
            f"payload crc32 {actual_crc:08x} != recorded"
            f" {recorded_crc:08x} (torn write)"
        )
    return head, True


# ----------------------------------------------------------------------
# atomic write / verified read
# ----------------------------------------------------------------------
def tmp_path_for(path: str) -> str:
    """A unique same-directory temporary name for *path*.

    The host and pid are embedded so orphan sweeps can test writer
    liveness (the pid probe is only valid on the writer's own host);
    the counter keeps concurrent threads of one process from
    colliding.
    """
    return (
        f"{path}{TMP_MARKER}{_HOST_TOKEN}"
        f".{os.getpid()}.{next(_TMP_COUNTER)}"
    )


def atomic_write(
    path: str, payload: str, *, checksum: bool = True, fsync: bool = True
) -> None:
    """Durably publish *payload* at *path* — all or nothing.

    The payload is checksum-framed (unless ``checksum=False``),
    written to a same-directory temporary, flushed and fsynced, then
    renamed over *path* with ``os.replace`` and sealed by fsyncing the
    parent directory (so the rename itself survives a power loss, not
    just a process kill).  Readers see either the old file or the
    complete new one; a writer killed at any point leaves at worst an
    orphan temporary, never a torn *path*.
    """
    text = frame(payload) if checksum else payload
    data = text.encode("utf-8")
    faults.faultpoint("durable.write", name=path)
    data = faults.mangle("durable.write", path, data)
    temporary = tmp_path_for(path)
    with open(temporary, "wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    # The window a kill turns into an orphaned temporary.
    faults.faultpoint("durable.write.tmp", name=path)
    os.replace(temporary, path)
    if fsync:
        _fsync_dir(os.path.dirname(path) or ".")


def _fsync_dir(directory: str) -> None:
    """Flush a directory's entry table (best effort — not every
    filesystem lets a directory fd be fsynced)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def read_durable(path: str) -> str:
    """Read and verify a durable file; returns the payload text.

    Raises ``OSError`` (including ``FileNotFoundError``) when the file
    cannot be read and :class:`TornWriteError` when the checksum frame
    does not verify.  Legacy unframed files pass through unverified.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    payload, _ = unframe(text)
    return payload


# ----------------------------------------------------------------------
# orphan temporaries
# ----------------------------------------------------------------------
def is_tmp_name(name: str) -> bool:
    """True when *name* looks like an atomic-write temporary."""
    return TMP_MARKER in name


def _tmp_owner_tokens(name: str) -> "Tuple[Optional[str], Optional[int]]":
    """``(host, pid)`` embedded in a temporary's name.

    Current names look like ``...tmp.<host>.<pid>.<counter>``; names
    from before the host token (``...tmp.<pid>.<counter>``) parse with
    ``host=None``.
    """
    _, _, suffix = name.rpartition(TMP_MARKER)
    tokens = suffix.split(".")
    if tokens and tokens[0].isdigit():
        host, pid_text = None, tokens[0]
    elif len(tokens) >= 2:
        host, pid_text = tokens[0], tokens[1]
    else:
        return None, None
    try:
        return host, int(pid_text)
    except ValueError:
        return host, None


def tmp_owner_pid(name: str) -> "Optional[int]":
    """The writer pid embedded in a temporary's name, if parseable."""
    return _tmp_owner_tokens(name)[1]


def tmp_writer_is_local(name: str) -> bool:
    """Whether a temporary's writer ran on *this* host.

    Only then is a pid liveness probe meaningful — the cache/queue
    dirs are shared across hosts, and a remote writer's pid is either
    dead here or names an unrelated local process.  Legacy names
    carry no host token and are assumed local (their old behavior).
    """
    host, _ = _tmp_owner_tokens(name)
    return host is None or host == _HOST_TOKEN


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0); permission errors count
    as alive — better to keep a live writer's tmp than to race it."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except OSError as exc:
        return exc.errno != errno.ESRCH
    return True


def sweep_orphan_tmps(
    directory: str,
    *,
    max_age_seconds: float = DEFAULT_TMP_MAX_AGE_SECONDS,
    remove: bool = True,
) -> "List[str]":
    """Find (and by default remove) orphaned write temporaries.

    A temporary is an orphan when its embedded writer pid is dead —
    probed only for tmps written on *this* host, since a remote
    writer's pid means nothing here — or when it is older than
    *max_age_seconds* (pids recycle, and no healthy atomic write
    holds a tmp for minutes).  Recent tmps of live or foreign-host
    writers are left alone — they may be mid-write right now.
    Returns the paths judged orphaned.
    """
    try:
        entries = os.listdir(directory)
    except OSError:
        return []
    now = time.time()
    orphans: "List[str]" = []
    for name in entries:
        if not is_tmp_name(name):
            continue
        path = os.path.join(directory, name)
        try:
            age = now - os.stat(path).st_mtime
        except OSError:
            continue  # already gone
        pid = tmp_owner_pid(name)
        stale = age > max_age_seconds
        dead = (
            pid is not None
            and tmp_writer_is_local(name)
            and not pid_alive(pid)
        )
        if not (dead or stale):
            continue
        orphans.append(path)
        if remove:
            try:
                os.remove(path)
            except OSError:
                pass
    return sorted(orphans)


# ----------------------------------------------------------------------
# clock-skew-immune leases
# ----------------------------------------------------------------------
def fs_now(directory: str, *, probe_name: str = ".fsprobe") -> float:
    """The *filesystem's* idea of now: a freshly-touched probe mtime.

    Claim staleness compares this against claim-file mtimes on the
    same filesystem, so hosts with skewed wall clocks still agree —
    the one clock that matters is the fileserver's.  Falls back to
    ``time.time()`` if the directory is unwritable.
    """
    probe = os.path.join(directory, probe_name)
    try:
        with open(probe, "w"):
            pass
        return os.stat(probe).st_mtime
    except OSError:
        return time.time()


class ClaimLease:
    """Heartbeat thread renewing a claim file's mtime while held.

    The queue backend starts one per inline cell execution; the mtime
    renewal is what distinguishes a *slow* claimant from a *dead* one,
    which is what lets stale-claim requeue ship armed by default — a
    live claimant can never look stale, no matter how long its cell
    runs or how far its wall clock drifts.
    """

    def __init__(self, path: str, *, interval: float):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        self.path = path
        self.interval = interval
        self._stop = Event()
        # Start the lease clock *now*: the claim file was renamed into
        # place with its todo record's old mtime, and the first
        # heartbeat is a full interval away — without this touch a
        # just-claimed cell whose todo record sat queued past the
        # stale threshold would instantly look like a zombie.
        try:
            os.utime(self.path, None)
        except OSError:
            pass
        self._thread = Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                os.utime(self.path, None)
            except OSError as exc:
                if exc.errno == errno.ENOENT:
                    return  # claim released (or requeued) under us
                # Transient shared-filesystem error (NFS hiccup,
                # EIO): keep heartbeating — going silent here would
                # let the claim go cold and be requeued mid-compute.
                continue

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "ClaimLease":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
