"""The declarative fault plan: seeded, named-site fault injection.

A :class:`FaultPlan` is a JSON document::

    {
      "seed": 7,
      "rules": [
        {"site": "sweep.cell", "match": "lab-junos@seed2",
         "action": "kill", "count": 1},
        {"site": "durable.write", "match": "*.v3.json",
         "action": "torn", "keep": 0.5, "probability": 0.25},
        {"site": "queue.claim", "action": "stall", "seconds": 2.0}
      ]
    }

Each rule names an injection *site* (an fnmatch pattern over the
``faultpoint("...")`` names threaded through the codebase) and an
optional ``match`` pattern over the point's dynamic name (a cell
name, a file path, a digest).  When both match, the rule *fires*
subject to:

* ``count`` — total fires allowed across every process sharing the
  plan's ``state_dir`` (claimed by ``O_CREAT|O_EXCL`` markers, the
  same primitive the queue backend's exactly-once rests on).  Omitted
  means unlimited — a deterministic crasher.
* ``probability`` — a deterministic draw hashed from ``(plan seed,
  rule index, site, name)``; the same plan over the same sweep makes
  the same decisions in every run and every process, which is what
  makes chaos runs reproducible.

Actions:

``kill``
    ``os._exit(exit_code)`` — no Python teardown; to a pool or a
    peer invocation it is indistinguishable from a segfault/OOM kill.
``stall``
    ``time.sleep(seconds)`` — a hung worker / NFS stall.
``error``
    raise :class:`InjectedFault` — an ordinary exception the retry
    machinery should absorb.
``torn``
    handled by :func:`FaultPlan.mangle`: truncate the bytes of a
    durable write to a ``keep`` fraction — a writer that died
    mid-``write(2)``.  (``faultpoint`` sites ignore torn rules; only
    byte-producing sites consult ``mangle``.)
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, Optional, Tuple

from repro.obs import metrics as obs_metrics

#: Environment variable naming the JSON plan file to arm.
PLAN_ENV = "REPRO_FAULT_PLAN"

#: The actions a rule may request.
ACTIONS = ("kill", "stall", "error", "torn")

#: Exit status of a ``kill`` fault (mirrors the old env hook).
DEFAULT_EXIT_CODE = 86

#: Default stall duration, seconds.
DEFAULT_STALL_SECONDS = 30.0

#: Default fraction of bytes a torn write keeps.
DEFAULT_TORN_KEEP = 0.5


class FaultPlanError(ValueError):
    """A fault plan file/document failed validation."""


class InjectedFault(RuntimeError):
    """The exception an ``error`` fault raises at its faultpoint."""


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: where, when, what."""

    site: str
    action: str
    match: str = "*"
    count: "Optional[int]" = None
    probability: float = 1.0
    seconds: float = DEFAULT_STALL_SECONDS
    keep: float = DEFAULT_TORN_KEEP
    exit_code: int = DEFAULT_EXIT_CODE

    def validate(self) -> None:
        if not self.site:
            raise FaultPlanError("fault rule needs a non-empty 'site'")
        if self.action not in ACTIONS:
            raise FaultPlanError(
                f"unknown fault action {self.action!r}; choose from:"
                f" {', '.join(ACTIONS)}"
            )
        if self.count is not None and self.count < 1:
            raise FaultPlanError(
                f"fault count must be >= 1, got {self.count!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"fault probability must be in [0, 1],"
                f" got {self.probability!r}"
            )
        if self.seconds < 0:
            raise FaultPlanError(
                f"stall seconds must be >= 0, got {self.seconds!r}"
            )
        if not 0.0 <= self.keep < 1.0:
            raise FaultPlanError(
                f"torn keep fraction must be in [0, 1),"
                f" got {self.keep!r}"
            )

    def matches(self, site: str, name: str) -> bool:
        return fnmatchcase(site, self.site) and fnmatchcase(
            name, self.match
        )


@dataclass
class FaultPlan:
    """A seeded set of rules plus the shared fire-count state."""

    rules: "Tuple[FaultRule, ...]" = ()
    seed: int = 0
    #: Directory of ``O_CREAT|O_EXCL`` fire markers shared by every
    #: process under the plan; ``None`` falls back to per-process
    #: in-memory counts (fine for single-process tests).
    state_dir: "Optional[str]" = None
    _memory_counts: "Dict[int, int]" = field(
        default_factory=dict, repr=False, compare=False
    )

    def validate(self) -> None:
        for rule in self.rules:
            rule.validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        raw_rules = data.get("rules", [])
        if not isinstance(raw_rules, list):
            raise FaultPlanError("fault plan 'rules' must be a list")
        known = {
            "site", "action", "match", "count", "probability",
            "seconds", "keep", "exit_code",
        }
        rules = []
        for index, raw in enumerate(raw_rules):
            if not isinstance(raw, dict):
                raise FaultPlanError(
                    f"fault rule #{index} must be an object"
                )
            unknown = sorted(set(raw) - known)
            if unknown:
                raise FaultPlanError(
                    f"fault rule #{index} has unknown keys:"
                    f" {', '.join(unknown)}"
                )
            try:
                rules.append(FaultRule(**raw))
            except TypeError as exc:
                raise FaultPlanError(
                    f"fault rule #{index}: {exc}"
                ) from None
        plan = cls(
            rules=tuple(rules),
            seed=int(data.get("seed", 0)),
            state_dir=data.get("state_dir"),
        )
        plan.validate()
        return plan

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Parse a plan file; defaults ``state_dir`` next to it."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise FaultPlanError(
                f"cannot read fault plan {path!r}: {exc}"
            ) from None
        except ValueError as exc:
            raise FaultPlanError(
                f"fault plan {path!r} is not valid JSON: {exc}"
            ) from None
        plan = cls.from_dict(data)
        if plan.state_dir is None:
            plan.state_dir = f"{path}.state"
        return plan

    # ------------------------------------------------------------------
    # firing machinery
    # ------------------------------------------------------------------
    def _draw(self, index: int, rule: FaultRule, name: str) -> bool:
        """Deterministic probability draw — stable across processes."""
        if rule.probability >= 1.0:
            return True
        if rule.probability <= 0.0:
            return False
        key = f"{self.seed}|{index}|{rule.site}|{name}".encode("utf-8")
        draw = (zlib.crc32(key) & 0xFFFFFFFF) / 2.0**32
        return draw < rule.probability

    def _claim_fire(self, index: int, rule: FaultRule) -> bool:
        """Spend one of the rule's allowed fires, exactly-once."""
        if rule.count is None:
            return True
        if self.state_dir:
            os.makedirs(self.state_dir, exist_ok=True)
            for slot in range(rule.count):
                marker = os.path.join(
                    self.state_dir, f"fire.{index}.{slot}"
                )
                try:
                    handle = os.open(
                        marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                    )
                except FileExistsError:
                    continue
                os.close(handle)
                return True
            return False
        fired = self._memory_counts.get(index, 0)
        if fired >= rule.count:
            return False
        self._memory_counts[index] = fired + 1
        return True

    def on_point(self, site: str, name: str) -> None:
        """Execute whatever rules fire at this faultpoint."""
        for index, rule in enumerate(self.rules):
            if rule.action == "torn":
                continue  # torn is a byte transform; see mangle()
            if not rule.matches(site, name):
                continue
            if not self._draw(index, rule, name):
                continue
            if not self._claim_fire(index, rule):
                continue
            obs_metrics.count(f"fault.fired.{rule.action}")
            if rule.action == "kill":
                os._exit(rule.exit_code)
            elif rule.action == "stall":
                time.sleep(rule.seconds)
            elif rule.action == "error":
                raise InjectedFault(
                    f"injected fault at {site!r}"
                    + (f" ({name})" if name else "")
                )

    def mangle(self, site: str, name: str, data: bytes) -> bytes:
        """Apply any matching ``torn`` rule to a durable payload."""
        for index, rule in enumerate(self.rules):
            if rule.action != "torn":
                continue
            if not rule.matches(site, name):
                continue
            if not self._draw(index, rule, name):
                continue
            if not self._claim_fire(index, rule):
                continue
            obs_metrics.count("fault.fired.torn")
            return data[: int(len(data) * rule.keep)]
        return data
