"""``repro doctor``: scan and repair a cache/queue tree after crashes.

The chaos harness proves sweeps *converge* through kills, stalls and
torn writes — but convergence leaves debris: orphaned ``.tmp.<pid>``
files, zombie claims whose owners are dead, checksum-framed files that
fail verification.  None of it is load-bearing (readers treat corrupt
durable files as misses), but debris accumulates, hides real problems
and costs recomputation.  The doctor names every finding and — with
``--repair`` — fixes each one the safe way:

======================  ================================================
finding kind            repair
======================  ================================================
``orphan-tmp``          remove (writer pid dead, or older than grace)
``zombie-claim``        rename back into ``todo/`` (requeue); drop the
                        claim instead when a todo twin already exists
``corrupt-cache-entry`` quarantine — the next sweep recomputes the cell
``corrupt-manifest``    quarantine, then rebuild ``sweep.json`` from
                        the intact per-cell cache entries (they carry
                        their spec payloads — the manifest is a
                        convenience layer, never the source of truth)
``corrupt-todo``        quarantine + drop the digest's seen markers so
                        a peer can re-enqueue the cell
``corrupt-done``        quarantine + drop the digest's seen markers
``dangling-seen``       remove the marker (its enqueue died between
                        marker creation and the todo write)
======================  ================================================

Repairs never delete result data: anything corrupt moves into
``<root>/quarantine/`` for post-mortems, and queue repairs only ever
*re-enable* computation (requeue, re-enqueue), relying on the
backend's exactly-once machinery to keep cells from double-computing.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import durable

#: Where repaired-away corrupt files are preserved, under the scanned
#: root.  The scanner never descends into it.
QUARANTINE_DIR_NAME = "quarantine"

#: Default age (seconds) past which a claim with no heartbeat is a
#: zombie — matches the queue backend's armed requeue threshold.
DEFAULT_LEASE_SECONDS = 300.0

#: Default grace (seconds) before a live-pid temporary counts as an
#: orphan — matches :data:`repro.durable.DEFAULT_TMP_MAX_AGE_SECONDS`.
DEFAULT_GRACE_SECONDS = durable.DEFAULT_TMP_MAX_AGE_SECONDS

#: ``<digest>.v<N>.json`` — a per-cell sweep cache entry.
_CACHE_ENTRY_RE = re.compile(r"^[0-9a-f]+\.v\d+\.json$")

#: ``sweep.json`` — the manifest filename (mirrors the runner without
#: importing it at module top; see the import note in ``__init__``).
_MANIFEST_NAME = "sweep.json"

#: The four subdirectories that make a directory a queue work dir.
_QUEUE_KINDS = ("todo", "claimed", "done", "seen")


@dataclass
class DoctorFinding:
    """One diagnosed problem, and what was (or would be) done."""

    kind: str
    path: str
    detail: str
    repair: str
    repaired: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "path": self.path,
            "detail": self.detail,
            "repair": self.repair,
            "repaired": self.repaired,
        }


@dataclass
class DoctorReport:
    """Everything one doctor pass found (and possibly fixed)."""

    root: str
    repair: bool
    findings: "List[DoctorFinding]" = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def add(
        self, kind: str, path: str, detail: str, repair: str
    ) -> DoctorFinding:
        finding = DoctorFinding(
            kind=kind, path=path, detail=detail, repair=repair
        )
        self.findings.append(finding)
        return finding

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "repair": self.repair,
            "clean": self.clean,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def _quarantine(root: str, path: str) -> str:
    """Move *path* under ``<root>/quarantine/``, never clobbering."""
    directory = os.path.join(root, QUARANTINE_DIR_NAME)
    os.makedirs(directory, exist_ok=True)
    base = os.path.basename(path)
    target = os.path.join(directory, base)
    counter = 0
    while os.path.exists(target):
        counter += 1
        target = os.path.join(directory, f"{base}.{counter}")
    # A move of an existing (corrupt) file, not a durable publish —
    # os.rename, the same primitive as queue claim transitions.
    os.rename(path, target)
    return target


def _readable(path: str) -> "Optional[str]":
    """The verified payload of a durable file, or None if corrupt.

    Missing files also read as None — callers check existence first
    when the distinction matters.
    """
    try:
        payload = durable.read_durable(path)
    except (OSError, durable.TornWriteError):
        return None
    try:
        json.loads(payload)
    except ValueError:
        return None
    return payload


class Doctor:
    """One scan-and-maybe-repair pass over a cache/queue tree."""

    def __init__(
        self,
        root: str,
        *,
        repair: bool = False,
        grace_seconds: float = DEFAULT_GRACE_SECONDS,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ):
        if grace_seconds <= 0:
            raise ValueError(
                f"grace_seconds must be > 0, got {grace_seconds!r}"
            )
        if lease_seconds <= 0:
            raise ValueError(
                f"lease_seconds must be > 0, got {lease_seconds!r}"
            )
        self.root = str(root)
        self.repair = repair
        self.grace_seconds = grace_seconds
        self.lease_seconds = lease_seconds
        self.report = DoctorReport(root=self.root, repair=repair)

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run(self) -> DoctorReport:
        if not os.path.isdir(self.root):
            raise FileNotFoundError(
                f"doctor: no such directory: {self.root!r}"
            )
        for directory, subdirs, files in os.walk(self.root):
            subdirs[:] = sorted(
                name
                for name in subdirs
                if name != QUARANTINE_DIR_NAME
            )
            self._check_orphan_tmps(directory)
            if all(
                kind in subdirs for kind in _QUEUE_KINDS
            ):
                self._check_queue(directory)
                # The queue subdirs hold queue records, not cache
                # files; _check_queue owns them entirely.
                subdirs[:] = [
                    name
                    for name in subdirs
                    if name not in _QUEUE_KINDS
                ]
                continue
            self._check_cache_files(directory, sorted(files))
        return self.report

    # ------------------------------------------------------------------
    # orphaned temporaries
    # ------------------------------------------------------------------
    def _check_orphan_tmps(self, directory: str) -> None:
        orphans = durable.sweep_orphan_tmps(
            directory,
            max_age_seconds=self.grace_seconds,
            remove=False,
        )
        for path in orphans:
            name = os.path.basename(path)
            pid = durable.tmp_owner_pid(name)
            dead = (
                pid is not None
                and durable.tmp_writer_is_local(name)
                and not durable.pid_alive(pid)
            )
            finding = self.report.add(
                "orphan-tmp",
                path,
                (
                    f"writer pid {pid} is dead"
                    if dead
                    else f"older than {self.grace_seconds:g}s grace"
                ),
                "remove",
            )
            if self.repair:
                try:
                    os.remove(path)
                    finding.repaired = True
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # cache entries and manifests
    # ------------------------------------------------------------------
    def _check_cache_files(
        self, directory: str, files: "List[str]"
    ) -> None:
        manifest_corrupt = False
        for name in files:
            if durable.is_tmp_name(name):
                continue  # handled by the orphan pass
            path = os.path.join(directory, name)
            if _CACHE_ENTRY_RE.match(name):
                if _readable(path) is None:
                    finding = self.report.add(
                        "corrupt-cache-entry",
                        path,
                        "checksum frame or JSON failed verification",
                        "quarantine (the next sweep recomputes it)",
                    )
                    if self.repair:
                        _quarantine(self.root, path)
                        finding.repaired = True
            elif name == _MANIFEST_NAME:
                if not self._manifest_ok(path):
                    manifest_corrupt = True
                    finding = self.report.add(
                        "corrupt-manifest",
                        path,
                        "checksum frame or schema failed verification",
                        "quarantine + rebuild from intact cache entries",
                    )
                    if self.repair:
                        _quarantine(self.root, path)
                        finding.repaired = True
        if manifest_corrupt and self.repair:
            self._rebuild_manifest(directory)

    @staticmethod
    def _manifest_ok(path: str) -> bool:
        payload = _readable(path)
        if payload is None:
            return False
        data = json.loads(payload)
        return isinstance(data, dict) and isinstance(
            data.get("cells"), dict
        )

    def _rebuild_manifest(self, directory: str) -> None:
        """Regrow ``sweep.json`` from the cells that survived.

        Cache entries carry their full spec payloads, so the rebuilt
        manifest records every intact cell as ``done`` — enough for
        ``--resume`` to serve them as hits and recompute only what was
        actually lost.  Imported here, not at module top: the runner
        imports the backends, which import :mod:`repro.faults`.
        """
        from repro.scenarios.runner import SweepManifest
        from repro.scenarios.serialize import spec_from_dict, spec_hash

        manifest = SweepManifest(directory)
        for name in sorted(os.listdir(directory)):
            if not _CACHE_ENTRY_RE.match(name):
                continue
            payload = _readable(os.path.join(directory, name))
            if payload is None:
                continue
            data = json.loads(payload)
            spec_payload = (
                data.get("spec") if isinstance(data, dict) else None
            )
            if not isinstance(spec_payload, dict):
                continue
            try:
                spec = spec_from_dict(spec_payload)
                digest = spec_hash(spec)
            except Exception:  # noqa: BLE001 — foreign cache file
                continue
            manifest.record([spec], [digest])
            manifest.mark(digest, "done")
        if manifest.cells:
            manifest.save()

    # ------------------------------------------------------------------
    # queue work dirs
    # ------------------------------------------------------------------
    def _check_queue(self, work_dir: str) -> None:
        # The walk does not descend into the queue kind subdirs (they
        # hold queue records, not cache files), so sweep their orphan
        # temporaries here.
        for kind in _QUEUE_KINDS:
            self._check_orphan_tmps(os.path.join(work_dir, kind))
        self._check_zombie_claims(work_dir)
        self._check_queue_records(work_dir, "todo", "corrupt-todo")
        self._check_queue_records(work_dir, "done", "corrupt-done")
        self._check_dangling_seen(work_dir)

    @staticmethod
    def _queue_entries(work_dir: str, kind: str) -> "List[str]":
        try:
            entries = os.listdir(os.path.join(work_dir, kind))
        except OSError:
            return []
        return sorted(
            name
            for name in entries
            if not durable.is_tmp_name(name)
            and not name.startswith(".")
        )

    def _check_zombie_claims(self, work_dir: str) -> None:
        claimed_dir = os.path.join(work_dir, "claimed")
        now = durable.fs_now(claimed_dir)
        for name in self._queue_entries(work_dir, "claimed"):
            if not name.endswith(".json"):
                continue
            path = os.path.join(claimed_dir, name)
            try:
                age = now - os.stat(path).st_mtime
            except OSError:
                continue
            if age <= self.lease_seconds:
                continue
            todo = os.path.join(work_dir, "todo", name)
            requeue = not os.path.exists(todo)
            finding = self.report.add(
                "zombie-claim",
                path,
                f"no lease heartbeat for {age:.0f}s"
                f" (> {self.lease_seconds:g}s)",
                (
                    "requeue (rename back into todo/)"
                    if requeue
                    else "remove (a todo twin already exists)"
                ),
            )
            if not self.repair:
                continue
            try:
                if requeue:
                    os.rename(path, todo)
                else:
                    os.remove(path)
                finding.repaired = True
            except OSError:
                pass

    def _check_queue_records(
        self, work_dir: str, kind: str, finding_kind: str
    ) -> None:
        directory = os.path.join(work_dir, kind)
        for name in self._queue_entries(work_dir, kind):
            if not name.endswith(".json"):
                continue
            path = os.path.join(directory, name)
            if _readable(path) is not None:
                continue
            digest = name[: -len(".json")]
            finding = self.report.add(
                finding_kind,
                path,
                "checksum frame or JSON failed verification",
                "quarantine + drop seen markers so peers re-enqueue",
            )
            if not self.repair:
                continue
            _quarantine(self.root, path)
            self._drop_seen_markers(work_dir, digest)
            finding.repaired = True

    def _drop_seen_markers(self, work_dir: str, digest: str) -> None:
        for name in self._queue_entries(work_dir, "seen"):
            stem, _, generation = name.rpartition(".")
            if stem == digest and generation.isdigit():
                try:
                    os.remove(os.path.join(work_dir, "seen", name))
                except OSError:
                    pass

    def _done_generation(self, work_dir: str, digest: str) -> int:
        """The generation of a digest's done record (-1 if none)."""
        payload = _readable(
            os.path.join(work_dir, "done", f"{digest}.json")
        )
        if payload is None:
            return -1
        data = json.loads(payload)
        if not isinstance(data, dict):
            return -1
        try:
            return int(data.get("generation", 0))
        except (TypeError, ValueError):
            return 0

    def _check_dangling_seen(self, work_dir: str) -> None:
        done_generations: "Dict[str, int]" = {}
        for name in self._queue_entries(work_dir, "seen"):
            digest, _, generation_text = name.rpartition(".")
            if not digest or not generation_text.isdigit():
                continue
            generation = int(generation_text)
            record_name = f"{digest}.json"
            if os.path.exists(
                os.path.join(work_dir, "todo", record_name)
            ) or os.path.exists(
                os.path.join(work_dir, "claimed", record_name)
            ):
                continue  # the enqueue completed; the cell is in flight
            if digest not in done_generations:
                done_generations[digest] = self._done_generation(
                    work_dir, digest
                )
            if done_generations[digest] >= generation:
                continue  # the marker's generation ran to completion
            path = os.path.join(work_dir, "seen", name)
            finding = self.report.add(
                "dangling-seen",
                path,
                f"marker generation {generation} has no todo, claim"
                " or done record — its enqueue died mid-flight",
                "remove (a peer will re-enqueue the cell)",
            )
            if self.repair:
                try:
                    os.remove(path)
                    finding.repaired = True
                except OSError:
                    pass


def run_doctor(
    root: str,
    *,
    repair: bool = False,
    grace_seconds: float = DEFAULT_GRACE_SECONDS,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
) -> DoctorReport:
    """Scan *root* (a cache dir, queue work dir, or a tree holding
    both) and return the findings; with ``repair=True``, fix them."""
    return Doctor(
        root,
        repair=repair,
        grace_seconds=grace_seconds,
        lease_seconds=lease_seconds,
    ).run()
