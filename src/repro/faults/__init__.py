"""Declarative fault injection — disabled, it costs one ``is`` check.

This package replaced the three ad-hoc env hooks
(``REPRO_FAULT_KILL`` / ``REPRO_FAULT_STALL`` /
``REPRO_FAULT_ONCE_DIR``) with a seeded, declarative
:class:`~repro.faults.plan.FaultPlan` injected at named
``faultpoint("...")`` call sites.  The sites threaded through the
codebase:

========================  =============================================
site                      where / dynamic ``name``
========================  =============================================
``sweep.cell``            worker picks up a cell (name: cell name)
``sched.submit``          scheduler submits a cell to a pool (cell name)
``sched.reply``           scheduler folds a worker reply (cell name)
``sched.reap``            scheduler reaps a broken/timed-out pool
``queue.enqueue.todo``    between seen-marker and todo write (digest)
``queue.claim``           right after a successful claim (digest)
``queue.done``            before the done record write (digest)
``durable.write``         every atomic_write; torn rules bite here (path)
``durable.write.tmp``     tmp written+fsynced, before replace (path)
``journal.append``        journal line append; torn rules bite (path)
``pipeline.spill.open``   MRT spill archive opened (path)
``pipeline.spill.close``  MRT spill archive closing (path)
========================  =============================================

Arming: set ``REPRO_FAULT_PLAN=<plan.json>`` in the environment (it
reaches forked pool workers and subprocess invocations alike), or
call :func:`set_fault_plan` in-process.  Unarmed, every helper is a
no-op behind a single module-global check — the same gated-singleton
discipline as the obs ``phase()`` spans, so production code pays
nothing for the instrumentation points.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.faults.plan import (
    ACTIONS,
    DEFAULT_EXIT_CODE,
    PLAN_ENV,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    InjectedFault,
)

__all__ = [
    "ACTIONS",
    "DEFAULT_EXIT_CODE",
    "PLAN_ENV",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "InjectedFault",
    "fault_plan_enabled",
    "faultpoint",
    "load_plan",
    "mangle",
    "reset_fault_plan",
    "set_fault_plan",
]

#: Tri-state plan cache: ``None`` = environment not probed yet,
#: ``False`` = probed and disabled (the steady state: every
#: faultpoint is one ``is False`` check), else the armed plan.
_STATE: "None | bool | FaultPlan" = None


def load_plan(path: str) -> FaultPlan:
    """Parse a JSON fault plan file (validating it)."""
    return FaultPlan.load(path)


def set_fault_plan(
    plan: "Optional[FaultPlan]",
) -> "None | bool | FaultPlan":
    """Arm *plan* in this process; returns the previous state.

    ``None`` disables injection without re-probing the environment —
    tests use ``reset_fault_plan`` to return to env-driven arming.
    """
    global _STATE
    previous = _STATE
    _STATE = plan if plan is not None else False
    return previous


def reset_fault_plan() -> None:
    """Forget any armed/probed state; the next faultpoint re-probes
    the environment.  Test fixtures call this around env changes."""
    global _STATE
    _STATE = None


def _active_plan() -> "Optional[FaultPlan]":
    global _STATE
    state = _STATE
    if state is None:
        path = os.environ.get(PLAN_ENV)
        state = load_plan(path) if path else False
        _STATE = state
    return state if state is not False else None


def fault_plan_enabled() -> bool:
    """True when a plan is armed (probing the env on first call)."""
    return _active_plan() is not None


def faultpoint(site: str, name: str = "") -> None:
    """Declare a named injection point; a no-op unless a plan fires.

    ``site`` is the static location; ``name`` the dynamic subject (a
    cell name, digest or path) rules can ``match`` on.
    """
    if _STATE is False:  # the armed-off fast path: one global check
        return
    plan = _active_plan()
    if plan is not None:
        plan.on_point(site, name)


def mangle(site: str, name: str, data: bytes) -> bytes:
    """Give ``torn`` rules a shot at a durable payload's bytes."""
    if _STATE is False:
        return data
    plan = _active_plan()
    if plan is None:
        return data
    return plan.mangle(site, name, data)
