"""Live sweep status, reconstructed from the manifest and journals.

``repro scenario sweep --status`` points this module at a sweep cache
dir.  Nothing here talks to the running sweep: the manifest
(``sweep.json``) and the per-cell JSONL journals *are* the interface,
so status works identically for an in-flight sweep on this machine, a
sweep run by cooperating shards, or a post-mortem on a dead one.

Derived cell states:

* ``done`` / ``failed`` — straight from the manifest.
* ``running`` — manifest still says ``pending`` but the cell's journal
  has a ``start`` without a matching ``finish``.  Heartbeats supply
  progress (observations, rate, peak RSS).
* ``pending`` — no evidence of work yet.

A *straggler* is a running cell whose elapsed time exceeds twice the
median wall time of the cells that already finished — the first place
to look when a sweep stalls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.journal import cell_journal_path, read_journal
from repro.reports.render import render_table

#: Elapsed-over-median factor past which a running cell is a straggler.
STRAGGLER_FACTOR = 2.0


@dataclass
class CellStatus:
    """Everything we can say about one sweep cell from disk."""

    digest: str
    name: str
    state: str  # done | failed | running | pending
    attempts: int = 0
    started_at: "Optional[float]" = None
    finished_at: "Optional[float]" = None
    wall_seconds: "Optional[float]" = None
    #: Running cells: seconds since the last recorded start.
    elapsed_seconds: "Optional[float]" = None
    #: Latest heartbeat progress, if any.
    observations: "Optional[int]" = None
    rate_per_second: "Optional[float]" = None
    peak_rss_kb: "Optional[int]" = None
    straggler: bool = False

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    def as_dict(self) -> dict:
        payload = {
            "digest": self.digest,
            "name": self.name,
            "state": self.state,
            "attempts": self.attempts,
            "straggler": self.straggler,
        }
        for key in (
            "started_at",
            "finished_at",
            "wall_seconds",
            "elapsed_seconds",
            "observations",
            "rate_per_second",
            "peak_rss_kb",
        ):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload


@dataclass
class SweepStatus:
    """The whole sweep's state at one instant."""

    cache_dir: str
    cells: "List[CellStatus]" = field(default_factory=list)

    def counts(self) -> "Dict[str, int]":
        tally = {"done": 0, "failed": 0, "running": 0, "pending": 0}
        for cell in self.cells:
            tally[cell.state] = tally.get(cell.state, 0) + 1
        tally["retried"] = sum(1 for cell in self.cells if cell.retried)
        tally["total"] = len(self.cells)
        return tally

    def stragglers(self) -> "List[CellStatus]":
        return [cell for cell in self.cells if cell.straggler]

    def as_dict(self) -> dict:
        return {
            "cache_dir": self.cache_dir,
            "counts": self.counts(),
            "cells": [cell.as_dict() for cell in self.cells],
        }


def _median(values: "List[float]") -> "Optional[float]":
    if not values:
        return None
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _journal_view(events: "List[dict]") -> dict:
    """Condense a cell journal to the fields status cares about."""
    view: dict = {
        "starts": 0,
        "finished": False,
        "last_start_ts": None,
        "heartbeat": None,
    }
    for event in events:
        kind = event.get("event")
        if kind == "start":
            view["starts"] += 1
            view["last_start_ts"] = event.get("ts")
            view["finished"] = False
        elif kind in ("finish", "fail"):
            view["finished"] = True
        elif kind == "heartbeat":
            view["heartbeat"] = event
    return view


def collect_sweep_status(
    cache_dir: str, *, now: "Optional[float]" = None
) -> SweepStatus:
    """Build a :class:`SweepStatus` snapshot from *cache_dir*.

    *now* pins the clock for elapsed-time math (tests); defaults to
    wall time.
    """
    # Imported here, not at module top: runner imports the journal
    # helpers from this package, and obs must stay importable without
    # the scenarios layer.
    from repro.scenarios.runner import SweepManifest

    if now is None:
        now = time.time()
    manifest = SweepManifest.load(cache_dir)
    status = SweepStatus(cache_dir=cache_dir)
    for digest, cell in sorted(
        manifest.cells.items(),
        key=lambda item: (item[1].get("name", ""), item[0]),
    ):
        state = cell.get("state", "pending")
        entry = CellStatus(
            digest=digest,
            name=cell.get("name", ""),
            state=state,
            attempts=int(cell.get("attempts", 0) or 0),
            started_at=cell.get("started_at"),
            finished_at=cell.get("finished_at"),
        )
        if (
            entry.started_at is not None
            and entry.finished_at is not None
        ):
            entry.wall_seconds = entry.finished_at - entry.started_at
        journal = _journal_view(
            read_journal(cell_journal_path(cache_dir, digest))
        )
        if journal["starts"] > entry.attempts:
            entry.attempts = journal["starts"]
        heartbeat = journal["heartbeat"]
        if heartbeat is not None:
            entry.observations = heartbeat.get("observations")
            entry.rate_per_second = heartbeat.get("rate_per_second")
            entry.peak_rss_kb = heartbeat.get("peak_rss_kb")
        if (
            state == "pending"
            and journal["last_start_ts"] is not None
            and not journal["finished"]
        ):
            entry.state = "running"
            entry.elapsed_seconds = max(
                0.0, now - journal["last_start_ts"]
            )
        status.cells.append(entry)

    median_wall = _median(
        [
            cell.wall_seconds
            for cell in status.cells
            if cell.state == "done" and cell.wall_seconds is not None
        ]
    )
    if median_wall is not None and median_wall > 0:
        for cell in status.cells:
            if (
                cell.state == "running"
                and cell.elapsed_seconds is not None
                and cell.elapsed_seconds > STRAGGLER_FACTOR * median_wall
            ):
                cell.straggler = True
    return status


def _format_seconds(value: "Optional[float]") -> str:
    if value is None:
        return "-"
    return f"{value:.1f}s"


def render_sweep_status(status: SweepStatus) -> str:
    """The human table ``--status`` prints (to stderr)."""
    counts = status.counts()
    summary = (
        f"sweep @ {status.cache_dir}: "
        f"{counts['done']}/{counts['total']} done, "
        f"{counts['running']} running, {counts['failed']} failed, "
        f"{counts['pending']} pending, {counts['retried']} retried"
    )
    rows = []
    for cell in status.cells:
        progress = "-"
        if cell.observations is not None:
            rate = (
                f" @ {cell.rate_per_second:.0f}/s"
                if cell.rate_per_second
                else ""
            )
            progress = f"{cell.observations} obs{rate}"
        state = cell.state
        if cell.straggler:
            state += " (straggler)"
        rows.append(
            (
                cell.name,
                state,
                cell.attempts or "-",
                _format_seconds(
                    cell.wall_seconds
                    if cell.wall_seconds is not None
                    else cell.elapsed_seconds
                ),
                progress,
                cell.digest[:10],
            )
        )
    table = render_table(
        ("cell", "state", "attempts", "wall", "progress", "digest"),
        rows,
        title=summary,
    )
    return table
