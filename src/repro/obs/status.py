"""Live sweep status, reconstructed from the manifest and journals.

``repro scenario sweep --status`` points this module at a sweep cache
dir.  Nothing here talks to the running sweep: the manifest
(``sweep.json``) and the per-cell JSONL journals *are* the interface,
so status works identically for an in-flight sweep on this machine, a
sweep run by cooperating shards, or a post-mortem on a dead one.

Derived cell states:

* ``done`` / ``failed`` — straight from the manifest.
* ``running`` — manifest still says ``pending`` but the cell's journal
  has a ``start`` without a matching ``finish``.  Heartbeats supply
  progress (observations, rate, peak RSS).
* ``lost`` — looked ``running``, but the journal has gone quiet: the
  last event is older than the staleness threshold (2x the cell's own
  observed heartbeat interval, or ``lost_after`` when given).  A
  worker that was OOM-killed or segfaulted mid-cell leaves exactly
  this trail — a ``start`` with no ``finish`` and no fresh heartbeats
  — and used to show as ``running`` forever.
* ``pending`` — no evidence of work yet.

A *straggler* is a running cell whose elapsed time exceeds twice the
median wall time of the cells that already finished — the first place
to look when a sweep stalls.  Straggler math needs at least
:data:`MIN_STRAGGLER_SAMPLES` finished cells (a single fast cell as
the "median" used to flag every normal cell) and never counts
``lost`` cells, which are not slow — they are gone.

Journals are read through a bounded tail
(:data:`JOURNAL_TAIL_BYTES`): heartbeats append unboundedly and the
status poller only needs the recent events.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.journal import cell_journal_path, read_journal
from repro.reports.render import render_table

#: Elapsed-over-median factor past which a running cell is a straggler.
STRAGGLER_FACTOR = 2.0

#: Finished cells required before the straggler median is trusted.
MIN_STRAGGLER_SAMPLES = 3

#: A running cell is ``lost`` when its journal has been silent for
#: this factor times its own observed heartbeat interval.
LOST_FACTOR = 2.0

#: Floor under the derived staleness threshold — sub-second heartbeat
#: intervals must not flag a cell between two status polls.
MIN_LOST_SECONDS = 10.0

#: Fallback staleness threshold when a cell's journal shows no usable
#: heartbeat interval (e.g. only a ``start`` so far).
DEFAULT_LOST_AFTER = 300.0

#: How much of each cell journal the status poller reads.
JOURNAL_TAIL_BYTES = 64 * 1024


@dataclass
class CellStatus:
    """Everything we can say about one sweep cell from disk."""

    digest: str
    name: str
    state: str  # done | failed | running | lost | pending
    attempts: int = 0
    started_at: "Optional[float]" = None
    finished_at: "Optional[float]" = None
    wall_seconds: "Optional[float]" = None
    #: Running cells: seconds since the last recorded start.
    elapsed_seconds: "Optional[float]" = None
    #: Latest heartbeat progress, if any.
    observations: "Optional[int]" = None
    rate_per_second: "Optional[float]" = None
    peak_rss_kb: "Optional[int]" = None
    straggler: bool = False

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    def as_dict(self) -> dict:
        payload = {
            "digest": self.digest,
            "name": self.name,
            "state": self.state,
            "attempts": self.attempts,
            "straggler": self.straggler,
        }
        for key in (
            "started_at",
            "finished_at",
            "wall_seconds",
            "elapsed_seconds",
            "observations",
            "rate_per_second",
            "peak_rss_kb",
        ):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload


@dataclass
class SweepStatus:
    """The whole sweep's state at one instant."""

    cache_dir: str
    cells: "List[CellStatus]" = field(default_factory=list)

    def counts(self) -> "Dict[str, int]":
        tally = {
            "done": 0, "failed": 0, "running": 0, "lost": 0,
            "pending": 0,
        }
        for cell in self.cells:
            tally[cell.state] = tally.get(cell.state, 0) + 1
        tally["retried"] = sum(1 for cell in self.cells if cell.retried)
        tally["total"] = len(self.cells)
        return tally

    def stragglers(self) -> "List[CellStatus]":
        return [cell for cell in self.cells if cell.straggler]

    def as_dict(self) -> dict:
        return {
            "cache_dir": self.cache_dir,
            "counts": self.counts(),
            "cells": [cell.as_dict() for cell in self.cells],
        }


def _median(values: "List[float]") -> "Optional[float]":
    if not values:
        return None
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _journal_view(events: "List[dict]") -> dict:
    """Condense a cell journal to the fields status cares about."""
    view: dict = {
        "starts": 0,
        "finished": False,
        "last_start_ts": None,
        "heartbeat": None,
        #: Timestamps of the last two events of any kind — the gap is
        #: the cell's own observed event cadence, which calibrates the
        #: ``lost`` staleness threshold.
        "last_ts": None,
        "prev_ts": None,
    }
    for event in events:
        kind = event.get("event")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            view["prev_ts"] = view["last_ts"]
            view["last_ts"] = ts
        if kind == "start":
            view["starts"] += 1
            view["last_start_ts"] = event.get("ts")
            view["finished"] = False
        elif kind in ("finish", "fail"):
            view["finished"] = True
        elif kind == "heartbeat":
            view["heartbeat"] = event
    return view


def _lost_threshold(
    journal: dict, lost_after: "Optional[float]"
) -> float:
    """Seconds of journal silence after which a cell counts as lost."""
    if lost_after is not None:
        return lost_after
    last_ts, prev_ts = journal["last_ts"], journal["prev_ts"]
    if (
        last_ts is not None
        and prev_ts is not None
        and last_ts > prev_ts
    ):
        return max(LOST_FACTOR * (last_ts - prev_ts), MIN_LOST_SECONDS)
    return DEFAULT_LOST_AFTER


def collect_sweep_status(
    cache_dir: str,
    *,
    now: "Optional[float]" = None,
    lost_after: "Optional[float]" = None,
) -> SweepStatus:
    """Build a :class:`SweepStatus` snapshot from *cache_dir*.

    *now* pins the clock for elapsed-time math (tests); defaults to
    wall time.  *lost_after* overrides the derived journal-staleness
    threshold (seconds) past which a running cell is declared
    ``lost``; the default calibrates per cell from its own heartbeat
    cadence (see :func:`_lost_threshold`).
    """
    # Imported here, not at module top: runner imports the journal
    # helpers from this package, and obs must stay importable without
    # the scenarios layer.
    from repro.scenarios.runner import SweepManifest

    if now is None:
        now = time.time()
    manifest = SweepManifest.load(cache_dir)
    status = SweepStatus(cache_dir=cache_dir)
    for digest, cell in sorted(
        manifest.cells.items(),
        key=lambda item: (item[1].get("name", ""), item[0]),
    ):
        state = cell.get("state", "pending")
        entry = CellStatus(
            digest=digest,
            name=cell.get("name", ""),
            state=state,
            attempts=int(cell.get("attempts", 0) or 0),
            started_at=cell.get("started_at"),
            finished_at=cell.get("finished_at"),
        )
        if (
            entry.started_at is not None
            and entry.finished_at is not None
        ):
            entry.wall_seconds = entry.finished_at - entry.started_at
        journal = _journal_view(
            read_journal(
                cell_journal_path(cache_dir, digest),
                tail_bytes=JOURNAL_TAIL_BYTES,
            )
        )
        if journal["starts"] > entry.attempts:
            entry.attempts = journal["starts"]
        heartbeat = journal["heartbeat"]
        if heartbeat is not None:
            entry.observations = heartbeat.get("observations")
            entry.rate_per_second = heartbeat.get("rate_per_second")
            entry.peak_rss_kb = heartbeat.get("peak_rss_kb")
        if (
            state == "pending"
            and journal["last_start_ts"] is not None
            and not journal["finished"]
        ):
            entry.state = "running"
            entry.elapsed_seconds = max(
                0.0, now - journal["last_start_ts"]
            )
            silence = (
                now - journal["last_ts"]
                if journal["last_ts"] is not None
                else None
            )
            if (
                silence is not None
                and silence > _lost_threshold(journal, lost_after)
            ):
                # A start with no finish *and* a silent journal is a
                # dead worker's trail, not a running cell.
                entry.state = "lost"
        status.cells.append(entry)

    finished_walls = [
        cell.wall_seconds
        for cell in status.cells
        if cell.state == "done" and cell.wall_seconds is not None
    ]
    median_wall = (
        _median(finished_walls)
        if len(finished_walls) >= MIN_STRAGGLER_SAMPLES
        else None
    )
    if median_wall is not None and median_wall > 0:
        for cell in status.cells:
            # Lost cells are excluded: they are not slow, they are
            # gone — speculating on them would duplicate dead work's
            # journal trail, and they already stand out in the table.
            if (
                cell.state == "running"
                and cell.elapsed_seconds is not None
                and cell.elapsed_seconds > STRAGGLER_FACTOR * median_wall
            ):
                cell.straggler = True
    return status


def _format_seconds(value: "Optional[float]") -> str:
    if value is None:
        return "-"
    return f"{value:.1f}s"


def render_sweep_status(status: SweepStatus) -> str:
    """The human table ``--status`` prints (to stderr)."""
    counts = status.counts()
    summary = (
        f"sweep @ {status.cache_dir}: "
        f"{counts['done']}/{counts['total']} done, "
        f"{counts['running']} running, {counts['failed']} failed, "
        f"{counts['lost']} lost, "
        f"{counts['pending']} pending, {counts['retried']} retried"
    )
    rows = []
    for cell in status.cells:
        progress = "-"
        if cell.observations is not None:
            rate = (
                f" @ {cell.rate_per_second:.0f}/s"
                if cell.rate_per_second
                else ""
            )
            progress = f"{cell.observations} obs{rate}"
        state = cell.state
        if cell.straggler:
            state += " (straggler)"
        rows.append(
            (
                cell.name,
                state,
                cell.attempts or "-",
                _format_seconds(
                    cell.wall_seconds
                    if cell.wall_seconds is not None
                    else cell.elapsed_seconds
                ),
                progress,
                cell.digest[:10],
            )
        )
    table = render_table(
        ("cell", "state", "attempts", "wall", "progress", "digest"),
        rows,
        title=summary,
    )
    return table
