"""JSONL run journals: an append-only trail of run lifecycle events.

A journal is one file of newline-delimited JSON objects.  Every line
carries at least ``event`` and ``ts`` (wall-clock seconds); heartbeat
lines add progress counters, observation rates and peak RSS.  Journals
are written next to the sweep cache manifest (one per cell) and — for
direct runs — wherever ``repro scenario run --journal`` points.

Append-only is load-bearing twice over: a *retried* sweep cell reopens
the same journal, so the full attempt history survives; and the
``--status`` reader can tail a journal that another process is still
writing.  Readers therefore tolerate a truncated final line (the
writer may be mid-``write`` when we read).
"""

from __future__ import annotations

import json
import os
import time
import zlib
from typing import Iterator, List, Optional

from repro import faults


#: Subdirectory of a sweep cache dir holding per-cell journals.
JOURNAL_DIR_NAME = "journals"


def journal_dir(cache_dir: str) -> str:
    """Where a sweep's per-cell journals live."""
    return os.path.join(cache_dir, JOURNAL_DIR_NAME)


def cell_journal_path(cache_dir: str, digest: str) -> str:
    """The journal file for one sweep cell, keyed by its spec hash."""
    return os.path.join(journal_dir(cache_dir), f"{digest}.jsonl")


def peak_rss_kb() -> int:
    """This process's peak resident set size, in KiB (0 if unknown)."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if os.uname().sysname == "Darwin":  # pragma: no cover - platform
        usage //= 1024
    return int(usage)


class RunJournal:
    """Appends JSONL event lines describing one run (or one sweep cell).

    The journal flushes after every line — a crashed or killed worker
    leaves behind everything up to its last event, which is exactly
    what ``--status`` needs to spot stuck cells.
    """

    def __init__(self, path: str):
        self.path = str(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        if self._tail_is_torn():
            # A writer killed mid-append left a partial line; without
            # this newline our first record would be glued onto it and
            # both would fail verification — the torn fragment is
            # already lost, the new event must not be.
            self._file.write("\n")
            self._file.flush()

    def _tail_is_torn(self) -> bool:
        """True when the journal ends mid-line (no trailing newline)."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    def write(self, event: str, **fields) -> None:
        """Append one event line (adds ``ts`` and a ``crc`` field).

        The ``crc`` is a crc32 of the record without it, so a torn or
        bit-flipped line fails verification in :func:`iter_journal`
        instead of being half-trusted.  Lines written before the field
        existed verify as legacy (no ``crc``) and are accepted.
        """
        record = {"event": event, "ts": time.time()}
        record.update(fields)
        body = json.dumps(record, sort_keys=True)
        record["crc"] = f"{zlib.crc32(body.encode('utf-8')) & 0xFFFFFFFF:08x}"
        line = json.dumps(record, sort_keys=True) + "\n"
        # json.dumps escapes to ASCII by default, so a torn cut can
        # never land mid-multibyte-sequence.
        data = faults.mangle("journal.append", self.path, line.encode("utf-8"))
        self._file.write(data.decode("utf-8"))
        self._file.flush()
        faults.faultpoint("journal.append", name=self.path)

    def heartbeat(
        self,
        *,
        observations: int,
        elapsed: float,
        extra: Optional[dict] = None,
    ) -> None:
        """Append a progress line with rate and peak RSS."""
        fields = {
            "observations": observations,
            "elapsed_seconds": elapsed,
            "rate_per_second": observations / elapsed if elapsed > 0 else 0.0,
            "peak_rss_kb": peak_rss_kb(),
        }
        if extra:
            fields.update(extra)
        self.write("heartbeat", **fields)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def iter_journal(
    path: str, *, tail_bytes: "Optional[int]" = None
) -> Iterator[dict]:
    """Yield journal events, skipping blank and truncated lines.

    A writer killed mid-line leaves a partial JSON tail; readers must
    not crash on it — the preceding lines are still good data.

    ``tail_bytes`` bounds the read to the end of the file: heartbeats
    append unboundedly, and a status poller that re-reads every
    journal in full each tick turns O(cells) polls into O(bytes
    written so far).  When the file is larger than the bound, reading
    starts *after* the first (almost certainly partial) line past the
    seek point — the same truncation tolerance writers already get.
    """
    if tail_bytes is not None and tail_bytes <= 0:
        raise ValueError(
            f"tail_bytes must be > 0, got {tail_bytes!r}"
        )
    try:
        file = open(path, "rb")
    except OSError:
        return
    with file:
        truncated_head = False
        if tail_bytes is not None:
            file.seek(0, os.SEEK_END)
            size = file.tell()
            if size > tail_bytes:
                file.seek(size - tail_bytes)
                truncated_head = True
            else:
                file.seek(0)
        for index, raw in enumerate(file):
            if index == 0 and truncated_head:
                # The seek landed mid-line; its remainder is not a
                # trustworthy event even if it happens to parse.
                continue
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if not isinstance(event, dict):
                continue
            recorded_crc = event.pop("crc", None)
            if recorded_crc is not None:
                # A parseable line can still be a corrupted one (torn
                # then appended over); only a matching crc earns trust.
                body = json.dumps(event, sort_keys=True)
                actual = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
                if f"{actual:08x}" != recorded_crc:
                    continue
            yield event


def read_journal(
    path: str, *, tail_bytes: "Optional[int]" = None
) -> "List[dict]":
    """All readable events from a journal file (missing file -> []).

    ``tail_bytes`` bounds the read to the file's tail — see
    :func:`iter_journal`.
    """
    return list(iter_journal(path, tail_bytes=tail_bytes))
