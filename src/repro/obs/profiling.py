"""cProfile wrapper behind ``repro scenario run --profile``.

Profiling a scenario should not require knowing Python's profiler
incantations: the CLI wraps the run in :func:`profile_call` and prints
the returned hot-spot summary to stderr (stdout is reserved for the
run's own output, which may be ``--json``).
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, Tuple

#: How many hot functions the summary shows by default.
DEFAULT_PROFILE_LINES = 25


def profile_call(
    function: Callable[..., Any],
    *args,
    sort: str = "cumulative",
    lines: int = DEFAULT_PROFILE_LINES,
    **kwargs,
) -> "Tuple[Any, str]":
    """Run *function* under cProfile; return (result, summary text).

    The summary is ``pstats`` output sorted by *sort* (``cumulative``
    by default — phase-level hot spots — or ``tottime`` for self-time)
    trimmed to the top *lines* functions.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = function(*args, **kwargs)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(lines)
    return result, buffer.getvalue()
