"""Observability: metrics, phase tracing, run journals, sweep status.

One import point for the instrumentation subsystem:

* :mod:`repro.obs.metrics` — process-local registry (counters, gauges,
  timing histograms) behind a global enable flag; near-zero cost when
  disabled, explicitly resettable so determinism harnesses stay
  byte-identical.
* :mod:`repro.obs.journal` — JSONL run journals with heartbeat lines
  (progress, rates, peak RSS), written per scenario and per sweep cell.
* :mod:`repro.obs.status` — ``repro scenario sweep --status``'s model:
  done/running/failed/retried cells, rates and stragglers, rebuilt
  from manifests + journals alone.
* :mod:`repro.obs.profiling` — the ``--profile`` cProfile wrapper.

Memo effectiveness counters live with the caches themselves in
:mod:`repro.netbase.memo`; re-exported here so one import surfaces the
whole instrumentation surface.
"""

from repro.netbase.memo import memo_stats, reset_memo_stats
from repro.obs.journal import (
    RunJournal,
    cell_journal_path,
    iter_journal,
    journal_dir,
    peak_rss_kb,
    read_journal,
)
from repro.obs.metrics import (
    MetricsRegistry,
    TimerStats,
    count,
    enabled_scope,
    gauge,
    metrics_enabled,
    phase,
    record_timing,
    registry,
    reset_metrics,
    set_metrics_enabled,
    timed,
)
from repro.obs.profiling import profile_call
from repro.obs.status import (
    CellStatus,
    SweepStatus,
    collect_sweep_status,
    render_sweep_status,
)

__all__ = [
    "CellStatus",
    "MetricsRegistry",
    "RunJournal",
    "SweepStatus",
    "TimerStats",
    "cell_journal_path",
    "collect_sweep_status",
    "count",
    "enabled_scope",
    "gauge",
    "iter_journal",
    "journal_dir",
    "memo_stats",
    "metrics_enabled",
    "peak_rss_kb",
    "phase",
    "profile_call",
    "read_journal",
    "record_timing",
    "registry",
    "render_sweep_status",
    "reset_memo_stats",
    "reset_metrics",
    "set_metrics_enabled",
    "timed",
]
