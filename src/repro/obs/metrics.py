"""Process-local metrics registry: counters, gauges, timing histograms.

The registry is the heart of the instrumentation subsystem.  Three
properties drive the design:

* **Near-zero cost when disabled.**  Instrumentation is *off* by
  default; every module-level helper checks one boolean before doing
  anything, and :func:`phase` hands back a shared no-op context
  manager, so an uninstrumented hot loop pays a global load and a
  branch — nothing allocates, nothing locks.
* **Explicitly resettable.**  Determinism harnesses compare runs
  byte-for-byte; metrics must never leak one run's state into the
  next.  :func:`reset_metrics` zeroes the registry (and, importantly,
  the engine resets it at the start of every instrumented run so a
  ``metrics_report`` always describes exactly one run).
* **Plain data out.**  :meth:`MetricsRegistry.report` emits nothing
  but JSON-friendly dicts, so reports travel through
  :mod:`repro.scenarios.serialize`, run journals and the CLI's
  ``--metrics-out`` without a custom encoder.

Timers keep a compact power-of-two histogram (bucket ``i`` counts
durations in ``[2**(i-1), 2**i)`` milliseconds) beside min/max/total —
enough to spot a bimodal phase without storing per-sample data.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

#: Histogram bucket count: bucket 0 is < 1 ms, bucket 20 is ~9 minutes+.
_TIMER_BUCKETS = 21


class TimerStats:
    """Aggregated durations for one named timer/span."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0
        self.buckets = [0] * _TIMER_BUCKETS

    def record(self, seconds: float) -> None:
        if self.count == 0 or seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self.count += 1
        self.total += seconds
        milliseconds = seconds * 1000.0
        index = 0
        while index < _TIMER_BUCKETS - 1 and milliseconds >= (1 << index):
            index += 1
        self.buckets[index] += 1

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min,
            "max_seconds": self.max,
            "mean_seconds": self.total / self.count if self.count else 0.0,
            "histogram_ms_pow2": list(self.buckets),
        }


class MetricsRegistry:
    """Named counters, gauges and timers for one process.

    Instances are cheap; the module-level default registry
    (:func:`registry`) is what the engine, reader and CLI share.
    """

    def __init__(self):
        self._counters: "Dict[str, int]" = {}
        self._gauges: "Dict[str, float]" = {}
        self._timers: "Dict[str, TimerStats]" = {}

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter called *name*."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge called *name* to *value* (last write wins)."""
        self._gauges[name] = value

    def record_timing(self, name: str, seconds: float) -> None:
        """Fold one duration into the timer called *name*."""
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = TimerStats(name)
        timer.record(seconds)

    def time(self, name: str) -> "_Span":
        """Context manager recording its ``with`` block's wall time."""
        return _Span(self, name)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def timer_seconds(self, name: str) -> float:
        timer = self._timers.get(name)
        return timer.total if timer is not None else 0.0

    def phase_seconds(self) -> "Dict[str, float]":
        """Total wall seconds per ``phase.*`` timer, prefix stripped."""
        return {
            name[len("phase."):]: timer.total
            for name, timer in sorted(self._timers.items())
            if name.startswith("phase.")
        }

    def report(self) -> dict:
        """JSON-friendly snapshot of everything recorded so far."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "timers": {
                name: timer.as_dict()
                for name, timer in sorted(self._timers.items())
            },
        }

    def reset(self) -> None:
        """Drop every counter, gauge and timer."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._timers)


class _Span:
    """Times one ``with`` block into a registry timer."""

    __slots__ = ("_registry", "_name", "_started")

    def __init__(self, registry: MetricsRegistry, name: str):
        self._registry = registry
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._registry.record_timing(
            self._name, time.perf_counter() - self._started
        )


class _NullSpan:
    """The shared do-nothing span handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()
_REGISTRY = MetricsRegistry()
_enabled = False


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def metrics_enabled() -> bool:
    """Is instrumentation currently on?"""
    return _enabled


def set_metrics_enabled(enabled: bool) -> bool:
    """Turn instrumentation on/off; returns the previous setting.

    Turning it off does *not* clear the registry — a CLI run flips the
    flag off after the run and still reads the report.  Use
    :func:`reset_metrics` for a clean slate.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def reset_metrics() -> None:
    """Zero the default registry."""
    _REGISTRY.reset()


# ----------------------------------------------------------------------
# guarded module-level helpers (the hot-path API)
# ----------------------------------------------------------------------
def phase(name: str):
    """Span over a named phase; a shared no-op while disabled.

    Records into the ``phase.<name>`` timer, which
    :meth:`MetricsRegistry.phase_seconds` and the engine's
    ``metrics_report`` surface as per-phase wall time.
    """
    if not _enabled:
        return _NULL_SPAN
    return _REGISTRY.time(f"phase.{name}")


def count(name: str, amount: int = 1) -> None:
    """Guarded counter increment (no-op while disabled)."""
    if _enabled:
        _REGISTRY.count(name, amount)


def gauge(name: str, value: float) -> None:
    """Guarded gauge write (no-op while disabled)."""
    if _enabled:
        _REGISTRY.gauge(name, value)


def record_timing(name: str, seconds: float) -> None:
    """Guarded timing record (no-op while disabled)."""
    if _enabled:
        _REGISTRY.record_timing(name, seconds)


def timed(name: str) -> "Callable[[Callable], Callable]":
    """Decorator form of :func:`phase` for coarse-grained functions."""

    def wrap(function: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            if not _enabled:
                return function(*args, **kwargs)
            with _REGISTRY.time(f"phase.{name}"):
                return function(*args, **kwargs)

        wrapper.__name__ = getattr(function, "__name__", "wrapped")
        wrapper.__doc__ = function.__doc__
        return wrapper

    return wrap


def enabled_scope(enabled: bool = True) -> "_EnabledScope":
    """Context manager flipping the enabled flag for a ``with`` block."""
    return _EnabledScope(enabled)


class _EnabledScope:
    __slots__ = ("_target", "_previous")

    def __init__(self, target: bool):
        self._target = bool(target)
        self._previous: "Optional[bool]" = None

    def __enter__(self) -> "_EnabledScope":
        self._previous = set_metrics_enabled(self._target)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        set_metrics_enabled(self._previous)
