"""Incremental exploder/grouper: messages in, observations out.

:class:`ObservationStream` is the pipeline's workhorse stage.  It is a
sink of archived collector messages (simulated
:class:`~repro.simulator.collector.CollectedMessage` items or MRT
:class:`~repro.mrt.records.Bgp4mpMessage` records) and a source of
per-prefix :class:`~repro.analysis.observations.Observation` events —
the same flattening :func:`~repro.analysis.observations.explode_update`
performs in batch, done one message at a time so memory stays bounded
no matter how long the run is.

:func:`replay_mrt` is the disk-side source: it pumps an on-disk MRT
archive — including one the simulator itself spilled — through the
identical observation path a live simulation uses.
"""

from __future__ import annotations

from typing import BinaryIO, Dict, Iterator, Optional, Union

from repro.analysis.observations import SessionKey, explode_update
from repro.bgp.message import UpdateMessage
from repro.mrt.records import Bgp4mpMessage
from repro.pipeline.sinks import Sink, SinkBase


class ObservationStream(SinkBase):
    """Explode archived messages into observations, incrementally.

    Push :class:`CollectedMessage` items (live simulation) via
    :meth:`push`, or MRT records via :meth:`push_bgp4mp`; every
    resulting observation is forwarded to *downstream* in arrival
    order.  Non-UPDATE messages are counted and dropped, exactly as
    the batch helpers do.
    """

    def __init__(self, downstream: "Sink"):
        self.downstream = downstream
        self.messages_seen = 0
        self.observations_emitted = 0
        self.skipped_non_updates = 0
        # SessionKey is immutable; reuse one instance per session so a
        # million-message stream does not allocate a million keys.
        self._session_cache: "Dict[tuple, SessionKey]" = {}

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def push(self, record) -> None:
        """One simulated :class:`CollectedMessage`."""
        self._emit(
            record.timestamp,
            record.collector,
            int(record.peer_asn),
            record.peer_address,
            record.message,
        )

    def push_bgp4mp(self, record: "Bgp4mpMessage", collector: str) -> None:
        """One MRT record, labeled with its collector of origin."""
        self._emit(
            record.timestamp,
            collector,
            int(record.peer_asn),
            record.peer_address,
            record.message,
        )

    def _emit(
        self,
        timestamp: float,
        collector: str,
        peer_asn: int,
        peer_address: str,
        message,
    ) -> None:
        self.messages_seen += 1
        if not isinstance(message, UpdateMessage):
            self.skipped_non_updates += 1
            return
        cache_key = (collector, peer_asn, peer_address)
        session = self._session_cache.get(cache_key)
        if session is None:
            session = SessionKey(collector, peer_asn, peer_address)
            self._session_cache[cache_key] = session
        for observation in explode_update(timestamp, session, message):
            self.observations_emitted += 1
            self.downstream.push(observation)

    def close(self) -> None:
        self.downstream.close()


def replay_mrt(
    source: "Union[str, BinaryIO]",
    sink: "Sink",
    *,
    collector: str = "mrt",
    tolerant: bool = True,
    close_sink: bool = False,
    stats: "Optional[Dict[str, int]]" = None,
    workers: "Optional[int]" = None,
    shard_stats: "Optional[list]" = None,
) -> int:
    """Pump an MRT archive through *sink* as observations.

    *source* is a path or an open binary stream.  Returns the number
    of observations delivered.  A :class:`PipelineStop` raised by the
    sink propagates to the caller after the reader is released.

    When *stats* is a dict it is filled with the replay's bookkeeping —
    ``records``, ``skipped_records``, ``error_records`` (tolerant-mode
    drops), ``messages`` and ``observations`` — so callers can surface
    what the reader silently stepped over.  The dict is populated even
    when the sink stops the pipeline early.

    *workers* requests the sharded parallel decode: the archive is
    partitioned by session, shards decode+classify on a process pool,
    and per-shard sink state merges back in shard order — proven
    byte-identical to the serial pass.  It engages only when *source*
    is a path and *sink* speaks the merge protocol (see
    :mod:`repro.pipeline.parallel`); anything else — including damage
    the index pass cannot attribute, or a dying worker — degrades to
    this very serial path with the ``mrt.shard.fallback`` counter
    ticked.  *shard_stats*, when a list, receives one per-shard
    reader-stats row on a successful parallel run.
    """
    if workers is not None and isinstance(source, (str, bytes)):
        from repro.pipeline import parallel

        sink_spec = parallel.sink_spec_for(sink)
        if sink_spec is not None:
            replies = parallel.try_sharded_replay(
                source,
                workers=workers,
                sink_spec=sink_spec,
                collector=collector,
                tolerant=tolerant,
            )
            if replies is not None:
                totals = parallel.merge_replies(
                    sink, replies, stats=stats, shard_stats=shard_stats
                )
                if close_sink:
                    sink.close()
                return totals["observations"]

    from repro.mrt.reader import MRTReader

    stream = ObservationStream(sink)
    if isinstance(source, (str, bytes)):
        handle: "Optional[BinaryIO]" = open(source, "rb")
    else:
        handle = None
    reader_stream = handle if handle is not None else source
    reader = MRTReader(reader_stream, tolerant=tolerant)
    records = 0
    try:
        push_bgp4mp = stream.push_bgp4mp
        for record in reader:
            records += 1
            push_bgp4mp(record, collector)
    finally:
        if handle is not None:
            handle.close()
        if stats is not None:
            stats["records"] = records
            stats["skipped_records"] = reader.skipped_records
            stats["error_records"] = reader.error_records
            stats["messages"] = stream.messages_seen
            stats["observations"] = stream.observations_emitted
    if close_sink:
        sink.close()
    return stream.observations_emitted


def observations_from_mrt_file(
    path: str, *, collector: str = "mrt", tolerant: bool = True
) -> Iterator:
    """Lazily yield observations from an on-disk MRT archive."""
    from repro.analysis.observations import observations_from_mrt
    from repro.mrt.reader import MRTReader

    with open(path, "rb") as handle:
        yield from observations_from_mrt(
            MRTReader(handle, tolerant=tolerant), collector
        )
