"""The :class:`Sink` protocol and the generic pipeline plumbing.

A sink is anything with ``push(item)`` and ``close()``.  Sinks are
deliberately minimal — no generics, no buffering contract — because
the pipeline's invariant lives in the *callers*: items are pushed in
arrival order, exactly once, and ``close()`` is called at most once
when the source is exhausted.

The archive sinks (:class:`ListArchive`, :class:`RingArchive`,
:class:`MrtSpillArchive`) back the collector's ``archive_policy``
knob.  They all archive :class:`~repro.simulator.collector.
CollectedMessage` items and differ only in what they retain:

========== =================== ===========================
policy      memory              fidelity of ``records``
========== =================== ===========================
full        O(messages)         everything
ring:N      O(N)                newest N messages
mrt-spill   O(1)                nothing in RAM; the full
                                archive lives in an MRT
                                file and is replayable
========== =================== ===========================
"""

from __future__ import annotations

import io
import os
import tempfile
from collections import deque
from typing import Callable, Iterable, Iterator, List, Optional, Protocol, Sequence

from repro import faults


class PipelineStop(Exception):
    """Raised by a sink to abort the pump loop (early stop)."""


class Sink(Protocol):
    """Anything that accepts an ordered stream of pushed items."""

    def push(self, item) -> None:
        """Accept one item."""
        ...

    def close(self) -> None:
        """The source is exhausted; release resources."""
        ...


class SinkBase:
    """No-op base class for sinks that only care about some hooks."""

    def push(self, item) -> None:
        """Accept one item (default: drop it)."""

    def close(self) -> None:
        """Release resources (default: nothing to release)."""


class CallbackSink(SinkBase):
    """Adapt a plain callable into a sink."""

    def __init__(self, callback: "Callable", on_close: "Optional[Callable]" = None):
        self._callback = callback
        self._on_close = on_close

    def push(self, item) -> None:
        self._callback(item)

    def close(self) -> None:
        if self._on_close is not None:
            self._on_close()


class CountingSink(SinkBase):
    """Count items, optionally forwarding them downstream."""

    def __init__(self, downstream: "Optional[Sink]" = None):
        self.count = 0
        self._downstream = downstream

    def push(self, item) -> None:
        self.count += 1
        if self._downstream is not None:
            self._downstream.push(item)

    def close(self) -> None:
        if self._downstream is not None:
            self._downstream.close()


class Tee(SinkBase):
    """Fan one stream out to several sinks, in attachment order."""

    def __init__(self, sinks: "Iterable[Sink]" = ()):
        self.sinks: "List[Sink]" = list(sinks)

    def attach(self, sink: "Sink") -> "Sink":
        """Add a sink; returns it for chaining."""
        self.sinks.append(sink)
        return sink

    def detach(self, sink: "Sink") -> None:
        """Remove a previously attached sink."""
        self.sinks.remove(sink)

    def push(self, item) -> None:
        for sink in self.sinks:
            sink.push(item)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class SequenceView(Sequence):
    """Read-only, copy-free view over a list or deque.

    The collector's ``records``/``sessions`` properties used to copy
    the whole backing list on every access, which hot-loop callers
    (lab experiments, analysis passes) paid O(n) for per call.  This
    view is O(1) to create and delegates item access; slicing returns
    a fresh list (the copy is then explicit at the call site).
    """

    __slots__ = ("_items",)

    def __init__(self, items):
        self._items = items

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            if isinstance(self._items, list):
                return self._items[index]
            return list(self._items)[index]
        return self._items[index]

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __eq__(self, other) -> bool:
        if isinstance(other, SequenceView):
            other = other._items
        if isinstance(other, (list, tuple, deque)):
            return len(self._items) == len(other) and all(
                mine == theirs for mine, theirs in zip(self._items, other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"SequenceView({list(self._items)!r})"


# ----------------------------------------------------------------------
# archive policies
# ----------------------------------------------------------------------
def parse_archive_policy(policy: str) -> "tuple[str, Optional[int]]":
    """Parse ``full`` | ``ring:N`` | ``mrt-spill`` into (kind, param).

    Raises :class:`ValueError` with an actionable message otherwise.
    """
    if not isinstance(policy, str):
        raise ValueError(
            f"archive_policy must be a string, got {policy!r}"
        )
    text = policy.strip().lower()
    if text == "full":
        return ("full", None)
    if text == "mrt-spill":
        return ("mrt-spill", None)
    if text.startswith("ring:"):
        try:
            capacity = int(text.split(":", 1)[1])
        except ValueError:
            capacity = 0
        if capacity < 1:
            raise ValueError(
                f"ring archive capacity must be a positive integer,"
                f" got {policy!r}"
            )
        return ("ring", capacity)
    raise ValueError(
        f"unknown archive_policy {policy!r}; use 'full', 'ring:N'"
        f" or 'mrt-spill'"
    )


class ArchiveSink(SinkBase):
    """Common interface of the collector archive backends."""

    #: The canonical policy string this archive implements.
    policy: str = ""

    @property
    def retained(self) -> SequenceView:
        """What is still held in memory, oldest first."""
        raise NotImplementedError

    @property
    def total_archived(self) -> int:
        """Every message ever pushed (retained or not)."""
        raise NotImplementedError

    @property
    def dropped(self) -> int:
        """Messages no longer retained in memory."""
        return self.total_archived - len(self.retained)

    def clear(self) -> int:
        """Drop the archive; returns the all-time count dropped."""
        raise NotImplementedError


class ListArchive(ArchiveSink):
    """The ``full`` policy: keep everything, like the seed collector."""

    policy = "full"

    def __init__(self):
        self._records: "List" = []

    def push(self, item) -> None:
        self._records.append(item)

    @property
    def retained(self) -> SequenceView:
        return SequenceView(self._records)

    @property
    def total_archived(self) -> int:
        return len(self._records)

    def clear(self) -> int:
        count = len(self._records)
        self._records.clear()
        return count


class RingArchive(ArchiveSink):
    """The ``ring:N`` policy: bounded memory, newest N retained."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.policy = f"ring:{self.capacity}"
        self._ring: "deque" = deque(maxlen=self.capacity)
        self._total = 0

    def push(self, item) -> None:
        self._total += 1
        self._ring.append(item)

    @property
    def retained(self) -> SequenceView:
        return SequenceView(self._ring)

    @property
    def total_archived(self) -> int:
        return self._total

    def clear(self) -> int:
        count = self._total
        self._ring.clear()
        self._total = 0
        return count


class MrtSpillArchive(ArchiveSink):
    """The ``mrt-spill`` policy: stream every message to an MRT file.

    Nothing is retained in memory; the archive *is* the (replayable)
    MRT file, written with extended timestamps so sub-second ordering
    survives the round trip.  Items pushed here must already be
    :class:`~repro.mrt.records.Bgp4mpMessage`-convertible — the
    collector pushes ready-made BGP4MP records.
    """

    policy = "mrt-spill"

    def __init__(
        self,
        *,
        spill_dir: "Optional[str]" = None,
        prefix: str = "repro-spill-",
    ):
        from repro.mrt.writer import MRTWriter

        handle, path = tempfile.mkstemp(
            prefix=prefix, suffix=".mrt", dir=spill_dir
        )
        self.path = path
        self._stream = os.fdopen(handle, "wb")
        faults.faultpoint("pipeline.spill.open", name=path)
        self._writer = MRTWriter(self._stream, extended_timestamps=True)
        self._total = 0
        self._closed = False

    def push(self, item) -> None:
        self._writer.write_bgp4mp(item)
        self._total += 1

    def push_fields(
        self,
        timestamp: float,
        peer_asn: int,
        local_asn: int,
        peer_address: str,
        local_address: str,
        message,
    ) -> None:
        """Record-object-free spill (the collector's hot loop)."""
        self._writer.write_message(
            timestamp, peer_asn, local_asn, peer_address, local_address,
            message,
        )
        self._total += 1

    @property
    def retained(self) -> SequenceView:
        return SequenceView([])

    @property
    def total_archived(self) -> int:
        return self._total

    def flush(self) -> None:
        """Make every spilled byte visible to readers."""
        if not self._closed:
            self._stream.flush()

    def replay(self):
        """Iterate the spilled archive as BGP4MP records."""
        from repro.mrt.reader import MRTReader

        self.flush()
        with open(self.path, "rb") as handle:
            yield from MRTReader(handle)

    def spilled_bytes(self) -> bytes:
        """The raw MRT archive written so far."""
        self.flush()
        with open(self.path, "rb") as handle:
            return handle.read()

    def clear(self) -> int:
        count = self._total
        if not self._closed:
            self._stream.flush()
            self._stream.seek(0)
            self._stream.truncate()
        self._total = 0
        return count

    def close(self) -> None:
        if not self._closed:
            faults.faultpoint("pipeline.spill.close", name=self.path)
            self._stream.flush()
            self._stream.close()
            self._closed = True

    def unlink(self) -> None:
        """Close and delete the spill file (cleanup)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass


def make_archive(
    policy: str, *, spill_dir: "Optional[str]" = None, prefix: str = "repro-spill-"
) -> ArchiveSink:
    """Instantiate the archive backend for a policy string."""
    kind, param = parse_archive_policy(policy)
    if kind == "full":
        return ListArchive()
    if kind == "ring":
        return RingArchive(param)
    return MrtSpillArchive(spill_dir=spill_dir, prefix=prefix)
