"""Parallel sharded MRT replay: index, fan out, decode, merge.

The serial :func:`~repro.pipeline.stream.replay_mrt` decodes one
archive on one core.  This module is the fan-out half of the story:

1. :func:`~repro.mrt.shard.plan_shards` partitions the archive by
   session so every per-(session, prefix) classification stream lands
   wholly in one shard (§5 semantics preserved by construction);
2. each shard is decoded and classified by a worker process via the
   same JSON-strings-only protocol the sweep backends speak — archive
   path plus byte ranges in, exported sink state plus reader stats
   out;
3. the coordinator folds the shard states back into the caller's sink
   in shard-index order, so the merged result is byte-identical to
   the serial pass (``bench_analysis.py --verify`` pins this at every
   worker count).

Failure policy is strictly all-or-nothing: if planning, dispatch or
any single worker fails, nothing has touched the caller's sink yet,
the ``mrt.shard.fallback`` counter ticks, and the caller reruns the
plain serial path — same results, same error behavior, one core.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.mrt.shard import RangeStream, ShardIndexError, plan_shards
from repro.obs import metrics as obs_metrics

#: Gated counter ticked once per sharded replay that degraded to
#: serial (damaged archive, dead worker pool, failing shard).
FALLBACK_COUNTER = "mrt.shard.fallback"

#: Gated phase span recording each worker's decode wall time; shows up
#: as ``mrt.decode.shard`` next to the engine's other phase timers.
SHARD_PHASE = "mrt.decode.shard"

#: Reader-stat keys that sum across shards into the serial totals.
STAT_KEYS = (
    "records",
    "skipped_records",
    "error_records",
    "messages",
    "observations",
)


def sink_spec_for(sink) -> "Optional[dict]":
    """The JSON job description of *sink*, or None if not shardable.

    A sink opts in by exposing ``shard_sink_kind`` plus the
    ``export_state``/``merge_state`` pair; a collector proxy must
    additionally have only merge-capable collectors attached.
    """
    kind = getattr(sink, "shard_sink_kind", None)
    if kind is None:
        return None
    if kind == "collectors":
        if not sink.supports_merge:
            return None
        return {
            "kind": kind,
            "names": [collector.name for collector in sink.collectors],
        }
    return {"kind": kind}


def build_shard_sink(sink_spec: dict):
    """Rebuild a fresh sink from its job description (worker side)."""
    kind = sink_spec["kind"]
    if kind == "classifier":
        from repro.analysis.classify import UpdateClassifier

        return UpdateClassifier()
    if kind == "attributor":
        from repro.analysis.duplicates import DuplicateAttributor

        return DuplicateAttributor()
    if kind == "collectors":
        from repro.scenarios.collectors import make_collectors

        return make_collectors(sink_spec["names"])
    raise ValueError(f"unknown shard sink kind {kind!r}")


def decode_shard_json(job_json: str) -> str:
    """Worker entry point: decode one shard, return its state as JSON.

    Module-level and strings-in/strings-out so it runs identically
    inline (workers=1) and in a process pool.  Exceptions never
    propagate across the pool: they come back as an ``error`` reply,
    and the coordinator turns any error into a whole-archive serial
    fallback.
    """
    job = json.loads(job_json)
    try:
        started = time.perf_counter()
        from repro.pipeline.stream import replay_mrt

        sink = build_shard_sink(job["sink"])
        stats: "Dict[str, int]" = {}
        with open(job["path"], "rb") as handle:
            stream = RangeStream(
                handle, [tuple(item) for item in job["ranges"]]
            )
            replay_mrt(
                stream,
                sink,
                collector=job["collector"],
                tolerant=job["tolerant"],
                stats=stats,
            )
        reply = {
            "shard_index": job["shard_index"],
            "reader_stats": stats,
            "state": sink.export_state(),
            "elapsed_seconds": time.perf_counter() - started,
        }
    except Exception as exc:  # noqa: BLE001 — becomes a serial fallback
        reply = {
            "shard_index": job.get("shard_index"),
            "error": f"{type(exc).__name__}: {exc}",
        }
    return json.dumps(reply, sort_keys=True)


def try_sharded_replay(
    path: str,
    *,
    workers: int,
    sink_spec: dict,
    collector: str = "mrt",
    tolerant: bool = True,
) -> "Optional[List[dict]]":
    """Plan, dispatch and collect a sharded decode of one archive.

    Returns the worker replies in shard-index order, or ``None`` when
    anything at all went wrong — in which case the caller's sink is
    guaranteed untouched and the serial path must run instead.
    """
    try:
        plan = plan_shards(path, workers)
    except (ShardIndexError, OSError):
        obs_metrics.count(FALLBACK_COUNTER)
        return None
    jobs = [
        json.dumps(
            {
                "path": plan.path,
                "ranges": [list(item) for item in shard.ranges],
                "collector": collector,
                "tolerant": tolerant,
                "sink": sink_spec,
                "shard_index": shard.index,
            },
            sort_keys=True,
        )
        for shard in plan.shards
    ]
    # Late import: backends sits above the pipeline layer (it imports
    # the scenario engine, which imports this package).
    from repro.scenarios.backends import make_backend

    try:
        backend = make_backend("processes")
        replies_json = backend.map_json(
            decode_shard_json, jobs, workers=workers
        )
        replies = [json.loads(reply) for reply in replies_json]
    except Exception:  # noqa: BLE001 — pool death degrades to serial
        obs_metrics.count(FALLBACK_COUNTER)
        return None
    if any("error" in reply for reply in replies):
        obs_metrics.count(FALLBACK_COUNTER)
        return None
    for reply in replies:
        # Coordinator-side so the spans survive the process boundary;
        # gated like every phase timer.
        obs_metrics.record_timing(
            f"phase.{SHARD_PHASE}", reply["elapsed_seconds"]
        )
    return replies


def merge_replies(
    sink,
    replies: "List[dict]",
    *,
    stats: "Optional[Dict[str, int]]" = None,
    shard_stats: "Optional[List[dict]]" = None,
) -> "Dict[str, int]":
    """Fold worker replies into *sink*, in shard-index order.

    Returns the summed reader stats; optionally fills the caller's
    *stats* dict (serial ``replay_mrt`` shape) and appends one
    per-shard stats row to *shard_stats*.
    """
    totals = {key: 0 for key in STAT_KEYS}
    for reply in replies:
        sink.merge_state(reply["state"])
        reader_stats = reply["reader_stats"]
        for key in STAT_KEYS:
            totals[key] += int(reader_stats.get(key, 0))
        if shard_stats is not None:
            shard_stats.append(
                {
                    "shard": int(reply["shard_index"]),
                    **{
                        key: int(reader_stats.get(key, 0))
                        for key in STAT_KEYS
                    },
                }
            )
    if stats is not None:
        stats.update(totals)
    return totals
