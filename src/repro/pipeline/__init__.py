"""The streaming observation pipeline.

The paper's methodology is a pipeline — collector archive →
per-(session, prefix) observation streams → cleaning/dedup →
classification → tables — and this package is its incremental spine.
Every stage is a :class:`Sink`: a tiny push-based protocol (``push`` /
``close``) that lets the simulator, the MRT reader and the analysis
layer exchange events one at a time instead of materializing whole
archives in memory.

* :mod:`repro.pipeline.sinks` — the :class:`Sink` protocol and the
  generic plumbing: :class:`Tee` fan-out, the bounded
  :class:`RingArchive`, the unbounded :class:`ListArchive`, the
  spill-to-disk :class:`MrtSpillArchive`, :class:`CallbackSink`,
  :class:`CountingSink` and the :class:`SequenceView` read-only
  wrapper;
* :mod:`repro.pipeline.stream` — :class:`ObservationStream`, the
  incremental exploder that turns archived collector messages (or MRT
  records) into per-prefix :class:`~repro.analysis.observations.
  Observation` events, plus :func:`replay_mrt`, the source that pumps
  an on-disk archive through the identical path a live simulation
  uses.

Raising :class:`PipelineStop` from any sink aborts the pump loop
cleanly — that is how the scenario engine's ``early_stop`` hook halts
a simulation mid-day once its metrics have converged.
"""

from repro.pipeline.sinks import (
    ArchiveSink,
    CallbackSink,
    CountingSink,
    ListArchive,
    MrtSpillArchive,
    PipelineStop,
    RingArchive,
    SequenceView,
    Sink,
    Tee,
    make_archive,
    parse_archive_policy,
)
from repro.pipeline.stream import (
    ObservationStream,
    observations_from_mrt_file,
    replay_mrt,
)

__all__ = [
    "ArchiveSink",
    "CallbackSink",
    "CountingSink",
    "ListArchive",
    "MrtSpillArchive",
    "PipelineStop",
    "RingArchive",
    "SequenceView",
    "Sink",
    "Tee",
    "make_archive",
    "parse_archive_policy",
    "ObservationStream",
    "observations_from_mrt_file",
    "replay_mrt",
]
