"""Measurement analysis: the paper's core contribution.

This package turns raw update feeds (simulated collector archives or
MRT files) into the paper's results:

* :mod:`repro.analysis.observations` — flattening UPDATE messages into
  per-prefix observations and grouping them into per-session streams;
* :mod:`repro.analysis.cleaning` — the §4 data preparation pipeline
  (unallocated ASN/prefix removal, route-server AS-path repair,
  same-second timestamp disambiguation);
* :mod:`repro.analysis.classify` — the §5 announcement-type taxonomy
  (``pc pn nc nn xc xn``);
* :mod:`repro.analysis.exploration` — §6 community-exploration and
  duplicate-burst detection around beacon withdrawal phases;
* :mod:`repro.analysis.revealed` — §6 revealed-information analysis;
* :mod:`repro.analysis.tables` — Table 1 / Table 2 builders;
* :mod:`repro.analysis.longitudinal` — Figure 2 / Figure 6 series.
"""

from repro.analysis.observations import (
    Observation,
    ObservationKind,
    SessionKey,
    StreamGrouper,
    explode_update,
    observations_from_collector,
    observations_from_mrt,
    group_into_streams,
)
from repro.analysis.classify import (
    AnnouncementType,
    UpdateClassifier,
    TypeCounts,
    classify_stream,
    classify_observations,
)
from repro.analysis.cleaning import (
    CleaningPipeline,
    CleaningReport,
    CleaningSink,
)
from repro.analysis.exploration import (
    PhaseActivity,
    CommunityExplorationDetector,
    ExplorationEvent,
    label_phases,
)
from repro.analysis.revealed import RevealedInfoAnalysis, RevealedInfoResult
from repro.analysis.duplicates import (
    DuplicateAttributor,
    DuplicateCause,
    DuplicateReport,
    attribute_duplicates,
)
from repro.analysis.tomography import (
    CommunityBehaviorClassifier,
    InferredBehavior,
    BehaviorInference,
    score_against_ground_truth,
)
from repro.analysis.tables import Table1, Table2, build_table1, build_table2
from repro.analysis.longitudinal import (
    DailySnapshot,
    LongitudinalSeries,
)

__all__ = [
    "Observation",
    "ObservationKind",
    "SessionKey",
    "StreamGrouper",
    "explode_update",
    "observations_from_collector",
    "observations_from_mrt",
    "group_into_streams",
    "AnnouncementType",
    "UpdateClassifier",
    "TypeCounts",
    "classify_stream",
    "classify_observations",
    "CleaningPipeline",
    "CleaningReport",
    "CleaningSink",
    "PhaseActivity",
    "CommunityExplorationDetector",
    "ExplorationEvent",
    "label_phases",
    "RevealedInfoAnalysis",
    "RevealedInfoResult",
    "DuplicateAttributor",
    "DuplicateCause",
    "DuplicateReport",
    "attribute_duplicates",
    "CommunityBehaviorClassifier",
    "InferredBehavior",
    "BehaviorInference",
    "score_against_ground_truth",
    "Table1",
    "Table2",
    "build_table1",
    "build_table2",
    "DailySnapshot",
    "LongitudinalSeries",
]
