"""Builders for the paper's Table 1 and Table 2.

Table 1 is the dataset overview (*d_mar20*): prefix/AS/session/peer
counts on the left, announcement/community/path counts on the right.
Table 2 is the announcement-type share break-down for the full feed and
the beacon subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.classify import (
    AnnouncementType,
    TYPE_ORDER,
    TypeCounts,
    classify_observations,
)
from repro.analysis.observations import Observation


@dataclass
class Table1:
    """Dataset overview, mirroring the paper's Table 1 layout."""

    ipv4_prefixes: int = 0
    ipv6_prefixes: int = 0
    ases: int = 0
    sessions: int = 0
    peers: int = 0
    announcements: int = 0
    with_communities: int = 0
    unique_16bit_communities: int = 0
    unique_as_paths: int = 0
    withdrawals: int = 0

    def as_rows(self) -> "List[Tuple[str, str]]":
        """Label/value rows in the paper's reading order."""
        return [
            ("IPv4 prefixes", f"{self.ipv4_prefixes:,}"),
            ("IPv6 prefixes", f"{self.ipv6_prefixes:,}"),
            ("ASes", f"{self.ases:,}"),
            ("Sessions", f"{self.sessions:,}"),
            ("Peers", f"{self.peers:,}"),
            ("Announcements", f"{self.announcements:,}"),
            ("w/ communities", f"{self.with_communities:,}"),
            ("uniq. 16 bits", f"{self.unique_16bit_communities:,}"),
            ("uniq. AS paths", f"{self.unique_as_paths:,}"),
            ("Withdrawals", f"{self.withdrawals:,}"),
        ]

    @property
    def community_share(self) -> float:
        """Fraction of announcements carrying communities."""
        if self.announcements == 0:
            return 0.0
        return self.with_communities / self.announcements


def build_table1(observations: Iterable[Observation]) -> Table1:
    """Compute Table 1 statistics from an observation feed."""
    table = Table1()
    v4: Set = set()
    v6: Set = set()
    ases: Set[int] = set()
    sessions: Set = set()
    peers: Set[int] = set()
    paths: Set = set()
    communities_16bit: Set = set()
    for observation in observations:
        sessions.add(observation.session)
        peers.add(observation.session.peer_asn)
        if observation.prefix.version == 4:
            v4.add(observation.prefix)
        else:
            v6.add(observation.prefix)
        if observation.is_withdrawal:
            table.withdrawals += 1
            continue
        table.announcements += 1
        if observation.as_path is not None:
            paths.add(observation.as_path)
            ases.update(int(asn) for asn in observation.as_path.asns())
        if not observation.communities.is_empty():
            table.with_communities += 1
            for community in observation.communities.classic:
                communities_16bit.add(community.value)
    table.ipv4_prefixes = len(v4)
    table.ipv6_prefixes = len(v6)
    table.ases = len(ases)
    table.sessions = len(sessions)
    table.peers = len(peers)
    table.unique_as_paths = len(paths)
    table.unique_16bit_communities = len(communities_16bit)
    return table


@dataclass
class Table2:
    """Announcement-type shares for the full feed and beacon subset."""

    full: TypeCounts
    beacon: Optional[TypeCounts] = None

    def as_rows(self) -> "List[Tuple[str, str, float, Optional[float]]]":
        """(code, description, full share, beacon share) rows."""
        descriptions = {
            AnnouncementType.PC: "path + community",
            AnnouncementType.PN: "path only",
            AnnouncementType.NC: "community only",
            AnnouncementType.NN: "no change",
            AnnouncementType.XC: "path prepending + comm.",
            AnnouncementType.XN: "path prepending only",
        }
        rows = []
        for kind in TYPE_ORDER:
            beacon_share = (
                self.beacon.share(kind) if self.beacon is not None else None
            )
            rows.append(
                (
                    kind.value,
                    descriptions[kind],
                    self.full.share(kind),
                    beacon_share,
                )
            )
        return rows

    def sanity_check(self) -> bool:
        """Shares sum to 1 (within float noise) for non-empty feeds."""
        total = sum(self.full.share(kind) for kind in TYPE_ORDER)
        return self.full.classified_total == 0 or abs(total - 1.0) < 1e-9


def build_table2(
    observations: Iterable[Observation],
    beacon_prefixes: "Optional[Set]" = None,
) -> Table2:
    """Compute Table 2, optionally with the beacon-prefix subset.

    The feed is consumed once; beacon membership is tested per
    observation so overlapping iterators are unnecessary.
    """
    from repro.analysis.classify import UpdateClassifier

    full = UpdateClassifier()
    beacon = UpdateClassifier() if beacon_prefixes is not None else None
    for observation in observations:
        full.observe(observation)
        if beacon is not None and observation.prefix in beacon_prefixes:
            beacon.observe(observation)
    return Table2(
        full=full.counts,
        beacon=beacon.counts if beacon is not None else None,
    )
