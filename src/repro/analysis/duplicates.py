"""Root-cause attribution for `nn` (duplicate) announcements.

The paper can only *speculate* about nn causes from collector data
(§6: "we do not exclude the possibility for other reasons we observe
nn announcements, e.g., streams of updates due to intra-AS changes,
misconfiguration, or rate limiting").  This module encodes the
heuristics that discussion implies, classifying each nn announcement
on a stream into:

* ``session_reset``  — the nn directly follows a withdrawal of the
  same route and re-announces the identical state (table transfer
  after a session reset, or beacon re-announcement);
* ``cleaned_exploration`` — the nn sits inside a withdrawal-phase
  burst on a community-free stream (Figure 5's egress-cleaned
  community exploration);
* ``med_or_internal`` — the nn appears on an otherwise quiet stream
  outside beacon phases (the lab Exp1 pattern: internal next-hop or
  MED churn surfacing as an exact duplicate);
* ``unknown`` — anything else.

The attribution is heuristic by construction — exactly as the paper
frames it — but the synthetic internet lets the tests check that each
generator (collector resets, egress cleaners, MED churn) lands
dominantly in its intended bucket.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.analysis.classify import AnnouncementType, UpdateClassifier
from repro.analysis.observations import Observation
from repro.beacons.schedule import BeaconSchedule, PhaseKind


class DuplicateCause(enum.Enum):
    """Attributed root cause of one nn announcement."""

    SESSION_RESET = "session_reset"
    CLEANED_EXPLORATION = "cleaned_exploration"
    MED_OR_INTERNAL = "med_or_internal"
    UNKNOWN = "unknown"


@dataclass
class AttributedDuplicate:
    """One nn announcement with its attributed cause."""

    observation: Observation
    cause: DuplicateCause


@dataclass
class DuplicateReport:
    """Aggregate attribution counts."""

    counts: Dict[DuplicateCause, int] = field(
        default_factory=lambda: {cause: 0 for cause in DuplicateCause}
    )

    @property
    def total(self) -> int:
        """All attributed duplicates."""
        return sum(self.counts.values())

    def share(self, cause: DuplicateCause) -> float:
        """Fraction of duplicates attributed to *cause*."""
        total = self.total
        return self.counts[cause] / total if total else 0.0

    def as_rows(self) -> "List[tuple]":
        """(cause, count, share) rows for rendering."""
        return [
            (cause.value, self.counts[cause], self.share(cause))
            for cause in DuplicateCause
        ]


class DuplicateAttributor:
    """Stateful per-stream nn attribution."""

    #: An nn this close (seconds) after a withdrawal of the same route
    #: is treated as a post-reset re-announcement.
    RESET_WINDOW = 120.0

    #: Sharded-decode job protocol tag (see :mod:`repro.pipeline.parallel`).
    shard_sink_kind = "attributor"

    def __init__(self, schedule: "BeaconSchedule | None" = None):
        self._schedule = schedule or BeaconSchedule()
        self._classifier = UpdateClassifier()
        self._last_withdrawal: Dict[tuple, float] = {}
        self._stream_has_communities: Dict[tuple, bool] = {}
        self.report = DuplicateReport()
        self.attributed: List[AttributedDuplicate] = []

    def observe(self, observation: Observation) -> "DuplicateCause | None":
        """Process one observation; returns a cause for nn events."""
        key = observation.stream_key()
        if observation.is_announcement and observation.communities:
            self._stream_has_communities[key] = True
        announcement_type = self._classifier.observe(observation, key)
        if observation.is_withdrawal:
            self._last_withdrawal[key] = observation.timestamp
            return None
        if announcement_type != AnnouncementType.NN:
            return None
        cause = self._attribute(key, observation)
        self.report.counts[cause] += 1
        self.attributed.append(AttributedDuplicate(observation, cause))
        return cause

    def observe_all(
        self, observations: Iterable[Observation]
    ) -> DuplicateReport:
        """Process a whole feed; returns the aggregate report."""
        for observation in observations:
            self.observe(observation)
        return self.report

    # ------------------------------------------------------------------
    # pipeline sink protocol
    # ------------------------------------------------------------------
    def push(self, observation: Observation) -> None:
        """Sink hook: attribute one pushed observation (online)."""
        self.observe(observation)

    def close(self) -> None:
        """Sink hook; attribution state needs no finalization."""

    # ------------------------------------------------------------------
    # sharded-decode merge protocol
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Serialize the mergeable attribution state as JSON data.

        Per-stream dicts (`_last_withdrawal`, `_stream_has_communities`)
        stay local: the shard planner keeps streams whole per shard.
        The per-event ``attributed`` list deliberately does not travel —
        aggregate counts are the merged product, matching what every
        collector and report consumer reads.
        """
        return {
            "classifier": self._classifier.export_state(),
            "causes": {
                cause.value: self.report.counts[cause]
                for cause in DuplicateCause
            },
        }

    def merge_state(self, state: dict) -> None:
        """Accumulate one shard's exported state, in shard order."""
        self._classifier.merge_state(state["classifier"])
        for cause in DuplicateCause:
            self.report.counts[cause] += int(
                state["causes"].get(cause.value, 0)
            )

    def _attribute(
        self, key: tuple, observation: Observation
    ) -> DuplicateCause:
        last_withdrawal = self._last_withdrawal.get(key)
        if (
            last_withdrawal is not None
            and observation.timestamp - last_withdrawal
            <= self.RESET_WINDOW
        ):
            return DuplicateCause.SESSION_RESET
        phase = self._schedule.classify(observation.timestamp)
        community_free = not self._stream_has_communities.get(key, False)
        if phase == PhaseKind.WITHDRAW and community_free:
            return DuplicateCause.CLEANED_EXPLORATION
        if phase == PhaseKind.OUTSIDE:
            return DuplicateCause.MED_OR_INTERNAL
        return DuplicateCause.UNKNOWN


def attribute_duplicates(
    observations: Iterable[Observation],
    schedule: "BeaconSchedule | None" = None,
) -> DuplicateReport:
    """One-shot attribution over an ordered feed."""
    return DuplicateAttributor(schedule).observe_all(observations)
